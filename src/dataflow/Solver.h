//===- dataflow/Solver.h - Generic iterative dataflow solver ------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic worklist solver for gen/kill bitset problems over one
/// function's cfg::CFGView.  A Problem fixes the direction (forward or
/// backward), the meet (union for may-facts, intersect for must-facts),
/// one gen/kill transfer function per block, and the boundary value; the
/// solver iterates the blocks in reverse postorder (forward problems) or
/// postorder (backward problems) until a fixed point.
///
/// The Set parameter is any value type with |, &, ~ and == — in practice a
/// raw uint32_t (one bit per architectural register) or a DynBitset (one
/// bit per definition).  Transfer functions are applied as
///
///   out = Gen | (in & ~Kill)        (forward; mirrored for backward)
///
/// which makes every transfer monotone, so with an all-zero start for
/// union problems (facts only grow) and an all-ones start for intersect
/// problems (facts only shrink) the iteration converges; rounds are
/// counted so tests can pin convergence even on irreducible CFGs.
///
/// Unreachable blocks are excluded from the RPO and keep their initial
/// value; callers must not read facts for them.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_DATAFLOW_SOLVER_H
#define DMP_DATAFLOW_SOLVER_H

#include "cfg/CFG.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace dmp::dataflow {

enum class Direction : uint8_t { Forward, Backward };
enum class Meet : uint8_t { Union, Intersect };

/// One block's transfer function: out = Gen | (in & ~Kill).
template <typename Set> struct Transfer {
  Set Gen{};
  Set Kill{};
};

/// One dataflow problem over a CFGView.
template <typename Set> struct Problem {
  Direction Dir = Direction::Forward;
  Meet MeetKind = Meet::Union;
  /// Per-block transfer functions, indexed by ir::BasicBlock::getId().
  std::vector<Transfer<Set>> Transfers;
  /// Initial value of every interior In/Out fact: the lattice bottom for
  /// union problems (all zeros) or top for intersect problems (all ones).
  Set Interior{};
  /// Boundary fact: the In of the entry block (forward) or the default Out
  /// of every exit block — a block with no successors (backward).
  Set Boundary{};
  /// Backward problems only: per-exit-block overrides of Boundary, e.g. a
  /// Ret block whose live-out is the caller's demand while a Halt block's
  /// is empty.  Pairs of (block id, value).
  std::vector<std::pair<unsigned, Set>> ExitOverrides;
};

/// Fixed-point facts, indexed by block id.
template <typename Set> struct Solution {
  std::vector<Set> In;
  std::vector<Set> Out;
  /// Number of full sweeps until nothing changed (>= 1 on any non-empty
  /// CFG; bounded-round tests key on this).
  unsigned Rounds = 0;
};

template <typename Set>
Solution<Set> solve(const cfg::CFGView &View, const Problem<Set> &P) {
  const unsigned N = View.blockCount();
  assert(P.Transfers.size() == N && "one transfer per block");

  Solution<Set> S;
  S.In.assign(N, P.Interior);
  S.Out.assign(N, P.Interior);

  // Iteration order: RPO for forward problems, reverse RPO (postorder) for
  // backward ones, so most facts propagate in one sweep on reducible CFGs.
  std::vector<const ir::BasicBlock *> Order = View.reversePostorder();
  if (P.Dir == Direction::Backward)
    std::reverse(Order.begin(), Order.end());

  const unsigned EntryId =
      View.getFunction().getEntry() ? View.getFunction().getEntry()->getId()
                                    : 0;

  const auto ExitValue = [&](unsigned Id) -> Set {
    for (const auto &[OverrideId, V] : P.ExitOverrides)
      if (OverrideId == Id)
        return V;
    return P.Boundary;
  };

  const auto Apply = [](const Transfer<Set> &T, const Set &In) -> Set {
    return T.Gen | (In & ~T.Kill);
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++S.Rounds;
    for (const ir::BasicBlock *B : Order) {
      const unsigned Id = B->getId();
      if (P.Dir == Direction::Forward) {
        Set NewIn = P.Interior;
        if (Id == EntryId) {
          NewIn = P.Boundary;
        } else {
          bool First = true;
          for (const ir::BasicBlock *Pred : View.predecessors(Id)) {
            if (First) {
              NewIn = S.Out[Pred->getId()];
              First = false;
            } else if (P.MeetKind == Meet::Union) {
              NewIn = NewIn | S.Out[Pred->getId()];
            } else {
              NewIn = NewIn & S.Out[Pred->getId()];
            }
          }
        }
        Set NewOut = Apply(P.Transfers[Id], NewIn);
        if (NewIn != S.In[Id] || NewOut != S.Out[Id]) {
          S.In[Id] = std::move(NewIn);
          S.Out[Id] = std::move(NewOut);
          Changed = true;
        }
      } else {
        Set NewOut = P.Interior;
        if (View.successors(Id).empty()) {
          NewOut = ExitValue(Id);
        } else {
          bool First = true;
          for (const ir::BasicBlock *Succ : View.successors(Id)) {
            if (First) {
              NewOut = S.In[Succ->getId()];
              First = false;
            } else if (P.MeetKind == Meet::Union) {
              NewOut = NewOut | S.In[Succ->getId()];
            } else {
              NewOut = NewOut & S.In[Succ->getId()];
            }
          }
        }
        Set NewIn = Apply(P.Transfers[Id], NewOut);
        if (NewIn != S.In[Id] || NewOut != S.Out[Id]) {
          S.In[Id] = std::move(NewIn);
          S.Out[Id] = std::move(NewOut);
          Changed = true;
        }
      }
    }
  }
  return S;
}

} // namespace dmp::dataflow

#endif // DMP_DATAFLOW_SOLVER_H
