//===- dataflow/Meldability.h - Predication-safety classification -*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The meldability analysis: for every annotated diverge branch, delimit
/// the hammock region between the branch and its first CFM point and
/// classify each instruction inside by what software melding / predication
/// (the ROADMAP's dmp::transform item, after DARM-style control-flow
/// melding) would have to do with it:
///
///   Select     a register write predication can turn into a select — the
///              dpred hardware's select-µop case (paper Section 3.2).
///   PredStore  a store that must execute under a predicate (cannot be
///              select-converted because memory has no shadow copy).
///   Unsafe     predication would change semantics: a call (irreversible
///              side effects on the wrong path), a side exit (control
///              leaves the region before the CFM: ret/halt/branch out),
///              or a loop-carried self-dependence in a loop-kind region
///              (the recurrence needs per-iteration select-µops).
///
/// The region walk mirrors CfmLegality's hammock reasoning: BFS from both
/// branch legs refusing to step through the CFM block; blocks that cannot
/// come back to the CFM are escape blocks (their instructions are not
/// classified — the terminator that left the meldable core already is).
/// Loop-kind annotations use the natural loop's blocks instead, with every
/// non-annotated exit branch a side exit.
///
/// The result feeds three consumers: the PredicationSafety analyze-pass
/// (DF02-DF06 diagnostics), dmp_lint --meld-report (the TSV below, one row
/// per annotated branch, committed as goldens), and the CfmLegality
/// side-effect cross-check (DF01).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_DATAFLOW_MELDABILITY_H
#define DMP_DATAFLOW_MELDABILITY_H

#include "cfg/Analysis.h"
#include "core/DivergeInfo.h"
#include "dataflow/Dataflow.h"

#include <string>
#include <vector>

namespace dmp::dataflow {

enum class InstrClass : uint8_t { Select, PredStore, Unsafe };
enum class UnsafeReason : uint8_t { None, Call, LoopCarried, SideExit };

const char *instrClassName(InstrClass C);
const char *unsafeReasonName(UnsafeReason R);

/// One classified instruction inside a hammock region.
struct InstrVerdict {
  uint32_t Addr = 0;
  InstrClass Class = InstrClass::Select;
  UnsafeReason Reason = UnsafeReason::None;
};

/// Meldability verdict for one annotated diverge branch.
struct HammockReport {
  uint32_t BranchAddr = 0;
  core::DivergeKind Kind = core::DivergeKind::NoCfm;
  /// Blocks in the meldable core (reach the CFM without leaving).
  unsigned RegionBlocks = 0;
  /// Region blocks that cannot come back to the CFM (side-exit shadow).
  unsigned EscapeBlocks = 0;
  unsigned SelectCount = 0;
  unsigned PredStoreCount = 0;
  unsigned UnsafeCalls = 0;
  unsigned UnsafeLoopCarried = 0;
  unsigned UnsafeSideExits = 0;
  /// True when every classified instruction is Select or PredStore and no
  /// escape blocks exist: the region can be melded as-is.
  bool Meldable = false;
  /// Classified instructions in address order (meldable core only).
  std::vector<InstrVerdict> Instrs;

  unsigned unsafeCount() const {
    return UnsafeCalls + UnsafeLoopCarried + UnsafeSideExits;
  }
};

/// Whole-program meldability report: one entry per annotated branch, in
/// ascending branch-address order (deterministic; golden files key on it).
struct MeldReport {
  std::vector<HammockReport> Hammocks;
};

/// Classifies every annotated diverge branch of \p Annotations.  Entries
/// whose branch address is invalid (AnnotationConsistency territory) are
/// skipped; NoCfm entries get an empty, non-meldable row.
MeldReport analyzeMeldability(const ir::Program &P,
                              const cfg::ProgramAnalysis &PA,
                              const core::DivergeMap &Annotations,
                              const ProgramDataflow &PD);

/// Renders \p R as TSV: a `branch kind blocks escapes select pred_store
/// unsafe_call unsafe_loop unsafe_exit meldable` header line (prefixed
/// with optional leading columns, see below) and one row per hammock.
/// \p Prefix values (e.g. workload and selector name) are prepended to the
/// header as given and to every row, enabling concatenated multi-workload
/// goldens.
std::string renderMeldReportTsv(const MeldReport &R,
                                const std::vector<std::string> &PrefixHeader,
                                const std::vector<std::string> &PrefixValues);

} // namespace dmp::dataflow

#endif // DMP_DATAFLOW_MELDABILITY_H
