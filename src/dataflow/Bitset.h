//===- dataflow/Bitset.h - Dense bitset for dataflow facts --------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DynBitset: a fixed-size dense bitset with the value-semantics operators
/// the generic dataflow solver (dataflow/Solver.h) needs — |, &, ~, ==.
/// Register-indexed analyses use a raw uint32_t (32 architectural
/// registers fit exactly); DynBitset exists for fact domains whose size is
/// only known per function, e.g. one bit per reaching definition.
///
/// Complement masks the trailing partial word, so ~x never sets bits past
/// size() and equality is plain word equality.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_DATAFLOW_BITSET_H
#define DMP_DATAFLOW_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmp::dataflow {

/// Fixed-size dense bitset.  All binary operators require both operands to
/// have the same size (asserted).
class DynBitset {
public:
  DynBitset() = default;
  explicit DynBitset(unsigned Bits)
      : Bits(Bits), Words((Bits + 63) / 64, 0) {}

  unsigned size() const { return Bits; }

  void set(unsigned I) {
    assert(I < Bits && "bit out of range");
    Words[I / 64] |= uint64_t(1) << (I % 64);
  }
  void reset(unsigned I) {
    assert(I < Bits && "bit out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }
  bool test(unsigned I) const {
    assert(I < Bits && "bit out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  /// Sets every bit.
  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    maskTail();
  }

  bool none() const {
    for (uint64_t W : Words)
      if (W != 0)
        return false;
    return true;
  }

  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  DynBitset &operator|=(const DynBitset &O) {
    assert(Bits == O.Bits && "bitset size mismatch");
    for (std::size_t I = 0; I < Words.size(); ++I)
      Words[I] |= O.Words[I];
    return *this;
  }
  DynBitset &operator&=(const DynBitset &O) {
    assert(Bits == O.Bits && "bitset size mismatch");
    for (std::size_t I = 0; I < Words.size(); ++I)
      Words[I] &= O.Words[I];
    return *this;
  }

  friend DynBitset operator|(DynBitset A, const DynBitset &B) {
    A |= B;
    return A;
  }
  friend DynBitset operator&(DynBitset A, const DynBitset &B) {
    A &= B;
    return A;
  }
  friend DynBitset operator~(DynBitset A) {
    for (uint64_t &W : A.Words)
      W = ~W;
    A.maskTail();
    return A;
  }

  bool operator==(const DynBitset &O) const {
    return Bits == O.Bits && Words == O.Words;
  }
  bool operator!=(const DynBitset &O) const { return !(*this == O); }

private:
  void maskTail() {
    const unsigned Tail = Bits % 64;
    if (Tail != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << Tail) - 1;
  }

  unsigned Bits = 0;
  std::vector<uint64_t> Words;
};

} // namespace dmp::dataflow

#endif // DMP_DATAFLOW_BITSET_H
