//===- dataflow/Dataflow.cpp - Concrete dataflow analyses ------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "dataflow/Dataflow.h"

#include <cassert>
#include <memory>

namespace dmp::dataflow {

RegSet instrUses(const ir::Instruction &I) {
  RegSet Uses = 0;
  if (ir::readsSrc1(I.Op))
    Uses |= regBit(I.Src1);
  if (ir::readsSrc2(I.Op))
    Uses |= regBit(I.Src2);
  return Uses;
}

RegSet instrDefs(const ir::Instruction &I) {
  if (!ir::writesRegister(I.Op) || I.Dst == ir::RegZero)
    return 0;
  return regBit(I.Dst);
}

namespace {

CallEffect effectOf(const ir::Instruction &I, CallEffectFn CallFn,
                    void *CallCtx) {
  if (I.Op == ir::Opcode::Call && CallFn && I.Callee)
    return CallFn(*I.Callee, CallCtx);
  return CallEffect{instrUses(I), instrDefs(I)};
}

} // namespace

LivenessResult computeLiveness(const cfg::CFGView &View, RegSet RetLiveOut,
                               CallEffectFn CallFn, void *CallCtx) {
  const unsigned N = View.blockCount();
  Problem<RegSet> Pr;
  Pr.Dir = Direction::Backward;
  Pr.MeetKind = Meet::Union;
  Pr.Interior = 0;
  Pr.Boundary = 0; // Halt (and malformed exits): nothing live after.
  Pr.Transfers.resize(N);

  for (const ir::BasicBlock *B : View.reversePostorder()) {
    Transfer<RegSet> &T = Pr.Transfers[B->getId()];
    for (const ir::Instruction &I : B->instructions()) {
      const CallEffect CE = effectOf(I, CallFn, CallCtx);
      T.Gen |= CE.Uses & ~T.Kill; // Upward-exposed uses.
      T.Kill |= CE.Defs;
    }
    if (const ir::Instruction *Term = B->getTerminator();
        Term && Term->Op == ir::Opcode::Ret && View.successors(B->getId()).empty())
      Pr.ExitOverrides.emplace_back(B->getId(), RetLiveOut);
  }

  const Solution<RegSet> S = solve(View, Pr);
  LivenessResult R;
  R.LiveIn = S.In;
  R.LiveOut = S.Out;
  R.Rounds = S.Rounds;
  return R;
}

DefiniteAssignResult computeDefiniteAssign(const cfg::CFGView &View,
                                           RegSet EntryAssigned,
                                           CallEffectFn CallFn, void *CallCtx) {
  const unsigned N = View.blockCount();
  Problem<RegSet> Pr;
  Pr.Dir = Direction::Forward;
  Pr.MeetKind = Meet::Intersect;
  Pr.Interior = AllRegs; // Optimistic top: facts only shrink.
  Pr.Boundary = EntryAssigned | ZeroRegBit;
  Pr.Transfers.resize(N);

  for (const ir::BasicBlock *B : View.reversePostorder()) {
    Transfer<RegSet> &T = Pr.Transfers[B->getId()];
    for (const ir::Instruction &I : B->instructions())
      T.Gen |= effectOf(I, CallFn, CallCtx).Defs; // Assignment never killed.
  }

  const Solution<RegSet> S = solve(View, Pr);
  DefiniteAssignResult R;
  R.AssignedIn = S.In;
  R.AssignedOut = S.Out;
  R.Rounds = S.Rounds;
  return R;
}

ReachingDefsResult computeReachingDefs(const cfg::CFGView &View) {
  const unsigned N = View.blockCount();
  ReachingDefsResult R;

  // Number the definition sites densely in layout (== address) order.
  std::vector<ir::Reg> DefReg;
  for (unsigned Id = 0; Id < N; ++Id)
    for (const ir::Instruction &I : View.block(Id)->instructions())
      if (instrDefs(I) != 0) {
        R.DefAddrs.push_back(I.Addr);
        DefReg.push_back(I.Dst);
      }
  const unsigned D = R.defCount();

  std::vector<DynBitset> DefsOfReg(ir::NumRegs, DynBitset(D));
  for (unsigned DefId = 0; DefId < D; ++DefId)
    DefsOfReg[DefReg[DefId]].set(DefId);

  Problem<DynBitset> Pr;
  Pr.Dir = Direction::Forward;
  Pr.MeetKind = Meet::Union;
  Pr.Interior = DynBitset(D);
  Pr.Boundary = DynBitset(D);
  Pr.Transfers.assign(N, Transfer<DynBitset>{DynBitset(D), DynBitset(D)});

  unsigned NextDef = 0;
  for (unsigned Id = 0; Id < N; ++Id) {
    Transfer<DynBitset> &T = Pr.Transfers[Id];
    RegSet Defined = 0;
    const unsigned FirstDef = NextDef;
    for (const ir::Instruction &I : View.block(Id)->instructions())
      if (instrDefs(I) != 0) {
        Defined |= regBit(I.Dst);
        ++NextDef;
      }
    // Gen: downward-exposed defs — the last def of each register in the
    // block.  Scan the block's def ids backwards.
    RegSet Seen = 0;
    for (unsigned DefId = NextDef; DefId > FirstDef; --DefId) {
      const ir::Reg Rg = DefReg[DefId - 1];
      if (!(Seen & regBit(Rg))) {
        T.Gen.set(DefId - 1);
        Seen |= regBit(Rg);
      }
    }
    // Kill: every def (anywhere) of a register this block defines.
    for (unsigned Rg = 0; Rg < ir::NumRegs; ++Rg)
      if (Defined & regBit(static_cast<ir::Reg>(Rg)))
        T.Kill |= DefsOfReg[Rg];
  }

  Solution<DynBitset> S = solve(View, Pr);
  R.In = std::move(S.In);
  R.Out = std::move(S.Out);
  R.Rounds = S.Rounds;
  return R;
}

std::vector<BlockEffects> computeBlockEffects(const cfg::CFGView &View) {
  std::vector<BlockEffects> E(View.blockCount());
  for (unsigned Id = 0; Id < View.blockCount(); ++Id)
    for (const ir::Instruction &I : View.block(Id)->instructions()) {
      BlockEffects &BE = E[Id];
      switch (I.Op) {
      case ir::Opcode::Store:
        ++BE.Stores;
        break;
      case ir::Opcode::Load:
        ++BE.Loads;
        break;
      case ir::Opcode::Call:
        ++BE.Calls;
        break;
      case ir::Opcode::Halt:
        BE.HasHalt = true;
        break;
      case ir::Opcode::Ret:
        BE.HasRet = true;
        break;
      default:
        break;
      }
    }
  return E;
}

//===----------------------------------------------------------------------===//
// ProgramDataflow
//===----------------------------------------------------------------------===//

namespace {

using Summary = ProgramDataflow::FunctionSummary;

// CallEffect adapters threading the current summary table through the
// per-function analyses.  Liveness sees a callee as (use LiveInEntry, kill
// MustDef); definite assignment sees it as (define ExitAssigned).
CallEffect livenessCallEffect(const ir::Function &Callee, void *Ctx) {
  const auto &S = *static_cast<const std::vector<Summary> *>(Ctx);
  return CallEffect{S[Callee.getId()].LiveInEntry, S[Callee.getId()].MustDef};
}

CallEffect assignCallEffect(const ir::Function &Callee, void *Ctx) {
  const auto &S = *static_cast<const std::vector<Summary> *>(Ctx);
  return CallEffect{0, S[Callee.getId()].ExitAssigned};
}

CallEffect mustDefCallEffect(const ir::Function &Callee, void *Ctx) {
  const auto &S = *static_cast<const std::vector<Summary> *>(Ctx);
  return CallEffect{0, S[Callee.getId()].MustDef};
}

/// Per-instruction facts inside one block, derived from the block-boundary
/// solutions: the definitely-assigned set before each instruction executes
/// and the may-live set after it.
struct BlockWalk {
  std::vector<RegSet> AssignedBefore;
  std::vector<RegSet> LiveAfter;
};

BlockWalk walkBlock(const ir::BasicBlock &B, RegSet AssignedIn, RegSet LiveOut,
                    const std::vector<Summary> &S) {
  const auto &Insts = B.instructions();
  BlockWalk W;
  W.AssignedBefore.resize(Insts.size());
  W.LiveAfter.resize(Insts.size());

  RegSet Assigned = AssignedIn | ZeroRegBit;
  for (size_t I = 0; I < Insts.size(); ++I) {
    W.AssignedBefore[I] = Assigned;
    if (Insts[I].Op == ir::Opcode::Call && Insts[I].Callee)
      Assigned |= S[Insts[I].Callee->getId()].ExitAssigned;
    else
      Assigned |= instrDefs(Insts[I]);
  }

  RegSet Live = LiveOut;
  for (size_t I = Insts.size(); I > 0; --I) {
    W.LiveAfter[I - 1] = Live;
    RegSet Uses;
    RegSet Kill;
    if (Insts[I - 1].Op == ir::Opcode::Call && Insts[I - 1].Callee) {
      Uses = S[Insts[I - 1].Callee->getId()].LiveInEntry;
      Kill = S[Insts[I - 1].Callee->getId()].MustDef;
    } else {
      Uses = instrUses(Insts[I - 1]);
      Kill = instrDefs(Insts[I - 1]);
    }
    Live = Uses | (Live & ~Kill);
  }
  return W;
}

/// Meet of a function's assigned-at-ret facts: intersect AssignedOut over
/// every reachable Ret block.  AllRegs when the function never returns
/// (meet over the empty set — sound, since callers never resume).
RegSet meetAtRets(const cfg::CFGView &View, const DefiniteAssignResult &DA) {
  RegSet R = AllRegs;
  for (const ir::BasicBlock *B : View.reversePostorder())
    if (const ir::Instruction *Term = B->getTerminator();
        Term && Term->Op == ir::Opcode::Ret)
      R &= DA.AssignedOut[B->getId()];
  return R;
}

} // namespace

ProgramDataflow::ProgramDataflow(const ir::Program &Prog) : P(Prog) {
  assert(P.isFinalized() && "dataflow over an unfinalized program");
  solveFunctions();
  flattenInstructionFacts();
}

void ProgramDataflow::solveFunctions() {
  const size_t NF = P.functions().size();
  Summaries.assign(NF, FunctionSummary{});
  Live.resize(NF);
  Assign.resize(NF);
  Effects.resize(NF);

  std::vector<std::unique_ptr<cfg::CFGView>> Views;
  Views.reserve(NF);
  for (const auto &F : P.functions())
    Views.push_back(std::make_unique<cfg::CFGView>(*F));

  // Functions reachable from main through calls in reachable blocks.  Only
  // their call sites constrain callee summaries; everything else gets the
  // pessimistic boundary (entry {r0}, everything live at ret) so the static
  // checks still run there without claiming unexecutable facts.
  std::vector<bool> Reached(NF, false);
  if (const ir::Function *Main = P.getMain()) {
    std::vector<unsigned> Work{Main->getId()};
    Reached[Main->getId()] = true;
    while (!Work.empty()) {
      const unsigned Id = Work.back();
      Work.pop_back();
      for (const ir::BasicBlock *B : Views[Id]->reversePostorder())
        for (const ir::Instruction &I : B->instructions())
          if (I.Op == ir::Opcode::Call && I.Callee &&
              !Reached[I.Callee->getId()]) {
            Reached[I.Callee->getId()] = true;
            Work.push_back(I.Callee->getId());
          }
    }
  }

  for (size_t Id = 0; Id < NF; ++Id) {
    Effects[Id] = computeBlockEffects(*Views[Id]);
    if (!Reached[Id]) {
      Summaries[Id].EntryAssigned = ZeroRegBit;
      Summaries[Id].RetLive = AllRegs & ~ZeroRegBit;
    } else if (Id == P.getMain()->getId()) {
      Summaries[Id].EntryAssigned = ZeroRegBit;
    }
  }

  // Two-level fixpoint: re-solve every function against the current summary
  // table, then refresh the call-boundary summaries from the solutions.
  // EntryAssigned/ExitAssigned/MustDef only shrink from their optimistic
  // all-ones start and LiveInEntry/RetLive only grow from empty, so this
  // terminates; the cap is a safety net for broken monotonicity.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++InterRounds;
    assert(InterRounds <= 32 * NF + 2 && "summary fixpoint not converging");

    for (size_t Id = 0; Id < NF; ++Id) {
      const cfg::CFGView &View = *Views[Id];
      FunctionSummary &S = Summaries[Id];

      // MustDef: assigned at every ret from an empty entry.
      DefiniteAssignResult MD = computeDefiniteAssign(
          View, ZeroRegBit, mustDefCallEffect, &Summaries);
      const RegSet NewMustDef = meetAtRets(View, MD);

      // ExitAssigned: same, seeded with the call sites' meet.
      Assign[Id] = computeDefiniteAssign(View, S.EntryAssigned,
                                         assignCallEffect, &Summaries);
      const RegSet NewExit = meetAtRets(View, Assign[Id]);

      Live[Id] =
          computeLiveness(View, S.RetLive, livenessCallEffect, &Summaries);
      const RegSet NewLiveIn =
          View.getFunction().getEntry()
              ? Live[Id].LiveIn[View.getFunction().getEntry()->getId()]
              : 0;

      if (NewMustDef != S.MustDef || NewExit != S.ExitAssigned ||
          NewLiveIn != S.LiveInEntry) {
        S.MustDef = NewMustDef;
        S.ExitAssigned = NewExit;
        S.LiveInEntry = NewLiveIn;
        Changed = true;
      }
    }

    // Refresh caller-derived summaries from per-call-site facts.
    std::vector<RegSet> NewEntry(NF), NewRetLive(NF);
    for (size_t Id = 0; Id < NF; ++Id) {
      if (!Reached[Id]) {
        NewEntry[Id] = ZeroRegBit;
        NewRetLive[Id] = AllRegs & ~ZeroRegBit;
      } else {
        NewEntry[Id] =
            Id == P.getMain()->getId() ? ZeroRegBit : AllRegs;
        NewRetLive[Id] = 0;
      }
    }
    for (size_t Caller = 0; Caller < NF; ++Caller) {
      if (!Reached[Caller])
        continue;
      for (const ir::BasicBlock *B : Views[Caller]->reversePostorder()) {
        const BlockWalk W =
            walkBlock(*B, Assign[Caller].AssignedIn[B->getId()],
                      Live[Caller].LiveOut[B->getId()], Summaries);
        const auto &Insts = B->instructions();
        for (size_t I = 0; I < Insts.size(); ++I)
          if (Insts[I].Op == ir::Opcode::Call && Insts[I].Callee) {
            const unsigned Callee = Insts[I].Callee->getId();
            NewEntry[Callee] &= W.AssignedBefore[I];
            NewRetLive[Callee] |= W.LiveAfter[I];
          }
      }
    }
    for (size_t Id = 0; Id < NF; ++Id) {
      NewEntry[Id] |= ZeroRegBit;
      if (NewEntry[Id] != Summaries[Id].EntryAssigned ||
          NewRetLive[Id] != Summaries[Id].RetLive) {
        Summaries[Id].EntryAssigned = NewEntry[Id];
        Summaries[Id].RetLive = NewRetLive[Id];
        Changed = true;
      }
    }
  }
}

void ProgramDataflow::flattenInstructionFacts() {
  // Unvisited addresses (statically unreachable blocks) keep the claim-free
  // facts: nothing proved assigned beyond r0, everything possibly live.
  AssignedBeforeFlat.assign(P.instrCount(), ZeroRegBit);
  LiveAfterFlat.assign(P.instrCount(), AllRegs);

  for (const auto &F : P.functions()) {
    const cfg::CFGView View(*F);
    for (const ir::BasicBlock *B : View.reversePostorder()) {
      const BlockWalk W =
          walkBlock(*B, Assign[F->getId()].AssignedIn[B->getId()],
                    Live[F->getId()].LiveOut[B->getId()], Summaries);
      const auto &Insts = B->instructions();
      for (size_t I = 0; I < Insts.size(); ++I) {
        AssignedBeforeFlat[Insts[I].Addr] = W.AssignedBefore[I];
        LiveAfterFlat[Insts[I].Addr] = W.LiveAfter[I];
      }
    }
  }
}

} // namespace dmp::dataflow
