//===- dataflow/Meldability.cpp - Predication-safety classification --------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "dataflow/Meldability.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <unordered_set>

namespace dmp::dataflow {

const char *instrClassName(InstrClass C) {
  switch (C) {
  case InstrClass::Select:
    return "select";
  case InstrClass::PredStore:
    return "pred-store";
  case InstrClass::Unsafe:
    return "unsafe";
  }
  return "?";
}

const char *unsafeReasonName(UnsafeReason R) {
  switch (R) {
  case UnsafeReason::None:
    return "none";
  case UnsafeReason::Call:
    return "call";
  case UnsafeReason::LoopCarried:
    return "loop-carried";
  case UnsafeReason::SideExit:
    return "side-exit";
  }
  return "?";
}

namespace {

using BlockSet = std::unordered_set<const ir::BasicBlock *>;

/// Blocks reachable from \p Seeds without stepping through \p Stop (which
/// may be null for an unbounded intra-function sweep).  Seeds equal to
/// Stop are not entered.
BlockSet reachAvoiding(std::initializer_list<const ir::BasicBlock *> Seeds,
                       const ir::BasicBlock *Stop) {
  BlockSet Seen;
  std::vector<const ir::BasicBlock *> Work;
  for (const ir::BasicBlock *S : Seeds)
    if (S != Stop && Seen.insert(S).second)
      Work.push_back(S);
  while (!Work.empty()) {
    const ir::BasicBlock *B = Work.back();
    Work.pop_back();
    for (const ir::BasicBlock *Succ : B->successors())
      if (Succ != Stop && Seen.insert(Succ).second)
        Work.push_back(Succ);
  }
  return Seen;
}

/// The subset of \p Region that can reach \p Targets through successor
/// edges staying inside Region (the targets themselves act as one step
/// outside): reverse BFS seeded by Region blocks with an edge into a
/// target.
BlockSet canReach(const BlockSet &Region, const BlockSet &Targets) {
  BlockSet Core;
  std::vector<const ir::BasicBlock *> Work;
  for (const ir::BasicBlock *B : Region)
    for (const ir::BasicBlock *Succ : B->successors())
      if (Targets.count(Succ) != 0) {
        if (Core.insert(B).second)
          Work.push_back(B);
        break;
      }
  // Predecessor edges are not indexed here; iterate to a fixed point over
  // the (small) region instead.
  bool Changed = !Work.empty();
  while (Changed) {
    Changed = false;
    for (const ir::BasicBlock *B : Region) {
      if (Core.count(B) != 0)
        continue;
      for (const ir::BasicBlock *Succ : B->successors())
        if (Core.count(Succ) != 0) {
          Core.insert(B);
          Changed = true;
          break;
        }
    }
  }
  return Core;
}

/// Deterministic iteration order for a block set: ascending start address.
std::vector<const ir::BasicBlock *> sortedByAddr(const BlockSet &Blocks) {
  std::vector<const ir::BasicBlock *> V(Blocks.begin(), Blocks.end());
  std::sort(V.begin(), V.end(),
            [](const ir::BasicBlock *A, const ir::BasicBlock *B) {
              return A->getStartAddr() < B->getStartAddr();
            });
  return V;
}

void record(HammockReport &H, const ir::Instruction &I, InstrClass C,
            UnsafeReason R) {
  H.Instrs.push_back({I.Addr, C, R});
  switch (C) {
  case InstrClass::Select:
    ++H.SelectCount;
    break;
  case InstrClass::PredStore:
    ++H.PredStoreCount;
    break;
  case InstrClass::Unsafe:
    switch (R) {
    case UnsafeReason::Call:
      ++H.UnsafeCalls;
      break;
    case UnsafeReason::LoopCarried:
      ++H.UnsafeLoopCarried;
      break;
    default:
      ++H.UnsafeSideExits;
      break;
    }
    break;
  }
}

/// Classifies one non-control instruction (everything but CondBr/Jmp/Ret/
/// Halt, whose verdict depends on the region shape).
void classifyStraightLine(HammockReport &H, const ir::Instruction &I,
                          bool LoopRegion, RegSet LiveAtHeader) {
  switch (I.Op) {
  case ir::Opcode::Call:
    record(H, I, InstrClass::Unsafe, UnsafeReason::Call);
    return;
  case ir::Opcode::Store:
    record(H, I, InstrClass::PredStore, UnsafeReason::None);
    return;
  default:
    break;
  }
  // A self-recurrence on a register live around the loop (r = f(r, ...))
  // cannot be flattened into one select per region: the predicated loop
  // needs a select-µop every iteration to keep the recurrence correct.
  if (LoopRegion && instrDefs(I) != 0 && (instrUses(I) & instrDefs(I)) != 0 &&
      (LiveAtHeader & instrDefs(I)) != 0) {
    record(H, I, InstrClass::Unsafe, UnsafeReason::LoopCarried);
    return;
  }
  record(H, I, InstrClass::Select, UnsafeReason::None);
}

void classifyLoopRegion(HammockReport &H, const cfg::Loop &L,
                        uint32_t BranchAddr, RegSet LiveAtHeader) {
  BlockSet LoopBlocks(L.blocks().begin(), L.blocks().end());
  H.RegionBlocks = static_cast<unsigned>(LoopBlocks.size());
  for (const ir::BasicBlock *B : sortedByAddr(LoopBlocks))
    for (const ir::Instruction &I : B->instructions()) {
      switch (I.Op) {
      case ir::Opcode::CondBr: {
        if (I.Addr == BranchAddr) {
          // The annotated exit branch itself becomes the predicate def.
          record(H, I, InstrClass::Select, UnsafeReason::None);
          continue;
        }
        const bool TakenIn = I.Target != nullptr && L.contains(I.Target);
        const ir::BasicBlock *Fall = B->getFallthrough();
        const bool FallIn = Fall != nullptr && L.contains(Fall);
        if (TakenIn && FallIn)
          record(H, I, InstrClass::Select, UnsafeReason::None);
        else
          record(H, I, InstrClass::Unsafe, UnsafeReason::SideExit);
        continue;
      }
      case ir::Opcode::Jmp:
        if (I.Target != nullptr && L.contains(I.Target))
          record(H, I, InstrClass::Select, UnsafeReason::None);
        else
          record(H, I, InstrClass::Unsafe, UnsafeReason::SideExit);
        continue;
      case ir::Opcode::Ret:
      case ir::Opcode::Halt:
        record(H, I, InstrClass::Unsafe, UnsafeReason::SideExit);
        continue;
      default:
        classifyStraightLine(H, I, /*LoopRegion=*/true, LiveAtHeader);
      }
    }
}

void classifyHammockRegion(HammockReport &H, const ir::BasicBlock *Taken,
                           const ir::BasicBlock *Fall,
                           const ir::BasicBlock *CfmBlock, bool ReturnCfm) {
  // Region: everything both legs can touch before the CFM; the meldable
  // core is the part that can come back to the merge.
  const BlockSet Region = reachAvoiding({Taken, Fall}, CfmBlock);
  BlockSet Targets;
  if (ReturnCfm) {
    for (const ir::BasicBlock *B : Region)
      if (const ir::Instruction *Term = B->getTerminator();
          Term && Term->Op == ir::Opcode::Ret)
        Targets.insert(B);
  } else if (CfmBlock != nullptr) {
    Targets.insert(CfmBlock);
  }

  BlockSet Core = canReach(Region, Targets);
  if (ReturnCfm) {
    // Ret blocks are the merge itself, not one step before it.
    for (const ir::BasicBlock *B : Targets)
      Core.insert(B);
  }

  H.RegionBlocks = static_cast<unsigned>(Core.size());
  H.EscapeBlocks = static_cast<unsigned>(Region.size() - Core.size());

  for (const ir::BasicBlock *B : sortedByAddr(Core))
    for (const ir::Instruction &I : B->instructions()) {
      switch (I.Op) {
      case ir::Opcode::CondBr: {
        const ir::BasicBlock *FallSucc = B->getFallthrough();
        const auto Inside = [&](const ir::BasicBlock *S) {
          return S != nullptr &&
                 (Core.count(S) != 0 || (!ReturnCfm && S == CfmBlock));
        };
        if (Inside(I.Target) && Inside(FallSucc))
          record(H, I, InstrClass::Select, UnsafeReason::None);
        else
          record(H, I, InstrClass::Unsafe, UnsafeReason::SideExit);
        continue;
      }
      case ir::Opcode::Jmp:
        if (I.Target != nullptr &&
            (Core.count(I.Target) != 0 || (!ReturnCfm && I.Target == CfmBlock)))
          record(H, I, InstrClass::Select, UnsafeReason::None);
        else
          record(H, I, InstrClass::Unsafe, UnsafeReason::SideExit);
        continue;
      case ir::Opcode::Ret:
        if (ReturnCfm)
          record(H, I, InstrClass::Select, UnsafeReason::None);
        else
          record(H, I, InstrClass::Unsafe, UnsafeReason::SideExit);
        continue;
      case ir::Opcode::Halt:
        record(H, I, InstrClass::Unsafe, UnsafeReason::SideExit);
        continue;
      default:
        classifyStraightLine(H, I, /*LoopRegion=*/false, 0);
      }
    }
}

} // namespace

MeldReport analyzeMeldability(const ir::Program &P,
                              const cfg::ProgramAnalysis &PA,
                              const core::DivergeMap &Annotations,
                              const ProgramDataflow &PD) {
  MeldReport R;
  for (uint32_t BranchAddr : Annotations.sortedAddrs()) {
    // AnnotationConsistency territory; skip what it already faulted.
    if (BranchAddr >= P.instrCount() || !P.instrAt(BranchAddr).isCondBr())
      continue;
    const core::DivergeAnnotation &Ann = *Annotations.find(BranchAddr);

    HammockReport H;
    H.BranchAddr = BranchAddr;
    H.Kind = Ann.Kind;

    const ir::BasicBlock *BranchBlock = P.blockAt(BranchAddr);
    const ir::Function *F = BranchBlock->getParent();
    const ir::Instruction &Branch = P.instrAt(BranchAddr);
    const ir::BasicBlock *Taken = Branch.Target;
    const ir::BasicBlock *Fall = BranchBlock->getFallthrough();

    if (Ann.Kind == core::DivergeKind::NoCfm || Taken == nullptr ||
        Fall == nullptr) {
      // No merge point: pure dual-path execution, nothing to meld.
      R.Hammocks.push_back(std::move(H));
      continue;
    }

    if (Ann.Kind == core::DivergeKind::Loop) {
      const cfg::FunctionAnalysis &FA = PA.forFunction(*F);
      const cfg::Loop *L = nullptr;
      if (Ann.LoopHeaderAddr < P.instrCount()) {
        const ir::BasicBlock *Header = P.blockAt(Ann.LoopHeaderAddr);
        if (Header->getStartAddr() == Ann.LoopHeaderAddr &&
            Header->getParent() == F)
          L = FA.LI.loopWithHeader(Header);
      }
      if (L != nullptr && L->contains(BranchBlock)) {
        const RegSet LiveAtHeader =
            PD.liveness(*F).LiveIn[L->getHeader()->getId()];
        classifyLoopRegion(H, *L, BranchAddr, LiveAtHeader);
      }
      // else: CFM05's finding; an empty non-meldable row.
    } else {
      // First structurally valid CFM point delimits the region (highest
      // merge probability first, mirroring CfmLegality).
      const ir::BasicBlock *CfmBlock = nullptr;
      bool ReturnCfm = false;
      bool Found = false;
      for (const core::CfmPoint &Cfm : Ann.Cfms) {
        if (Cfm.PointKind == core::CfmPoint::Kind::Return) {
          ReturnCfm = true;
          Found = true;
          break;
        }
        if (Cfm.Addr >= P.instrCount())
          continue; // ANN03's finding.
        const ir::BasicBlock *Candidate = P.blockAt(Cfm.Addr);
        if (Candidate->getStartAddr() != Cfm.Addr ||
            Candidate->getParent() != F)
          continue; // ANN04 / CFM11.
        CfmBlock = Candidate;
        Found = true;
        break;
      }
      if (Found)
        classifyHammockRegion(H, Taken, Fall, CfmBlock, ReturnCfm);
    }

    H.Meldable = H.RegionBlocks > 0 && H.unsafeCount() == 0 &&
                 H.EscapeBlocks == 0;
    R.Hammocks.push_back(std::move(H));
  }
  return R;
}

std::string renderMeldReportTsv(const MeldReport &R,
                                const std::vector<std::string> &PrefixHeader,
                                const std::vector<std::string> &PrefixValues) {
  std::string Out;
  for (const std::string &H : PrefixHeader) {
    Out += H;
    Out += '\t';
  }
  Out += "branch\tkind\tblocks\tescapes\tselect\tpred_store\tunsafe_call\t"
         "unsafe_loop\tunsafe_exit\tmeldable\n";
  for (const HammockReport &H : R.Hammocks) {
    std::string Row;
    for (const std::string &V : PrefixValues) {
      Row += V;
      Row += '\t';
    }
    Row += formatString("%u\t%s\t%u\t%u\t%u\t%u\t%u\t%u\t%u\t%s", H.BranchAddr,
                        core::divergeKindName(H.Kind), H.RegionBlocks,
                        H.EscapeBlocks, H.SelectCount, H.PredStoreCount,
                        H.UnsafeCalls, H.UnsafeLoopCarried, H.UnsafeSideExits,
                        H.Meldable ? "yes" : "no");
    Out += Row;
    Out += '\n';
  }
  return Out;
}

} // namespace dmp::dataflow
