//===- dataflow/Soundness.h - Dynamic soundness of static facts ---*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential validation of the dataflow facts against execution ground
/// truth: feed the reference emulator's retired-instruction stream through
/// a checker holding the per-address claims of a ProgramDataflow and
/// assert neither claim family is ever contradicted:
///
///   definite assignment  if assignedBefore(addr) contains r, then some
///                        retired instruction has already written r when
///                        the instruction at addr retires (the executed
///                        path is one of the "every path"s the claim
///                        quantifies over).
///   liveness             if r is claimed dead after addr (not in the
///                        dynamic live-after set), no later retired
///                        instruction reads r before one writes it.  The
///                        claim is sticky per register until the next
///                        write clears it.
///
/// Call boundary: the static liveAfter() of a Call is the caller-side fact
/// after the callee *returns*, but dynamically the callee body retires
/// next, so the checker's per-address claim table substitutes the callee's
/// dynamic continuation (LiveInEntry ∪ (liveAfter ∖ MustDef)) at call
/// sites.  Ret claims use the union over call sites (RetLive), a superset
/// of any specific caller's demand — so still sound to assert.
///
/// The checker also accepts explicit claim tables, so tests can corrupt a
/// single bit and prove the harness catches fabricated facts (the canary
/// tests — without them a trivially-empty claim table would pass).
///
//===----------------------------------------------------------------------===//

#ifndef DMP_DATAFLOW_SOUNDNESS_H
#define DMP_DATAFLOW_SOUNDNESS_H

#include "dataflow/Dataflow.h"
#include "profile/Emulator.h"

#include <string>
#include <vector>

namespace dmp::dataflow {

/// Outcome of one soundness run.
struct SoundnessResult {
  uint64_t Retired = 0;       ///< Instructions fed through the checker.
  uint64_t ClaimsChecked = 0; ///< Per-register claim evaluations.
  uint64_t Violations = 0;
  std::string FirstViolation; ///< Empty when sound.

  bool sound() const { return Violations == 0; }
};

/// Streaming checker over retired instructions.
class SoundnessChecker {
public:
  /// Claims come straight from \p PD (with the call-site live-after
  /// substitution described in the file comment).
  SoundnessChecker(const ir::Program &P, const ProgramDataflow &PD);

  /// Explicit claim tables, both of size P.instrCount(): used by the
  /// canary tests to inject deliberately unsound facts.
  SoundnessChecker(const ir::Program &P,
                   std::vector<RegSet> AssignedBeforeClaims,
                   std::vector<RegSet> LiveAfterClaims);

  /// Feeds one retired instruction.  Returns false on the first recorded
  /// violation (callers may stop early; feeding more stays valid).
  bool retire(const profile::DynInstr &D);

  const SoundnessResult &result() const { return Result; }

private:
  const ir::Program &P;
  std::vector<RegSet> AssignedClaims; ///< Per address.
  std::vector<RegSet> LiveClaims;     ///< Per address (dynamic continuation).
  RegSet WrittenEver = ZeroRegBit;
  RegSet DeadClaimed = 0; ///< Sticky dead claims awaiting a write.
  /// Claim address that asserted each pending dead claim (diagnostics).
  uint32_t DeadClaimOrigin[ir::NumRegs] = {};
  SoundnessResult Result;
};

/// Runs the program on \p Image under the emulator's fast path, checking
/// every retired instruction against \p PD, for at most \p MaxInstrs
/// instructions.
SoundnessResult checkSoundness(const ir::Program &P, const ProgramDataflow &PD,
                               const std::vector<int64_t> &Image,
                               uint64_t MaxInstrs);

} // namespace dmp::dataflow

#endif // DMP_DATAFLOW_SOUNDNESS_H
