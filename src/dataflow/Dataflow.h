//===- dataflow/Dataflow.h - Concrete dataflow analyses -----------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete analyses built on the generic solver (dataflow/Solver.h):
///
///   liveness             backward/union: which registers may be read
///                        before their next write.
///   definite assignment  forward/intersect: which registers are written
///                        on *every* path from program entry (the whole-
///                        program generalization of IRLint's old IR15
///                        maybe-undef sweep).
///   reaching definitions backward compatible forward/union over one bit
///                        per register-writing instruction.
///   block effects        per-block side-effect summaries (stores, loads,
///                        calls, halts, rets) consumed by CfmLegality and
///                        the meldability classifier.
///
/// The per-function primitives take explicit call-boundary summaries (what
/// a Call uses/defines) so they stay context-free and property-testable;
/// ProgramDataflow is the whole-program driver that iterates the function-
/// level facts to their own fixed point:
///
///   EntryAssigned[f] = meet over call sites of assigned-before-call
///   ExitAssigned[f]  = meet over f's ret blocks of assigned-at-ret
///   MustDef[f]       = ExitAssigned computed from an empty entry set
///   RetLive[f]       = join over call sites of live-after-call
///   LiveIn[f]        = live-in of f's entry block
///
/// All summary updates are monotone (the assigned sets only shrink from
/// their optimistic all-ones start, the live sets only grow from empty),
/// so the outer iteration converges; the rounds are exposed for tests.
///
/// Soundness contract (validated dynamically by dataflow/Soundness.h
/// against the emulator's retired-instruction trace): a register the
/// analysis claims definitely-assigned before an instruction has always
/// been written when that instruction retires, and a register claimed
/// dead after an instruction is never read again before being written.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_DATAFLOW_DATAFLOW_H
#define DMP_DATAFLOW_DATAFLOW_H

#include "dataflow/Bitset.h"
#include "dataflow/Solver.h"
#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace dmp::dataflow {

/// One bit per architectural register (ir::NumRegs == 32 exactly).
using RegSet = uint32_t;
inline constexpr RegSet AllRegs = ~static_cast<RegSet>(0);
inline constexpr RegSet ZeroRegBit = 1u; // r0, always assigned, never dead.

inline RegSet regBit(ir::Reg R) { return RegSet(1) << R; }

/// Registers \p I reads (per-opcode Src1/Src2 usage).
RegSet instrUses(const ir::Instruction &I);
/// Register \p I writes, as a set (empty for non-writing opcodes and for
/// writes to r0, which the hardware drops).
RegSet instrDefs(const ir::Instruction &I);

/// What a Call instruction does at a function boundary, from the caller's
/// point of view.  Pass zeros to treat calls as transparent (the intra-
/// function configuration the property tests exercise).
struct CallEffect {
  RegSet Uses = 0; ///< Registers the callee may read before writing.
  RegSet Defs = 0; ///< Registers the callee writes on every return path.
};

/// Resolves the CallEffect of one callee; per-function analyses take this
/// as a parameter so the whole-program driver can thread its current
/// summaries through without a layering cycle.
using CallEffectFn = CallEffect (*)(const ir::Function &Callee, void *Ctx);

/// Per-function liveness facts (backward, union).
struct LivenessResult {
  std::vector<RegSet> LiveIn;  ///< Per block id.
  std::vector<RegSet> LiveOut; ///< Per block id.
  unsigned Rounds = 0;
};

/// Liveness over one function.  \p RetLiveOut is the live-out of every Ret
/// block (the caller's demand; Halt blocks always get an empty live-out).
/// \p CallFn (optional) maps Call instructions to their boundary effect.
LivenessResult computeLiveness(const cfg::CFGView &View, RegSet RetLiveOut,
                               CallEffectFn CallFn = nullptr,
                               void *CallCtx = nullptr);

/// Per-function definite-assignment facts (forward, intersect).
struct DefiniteAssignResult {
  std::vector<RegSet> AssignedIn;  ///< Per block id.
  std::vector<RegSet> AssignedOut; ///< Per block id.
  unsigned Rounds = 0;
};

/// Definite assignment over one function: a register is in AssignedIn[b]
/// when every path from the function entry (seeded with \p EntryAssigned)
/// writes it before reaching b.  Calls add CallEffect::Defs.
DefiniteAssignResult computeDefiniteAssign(const cfg::CFGView &View,
                                           RegSet EntryAssigned,
                                           CallEffectFn CallFn = nullptr,
                                           void *CallCtx = nullptr);

/// Reaching definitions over one function.  Definition sites are the
/// register-writing instructions, numbered densely in address order.
struct ReachingDefsResult {
  /// Address of each definition site, indexed by definition id.
  std::vector<uint32_t> DefAddrs;
  /// Definition ids reaching block entry / exit, per block id.
  std::vector<DynBitset> In;
  std::vector<DynBitset> Out;
  unsigned Rounds = 0;

  unsigned defCount() const {
    return static_cast<unsigned>(DefAddrs.size());
  }
};

ReachingDefsResult computeReachingDefs(const cfg::CFGView &View);

/// Per-block side-effect summary.
struct BlockEffects {
  uint32_t Stores = 0;
  uint32_t Loads = 0;
  uint32_t Calls = 0;
  bool HasHalt = false;
  bool HasRet = false;

  bool pure() const {
    return Stores == 0 && Calls == 0 && !HasHalt && !HasRet;
  }
};

std::vector<BlockEffects> computeBlockEffects(const cfg::CFGView &View);

/// Whole-program dataflow: runs the per-function analyses with
/// interprocedural call/return boundaries iterated to a fixed point, then
/// flattens per-instruction facts over the program's address space.
///
/// The program must be finalized and structurally valid (IRLint-clean at
/// error severity): CFGView construction assumes well-formed blocks.
class ProgramDataflow {
public:
  explicit ProgramDataflow(const ir::Program &P);

  const ir::Program &getProgram() const { return P; }

  /// Function-boundary summaries, indexed by ir::Function::getId().
  struct FunctionSummary {
    RegSet EntryAssigned = AllRegs; ///< Meet over call sites (main: {r0}).
    RegSet ExitAssigned = AllRegs;  ///< Assigned at every ret, given entry.
    RegSet MustDef = AllRegs;       ///< Assigned at every ret, empty entry.
    RegSet LiveInEntry = 0;         ///< May be read before written.
    RegSet RetLive = 0;             ///< Join of live-after over call sites.
  };

  const FunctionSummary &summary(const ir::Function &F) const {
    return Summaries[F.getId()];
  }
  const LivenessResult &liveness(const ir::Function &F) const {
    return Live[F.getId()];
  }
  const DefiniteAssignResult &definiteAssign(const ir::Function &F) const {
    return Assign[F.getId()];
  }
  const std::vector<BlockEffects> &effects(const ir::Function &F) const {
    return Effects[F.getId()];
  }

  /// Registers definitely written before the instruction at \p Addr
  /// executes (r0 always included).
  RegSet assignedBefore(uint32_t Addr) const { return AssignedBeforeFlat[Addr]; }

  /// Registers that may still be read before their next write once the
  /// instruction at \p Addr has executed.  The complement (minus r0) is
  /// the set of dead registers at that point.
  RegSet liveAfter(uint32_t Addr) const { return LiveAfterFlat[Addr]; }

  /// Outer (function-summary) fixpoint rounds; tests pin convergence.
  unsigned interRounds() const { return InterRounds; }

private:
  void solveFunctions();
  void flattenInstructionFacts();

  const ir::Program &P;
  std::vector<FunctionSummary> Summaries;
  std::vector<LivenessResult> Live;
  std::vector<DefiniteAssignResult> Assign;
  std::vector<std::vector<BlockEffects>> Effects;
  std::vector<RegSet> AssignedBeforeFlat;
  std::vector<RegSet> LiveAfterFlat;
  unsigned InterRounds = 0;
};

} // namespace dmp::dataflow

#endif // DMP_DATAFLOW_DATAFLOW_H
