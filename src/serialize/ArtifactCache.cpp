//===- serialize/ArtifactCache.cpp - Content-addressed cache --------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serialize/ArtifactCache.h"

#include "serialize/ByteStream.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serialize;

namespace {

constexpr uint32_t kBlobMagic = 0x444D5043; // "DMPC"
/// Container version: covers the blob header only; payload formats carry
/// their own version (serialize::kFormatVersion).
constexpr uint32_t kContainerVersion = 1;
constexpr size_t kHeaderSize = 4 + 4 + 8 + 32;

namespace fs = std::filesystem;

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  const long Size = std::ftell(F);
  if (Size < 0) {
    std::fclose(F);
    return false;
  }
  std::fseek(F, 0, SEEK_SET);
  Out.resize(static_cast<size_t>(Size));
  const size_t Read = Size == 0 ? 0 : std::fread(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  return Read == Out.size();
}

bool writeFile(const std::string &Path, const std::vector<uint8_t> &Data) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  const size_t Written =
      Data.empty() ? 0 : std::fwrite(Data.data(), 1, Data.size(), F);
  const bool Ok = std::fclose(F) == 0 && Written == Data.size();
  return Ok;
}

} // namespace

ArtifactCache::ArtifactCache(std::string Dir) : Root(std::move(Dir)) {}

std::string ArtifactCache::blobPath(const Digest &Key) const {
  const std::string Hex = Key.hex();
  return Root + "/" + Hex.substr(0, 2) + "/" + Hex + ".blob";
}

StatusOr<std::vector<uint8_t>> ArtifactCache::load(const Digest &Key) {
  if (Faults) {
    Status Injected = Faults->check(fault::Site::CacheLoad, Key.hex());
    if (!Injected.ok()) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return Injected;
    }
  }

  const std::string Path = blobPath(Key);
  std::vector<uint8_t> Blob;
  if (!readFile(Path, Blob)) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return Status::notFound("no blob for key " + Key.hex(),
                            "serialize::ArtifactCache");
  }

  auto Reject = [&](const char *Why) -> StatusOr<std::vector<uint8_t>> {
    std::error_code EC;
    fs::remove(Path, EC); // heal: drop the bad blob so a store can replace it
    Misses.fetch_add(1, std::memory_order_relaxed);
    CorruptDeletes.fetch_add(1, std::memory_order_relaxed);
    return Status::corrupt(std::string(Why) + " for key " + Key.hex(),
                           "serialize::ArtifactCache");
  };

  if (Blob.size() < kHeaderSize)
    return Reject("blob shorter than header");
  ByteReader R(Blob);
  if (R.readU32() != kBlobMagic)
    return Reject("bad blob magic");
  if (R.readU32() != kContainerVersion)
    return Reject("container version mismatch");
  const uint64_t PayloadSize = R.readU64();
  Digest Stored;
  for (uint8_t &B : Stored.Bytes)
    B = R.readU8();
  if (!R.ok() || PayloadSize != Blob.size() - kHeaderSize)
    return Reject("payload size mismatch");

  std::vector<uint8_t> Payload(Blob.begin() + kHeaderSize, Blob.end());
  if (Hasher::hash(Payload.data(), Payload.size()) != Stored)
    return Reject("payload digest mismatch");

  Hits.fetch_add(1, std::memory_order_relaxed);
  return Payload;
}

Status ArtifactCache::store(const Digest &Key,
                            const std::vector<uint8_t> &Payload) {
  auto Fail = [&](std::string Why) {
    FailedStores.fetch_add(1, std::memory_order_relaxed);
    return Status::transient(std::move(Why) + " for key " + Key.hex(),
                             "serialize::ArtifactCache");
  };

  if (Faults) {
    Status Injected = Faults->check(fault::Site::CacheStore, Key.hex());
    if (!Injected.ok()) {
      FailedStores.fetch_add(1, std::memory_order_relaxed);
      return Injected;
    }
  }

  const std::string Path = blobPath(Key);
  std::error_code EC;
  fs::create_directories(fs::path(Path).parent_path(), EC);
  if (EC)
    return Fail("cannot create cache directory");

  ByteWriter W;
  W.writeU32(kBlobMagic);
  W.writeU32(kContainerVersion);
  W.writeU64(Payload.size());
  const Digest PayloadDigest = Hasher::hash(Payload.data(), Payload.size());
  W.writeBytes(PayloadDigest.Bytes.data(), PayloadDigest.Bytes.size());
  W.writeBytes(Payload.data(), Payload.size());

  // Unique temp name per process/thread; rename is atomic on POSIX.
  const std::string Temp =
      Path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(TempCounter.fetch_add(1, std::memory_order_relaxed));
  if (!writeFile(Temp, W.bytes())) {
    std::error_code Ignored;
    fs::remove(Temp, Ignored);
    return Fail("cannot write temp blob");
  }
  fs::rename(Temp, Path, EC);
  if (EC) {
    std::error_code Ignored;
    fs::remove(Temp, Ignored);
    return Fail("cannot rename temp blob");
  }
  Stores.fetch_add(1, std::memory_order_relaxed);
  return Status();
}
