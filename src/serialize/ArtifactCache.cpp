//===- serialize/ArtifactCache.cpp - Content-addressed cache --------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serialize/ArtifactCache.h"

#include "serialize/ByteStream.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serialize;

namespace {

constexpr uint32_t kBlobMagic = 0x444D5043; // "DMPC"
/// Container version: covers the blob header only; payload formats carry
/// their own version (serialize::kFormatVersion).
constexpr uint32_t kContainerVersion = 1;
constexpr size_t kHeaderSize = 4 + 4 + 8 + 32;

namespace fs = std::filesystem;

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  const long Size = std::ftell(F);
  if (Size < 0) {
    std::fclose(F);
    return false;
  }
  std::fseek(F, 0, SEEK_SET);
  Out.resize(static_cast<size_t>(Size));
  const size_t Read = Size == 0 ? 0 : std::fread(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  return Read == Out.size();
}

bool writeFile(const std::string &Path, const std::vector<uint8_t> &Data) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  const size_t Written =
      Data.empty() ? 0 : std::fwrite(Data.data(), 1, Data.size(), F);
  const bool Ok = std::fclose(F) == 0 && Written == Data.size();
  return Ok;
}

/// An orphaned temp file is anything our store() naming scheme produced:
/// `<hex>.blob.tmp.<pid>.<n>`.  Matching on the ".tmp." infix keeps the
/// sweep oblivious to pid/counter formats of past versions.
bool isTempName(const std::string &Name) {
  return Name.find(".tmp.") != std::string::npos;
}

} // namespace

ArtifactCache::ArtifactCache(std::string Dir) : Root(std::move(Dir)) {}

ArtifactCache::~ArtifactCache() {
  std::lock_guard<std::mutex> Lock(LockMutex);
  if (LockFd != -1)
    ::close(LockFd); // drops any flock we still hold
}

std::string ArtifactCache::blobPath(const Digest &Key) const {
  const std::string Hex = Key.hex();
  return Root + "/" + Hex.substr(0, 2) + "/" + Hex + ".blob";
}

std::string ArtifactCache::lockPath() const { return Root + "/.lock"; }

bool ArtifactCache::acquireShared() {
  std::lock_guard<std::mutex> Lock(LockMutex);
  if (LockFd == -1) {
    std::error_code EC;
    fs::create_directories(Root, EC);
    LockFd = ::open(lockPath().c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (LockFd == -1)
      return false; // advisory only: proceed unlocked
  }
  if (SharedHolders == 0) {
    // May briefly block on another process's maintenance pass; routine
    // traffic (shared vs shared) never blocks.
    while (::flock(LockFd, LOCK_SH) == -1 && errno == EINTR) {
    }
  }
  ++SharedHolders;
  return true;
}

void ArtifactCache::releaseShared() {
  std::lock_guard<std::mutex> Lock(LockMutex);
  if (SharedHolders == 0)
    return; // acquireShared failed for this caller
  if (--SharedHolders == 0 && LockFd != -1)
    ::flock(LockFd, LOCK_UN);
}

void ArtifactCache::sweepLocked() {
  std::error_code EC;
  fs::recursive_directory_iterator It(Root, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    if (!It->is_regular_file(EC))
      continue;
    const fs::path P = It->path();
    if (!isTempName(P.filename().string()))
      continue;
    std::error_code Ignored;
    if (fs::remove(P, Ignored) && !Ignored)
      OrphansReaped.fetch_add(1, std::memory_order_relaxed);
  }
}

void ArtifactCache::sweepNow() {
  std::lock_guard<std::mutex> Lock(LockMutex);
  if (SharedHolders > 0) {
    // In-process traffic holds the shared lock; the sweep will get its
    // chance on a later call.
    LockContention.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (LockFd == -1) {
    std::error_code EC;
    fs::create_directories(Root, EC);
    LockFd = ::open(lockPath().c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  }
  if (LockFd != -1) {
    if (::flock(LockFd, LOCK_EX | LOCK_NB) == -1) {
      // Another process is using the cache; its writers are alive, so any
      // temp files we would reap may be in flight.  Skip.
      LockContention.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    sweepLocked();
    SweepDone = true;
    ::flock(LockFd, LOCK_UN);
    return;
  }
  // No lock file at all (unwritable dir?): sweep best-effort anyway — the
  // only files reaped are our own naming scheme's temps.
  sweepLocked();
  SweepDone = true;
}

void ArtifactCache::ensureSwept() {
  {
    std::lock_guard<std::mutex> Lock(LockMutex);
    if (SweepDone)
      return;
  }
  sweepNow();
  // One attempt only: if the sweep was skipped on contention, another live
  // process owns the cache and already ran its own sweep on open.  Marking
  // done either way keeps the hot path to a single mutex-guarded check.
  std::lock_guard<std::mutex> Lock(LockMutex);
  SweepDone = true;
}

uint64_t ArtifactCache::evictToBudget(uint64_t BudgetBytes,
                                      const std::vector<Digest> &Protect) {
  std::lock_guard<std::mutex> Lock(LockMutex);
  if (SharedHolders > 0) {
    LockContention.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  if (LockFd == -1) {
    std::error_code EC;
    fs::create_directories(Root, EC);
    LockFd = ::open(lockPath().c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  }
  const bool Locked =
      LockFd != -1 && ::flock(LockFd, LOCK_EX | LOCK_NB) == 0;
  if (LockFd != -1 && !Locked) {
    LockContention.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }

  struct BlobInfo {
    std::string Path;
    uint64_t Size;
    fs::file_time_type MTime;
  };
  std::vector<BlobInfo> Blobs;
  uint64_t TotalBytes = 0;
  std::error_code EC;
  fs::recursive_directory_iterator It(Root, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    if (!It->is_regular_file(EC))
      continue;
    const fs::path P = It->path();
    if (P.extension() != ".blob")
      continue;
    std::error_code SEC, TEC;
    const uint64_t Size = fs::file_size(P, SEC);
    const auto MTime = fs::last_write_time(P, TEC);
    if (SEC || TEC)
      continue;
    TotalBytes += Size;
    Blobs.push_back({P.string(), Size, MTime});
  }

  uint64_t Evicted = 0;
  if (TotalBytes > BudgetBytes) {
    std::vector<std::string> Protected;
    Protected.reserve(Protect.size());
    for (const Digest &Key : Protect)
      Protected.push_back(blobPath(Key));
    // Oldest first; path tiebreak keeps the pass deterministic when mtimes
    // collide (coarse filesystem timestamps).
    std::sort(Blobs.begin(), Blobs.end(),
              [](const BlobInfo &A, const BlobInfo &B) {
                if (A.MTime != B.MTime)
                  return A.MTime < B.MTime;
                return A.Path < B.Path;
              });
    for (const BlobInfo &Blob : Blobs) {
      if (TotalBytes <= BudgetBytes)
        break;
      if (std::find(Protected.begin(), Protected.end(), Blob.Path) !=
          Protected.end())
        continue;
      std::error_code Ignored;
      if (fs::remove(Blob.Path, Ignored) && !Ignored) {
        TotalBytes -= Blob.Size;
        ++Evicted;
      }
    }
    Evictions.fetch_add(Evicted, std::memory_order_relaxed);
  }

  if (Locked)
    ::flock(LockFd, LOCK_UN);
  return Evicted;
}

StatusOr<std::vector<uint8_t>> ArtifactCache::load(const Digest &Key) {
  ensureSwept();
  if (Faults) {
    Status Injected = Faults->check(fault::Site::CacheLoad, Key.hex());
    if (!Injected.ok()) {
      Misses.fetch_add(1, std::memory_order_relaxed);
      return Injected;
    }
  }

  const bool Locked = acquireShared();
  const std::string Path = blobPath(Key);
  std::vector<uint8_t> Blob;
  if (!readFile(Path, Blob)) {
    if (Locked)
      releaseShared();
    Misses.fetch_add(1, std::memory_order_relaxed);
    return Status::notFound("no blob for key " + Key.hex(),
                            "serialize::ArtifactCache");
  }
  if (Locked)
    releaseShared();

  auto Reject = [&](const char *Why) -> StatusOr<std::vector<uint8_t>> {
    std::error_code EC;
    fs::remove(Path, EC); // heal: drop the bad blob so a store can replace it
    Misses.fetch_add(1, std::memory_order_relaxed);
    CorruptDeletes.fetch_add(1, std::memory_order_relaxed);
    return Status::corrupt(std::string(Why) + " for key " + Key.hex(),
                           "serialize::ArtifactCache");
  };

  if (Blob.size() < kHeaderSize)
    return Reject("blob shorter than header");
  ByteReader R(Blob);
  if (R.readU32() != kBlobMagic)
    return Reject("bad blob magic");
  if (R.readU32() != kContainerVersion)
    return Reject("container version mismatch");
  const uint64_t PayloadSize = R.readU64();
  Digest Stored;
  for (uint8_t &B : Stored.Bytes)
    B = R.readU8();
  if (!R.ok() || PayloadSize != Blob.size() - kHeaderSize)
    return Reject("payload size mismatch");

  std::vector<uint8_t> Payload(Blob.begin() + kHeaderSize, Blob.end());
  if (Hasher::hash(Payload.data(), Payload.size()) != Stored)
    return Reject("payload digest mismatch");

  Hits.fetch_add(1, std::memory_order_relaxed);
  return Payload;
}

Status ArtifactCache::store(const Digest &Key,
                            const std::vector<uint8_t> &Payload) {
  ensureSwept();
  auto Fail = [&](std::string Why) {
    FailedStores.fetch_add(1, std::memory_order_relaxed);
    return Status::transient(std::move(Why) + " for key " + Key.hex(),
                             "serialize::ArtifactCache");
  };

  if (Faults) {
    Status Injected = Faults->check(fault::Site::CacheStore, Key.hex());
    if (!Injected.ok()) {
      FailedStores.fetch_add(1, std::memory_order_relaxed);
      return Injected;
    }
  }

  const std::string Path = blobPath(Key);
  std::error_code EC;
  fs::create_directories(fs::path(Path).parent_path(), EC);
  if (EC)
    return Fail("cannot create cache directory");

  ByteWriter W;
  W.writeU32(kBlobMagic);
  W.writeU32(kContainerVersion);
  W.writeU64(Payload.size());
  const Digest PayloadDigest = Hasher::hash(Payload.data(), Payload.size());
  W.writeBytes(PayloadDigest.Bytes.data(), PayloadDigest.Bytes.size());
  W.writeBytes(Payload.data(), Payload.size());

  const bool Locked = acquireShared();
  // Unique temp name per process/thread; rename is atomic on POSIX.
  const std::string Temp =
      Path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(TempCounter.fetch_add(1, std::memory_order_relaxed));
  if (!writeFile(Temp, W.bytes())) {
    std::error_code Ignored;
    fs::remove(Temp, Ignored);
    if (Locked)
      releaseShared();
    return Fail("cannot write temp blob");
  }
  // The crash harness's most hostile instant: temp written, rename not yet
  // issued.  A death here must leave only an orphan for the sweep.
  if (Faults)
    Faults->maybeCrash(fault::Site::CrashMidStore, Key.hex());
  fs::rename(Temp, Path, EC);
  if (EC) {
    std::error_code Ignored;
    fs::remove(Temp, Ignored);
    if (Locked)
      releaseShared();
    return Fail("cannot rename temp blob");
  }
  if (Locked)
    releaseShared();
  Stores.fetch_add(1, std::memory_order_relaxed);
  return Status();
}
