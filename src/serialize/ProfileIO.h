//===- serialize/ProfileIO.h - Versioned artifact formats -------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned binary (de)serialization for the three cacheable artifact
/// kinds of the experiment pipeline:
///
///  - profile::ProfileData   (edge + branch-misprediction + loop profiles),
///  - core::DivergeMap       (diverge-branch annotation sets),
///  - sim::SimStats          (one simulation's counters).
///
/// Every payload starts with a per-kind tag and format version; readers
/// reject unknown tags and version mismatches with a one-line diagnostic
/// (lowercase, no trailing period, per the project's error-message style).
/// Map-like containers are emitted in ascending key order, so serializing
/// the same data always yields the same bytes — which is what lets the
/// artifact cache treat "payload digest" as an integrity check and keeps
/// cached results bit-identical to recomputed ones.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERIALIZE_PROFILEIO_H
#define DMP_SERIALIZE_PROFILEIO_H

#include "core/DivergeInfo.h"
#include "profile/Profiler.h"
#include "serialize/ByteStream.h"
#include "sim/SimStats.h"
#include "support/Status.h"

#include <cstdint>
#include <vector>

namespace dmp::serialize {

/// Bump when any payload encoding changes; readers reject other versions.
constexpr uint32_t kFormatVersion = 2;

/// Cache-schema version folded into every artifact-cache key (see
/// harness::profileCacheKey / simCacheKey).  Bump whenever the *meaning* of
/// a cached artifact changes without its input spec changing — e.g. a
/// payload-encoding change (kFormatVersion bump), a new field in SimStats,
/// or a semantic fix in the profiler/simulator.  Old entries then miss
/// instead of being misread as current results.
constexpr uint32_t kCacheSchemaVersion = 3;

/// Payload kind tags (first u32 of every payload).
enum class ArtifactKind : uint32_t {
  Profile = 0x50524F46,   // "PROF"
  DivergeMap = 0x444D4150, // "DMAP"
  SimStats = 0x53494D53,  // "SIMS"
};

// Decoders return a Corrupt Status (origin "serialize::ProfileIO", message
// per the project's one-line diagnostic style) on any malformed payload and
// never crash; \p Data is written only on success.
std::vector<uint8_t> encodeProfileData(const profile::ProfileData &Data);
Status decodeProfileData(const std::vector<uint8_t> &Blob,
                         profile::ProfileData &Data);

std::vector<uint8_t> encodeDivergeMap(const core::DivergeMap &Map);
Status decodeDivergeMap(const std::vector<uint8_t> &Blob,
                        core::DivergeMap &Map);

std::vector<uint8_t> encodeSimStats(const sim::SimStats &Stats);
Status decodeSimStats(const std::vector<uint8_t> &Blob, sim::SimStats &Stats);

} // namespace dmp::serialize

#endif // DMP_SERIALIZE_PROFILEIO_H
