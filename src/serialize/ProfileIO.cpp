//===- serialize/ProfileIO.cpp - Versioned artifact formats ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "serialize/ProfileIO.h"

#include <algorithm>

using namespace dmp;
using namespace dmp::serialize;

namespace {

void writeHeader(ByteWriter &W, ArtifactKind Kind) {
  W.writeU32(static_cast<uint32_t>(Kind));
  W.writeU32(kFormatVersion);
}

constexpr const char *kOrigin = "serialize::ProfileIO";

Status corrupt(std::string Msg) {
  return Status::corrupt(std::move(Msg), kOrigin);
}

/// Validates the tag/version header; returns Corrupt on mismatch.
Status readHeader(ByteReader &R, ArtifactKind Expected) {
  const uint32_t Kind = R.readU32();
  const uint32_t Version = R.readU32();
  if (!R.ok())
    return corrupt("artifact truncated before header");
  if (Kind != static_cast<uint32_t>(Expected))
    return corrupt("artifact kind mismatch");
  if (Version != kFormatVersion)
    return corrupt("artifact format version mismatch (got " +
                   std::to_string(Version) + ", want " +
                   std::to_string(kFormatVersion) + ")");
  return Status();
}

/// Keys of an unordered map in ascending order, for deterministic output.
template <typename MapT>
std::vector<uint32_t> sortedKeys(const MapT &Map) {
  std::vector<uint32_t> Keys;
  Keys.reserve(Map.size());
  for (const auto &[Key, Value] : Map)
    Keys.push_back(Key);
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

Status finishDecode(const ByteReader &R) {
  if (!R.ok())
    return corrupt("artifact truncated");
  if (!R.atEnd())
    return corrupt("artifact has trailing bytes");
  return Status();
}

} // namespace

//===----------------------------------------------------------------------===//
// ProfileData
//===----------------------------------------------------------------------===//

std::vector<uint8_t>
serialize::encodeProfileData(const profile::ProfileData &Data) {
  ByteWriter W;
  writeHeader(W, ArtifactKind::Profile);

  // Edge profile: branches, then block execution counts.
  const auto &Branches = Data.Edges.branches();
  W.writeU64(Branches.size());
  for (uint32_t Addr : sortedKeys(Branches)) {
    const cfg::BranchCounts C = Data.Edges.branchCounts(Addr);
    W.writeU32(Addr);
    W.writeU64(C.Taken);
    W.writeU64(C.NotTaken);
  }
  const auto &Blocks = Data.Edges.blockExecCounts();
  W.writeU64(Blocks.size());
  for (uint32_t Addr : sortedKeys(Blocks)) {
    W.writeU32(Addr);
    W.writeU64(Blocks.at(Addr));
  }

  // Branch misprediction profile.
  const auto &Mispredicts = Data.Branches.all();
  W.writeU64(Mispredicts.size());
  for (uint32_t Addr : sortedKeys(Mispredicts)) {
    const profile::BranchStats S = Data.Branches.stats(Addr);
    W.writeU32(Addr);
    W.writeU64(S.Executed);
    W.writeU64(S.Taken);
    W.writeU64(S.Mispredicted);
  }

  // Loop profile.
  const auto &Loops = Data.Loops.all();
  W.writeU64(Loops.size());
  for (uint32_t Header : sortedKeys(Loops)) {
    const profile::LoopStats &S = *Data.Loops.find(Header);
    W.writeU32(Header);
    W.writeU64(S.DynamicInstrs);
    W.writeU64(S.Invocations);
    const auto &Buckets = S.Iterations.buckets();
    W.writeU64(Buckets.size());
    for (const auto &[Value, Count] : Buckets) { // std::map: already sorted
      W.writeU64(Value);
      W.writeU64(Count);
    }
  }

  W.writeU64(Data.DynamicInstrs);
  W.writeU8(Data.Completed ? 1 : 0);
  return W.take();
}

Status serialize::decodeProfileData(const std::vector<uint8_t> &Blob,
                                    profile::ProfileData &Data) {
  ByteReader R(Blob);
  if (Status S = readHeader(R, ArtifactKind::Profile); !S.ok())
    return S;

  profile::ProfileData Out;
  const uint64_t NumBranches = R.readU64();
  if (NumBranches > R.remaining())
    return corrupt("artifact truncated");
  for (uint64_t I = 0; I < NumBranches && R.ok(); ++I) {
    const uint32_t Addr = R.readU32();
    cfg::BranchCounts C;
    C.Taken = R.readU64();
    C.NotTaken = R.readU64();
    Out.Edges.setBranchCounts(Addr, C);
  }
  const uint64_t NumBlocks = R.readU64();
  if (NumBlocks > R.remaining())
    return corrupt("artifact truncated");
  for (uint64_t I = 0; I < NumBlocks && R.ok(); ++I) {
    const uint32_t Addr = R.readU32();
    Out.Edges.setBlockExecCount(Addr, R.readU64());
  }

  const uint64_t NumMispredicts = R.readU64();
  if (NumMispredicts > R.remaining())
    return corrupt("artifact truncated");
  for (uint64_t I = 0; I < NumMispredicts && R.ok(); ++I) {
    const uint32_t Addr = R.readU32();
    profile::BranchStats S;
    S.Executed = R.readU64();
    S.Taken = R.readU64();
    S.Mispredicted = R.readU64();
    Out.Branches.setStats(Addr, S);
  }

  const uint64_t NumLoops = R.readU64();
  if (NumLoops > R.remaining())
    return corrupt("artifact truncated");
  for (uint64_t I = 0; I < NumLoops && R.ok(); ++I) {
    const uint32_t Header = R.readU32();
    profile::LoopStats &S = Out.Loops.statsFor(Header);
    S.DynamicInstrs = R.readU64();
    S.Invocations = R.readU64();
    const uint64_t NumBuckets = R.readU64();
    if (NumBuckets > R.remaining())
      return corrupt("artifact truncated");
    for (uint64_t J = 0; J < NumBuckets && R.ok(); ++J) {
      const uint64_t Value = R.readU64();
      const uint64_t Count = R.readU64();
      S.Iterations.addSample(Value, Count);
    }
  }

  Out.DynamicInstrs = R.readU64();
  Out.Completed = R.readU8() != 0;
  if (Status S = finishDecode(R); !S.ok())
    return S;
  Data = std::move(Out);
  return Status();
}

//===----------------------------------------------------------------------===//
// DivergeMap
//===----------------------------------------------------------------------===//

std::vector<uint8_t> serialize::encodeDivergeMap(const core::DivergeMap &Map) {
  ByteWriter W;
  writeHeader(W, ArtifactKind::DivergeMap);
  const std::vector<uint32_t> Addrs = Map.sortedAddrs();
  W.writeU64(Addrs.size());
  for (uint32_t Addr : Addrs) {
    const core::DivergeAnnotation &Ann = *Map.find(Addr);
    W.writeU32(Addr);
    W.writeU8(static_cast<uint8_t>(Ann.Kind));
    W.writeU8(Ann.AlwaysPredicate ? 1 : 0);
    W.writeU32(Ann.LoopHeaderAddr);
    W.writeU32(Ann.LoopSelectUops);
    W.writeU8(Ann.LoopStayTaken ? 1 : 0);
    W.writeU64(Ann.Cfms.size());
    for (const core::CfmPoint &P : Ann.Cfms) {
      W.writeU8(static_cast<uint8_t>(P.PointKind));
      W.writeU32(P.Addr);
      W.writeDouble(P.MergeProb);
    }
  }
  return W.take();
}

Status serialize::decodeDivergeMap(const std::vector<uint8_t> &Blob,
                                   core::DivergeMap &Map) {
  ByteReader R(Blob);
  if (Status S = readHeader(R, ArtifactKind::DivergeMap); !S.ok())
    return S;
  core::DivergeMap Out;
  const uint64_t NumEntries = R.readU64();
  if (NumEntries > R.remaining())
    return corrupt("artifact truncated");
  for (uint64_t I = 0; I < NumEntries && R.ok(); ++I) {
    const uint32_t Addr = R.readU32();
    core::DivergeAnnotation Ann;
    const uint8_t Kind = R.readU8();
    if (Kind > static_cast<uint8_t>(core::DivergeKind::NoCfm))
      return corrupt("invalid diverge kind in artifact");
    Ann.Kind = static_cast<core::DivergeKind>(Kind);
    Ann.AlwaysPredicate = R.readU8() != 0;
    Ann.LoopHeaderAddr = R.readU32();
    Ann.LoopSelectUops = R.readU32();
    Ann.LoopStayTaken = R.readU8() != 0;
    const uint64_t NumCfms = R.readU64();
    if (NumCfms > R.remaining())
      return corrupt("artifact truncated");
    for (uint64_t J = 0; J < NumCfms && R.ok(); ++J) {
      core::CfmPoint P;
      const uint8_t PointKind = R.readU8();
      if (PointKind > static_cast<uint8_t>(core::CfmPoint::Kind::Return))
        return corrupt("invalid cfm point kind in artifact");
      P.PointKind = static_cast<core::CfmPoint::Kind>(PointKind);
      P.Addr = R.readU32();
      P.MergeProb = R.readDouble();
      Ann.Cfms.push_back(P);
    }
    Out.add(Addr, std::move(Ann));
  }
  if (Status S = finishDecode(R); !S.ok())
    return S;
  Map = std::move(Out);
  return Status();
}

//===----------------------------------------------------------------------===//
// SimStats
//===----------------------------------------------------------------------===//

// Every field is a uint64 counter; if this assert fires, a field was added
// or removed — update the encode/decode lists below and bump
// kFormatVersion.
static_assert(sizeof(sim::SimStats) == 29 * sizeof(uint64_t),
              "SimStats layout changed; update serialization");

std::vector<uint8_t> serialize::encodeSimStats(const sim::SimStats &S) {
  ByteWriter W;
  writeHeader(W, ArtifactKind::SimStats);
  const uint64_t Fields[] = {
      S.RetiredInstrs,     S.Cycles,          S.CondBranches,
      S.Mispredictions,    S.Flushes,         S.BtbMissBubbles,
      S.RasMispredicts,    S.LowConfBranches, S.LowConfMispredicted,
      S.DpredEntries,      S.DpredEntriesLoop, S.DpredEntriesAlways,
      S.DpredMerged,       S.DpredNoMerge,    S.DpredSavedFlushes,
      S.DpredWastedEntries, S.DpredAborted,   S.DpredActiveAtEnd,
      S.UsefulDpredInstrs,
      S.UselessDpredInstrs, S.SelectUops,     S.LoopCorrect,
      S.LoopEarlyExit,     S.LoopLateExit,    S.LoopNoExit,
      S.LoopExtraIterInstrs, S.IL1Misses,     S.DL1Misses,
      S.L2Misses};
  W.writeU64(std::size(Fields));
  for (uint64_t F : Fields)
    W.writeU64(F);
  return W.take();
}

Status serialize::decodeSimStats(const std::vector<uint8_t> &Blob,
                                 sim::SimStats &Stats) {
  ByteReader R(Blob);
  if (Status S = readHeader(R, ArtifactKind::SimStats); !S.ok())
    return S;
  const uint64_t NumFields = R.readU64();
  if (NumFields != 29)
    return corrupt("sim stats field count mismatch");
  sim::SimStats S;
  uint64_t *Fields[] = {
      &S.RetiredInstrs,     &S.Cycles,          &S.CondBranches,
      &S.Mispredictions,    &S.Flushes,         &S.BtbMissBubbles,
      &S.RasMispredicts,    &S.LowConfBranches, &S.LowConfMispredicted,
      &S.DpredEntries,      &S.DpredEntriesLoop, &S.DpredEntriesAlways,
      &S.DpredMerged,       &S.DpredNoMerge,    &S.DpredSavedFlushes,
      &S.DpredWastedEntries, &S.DpredAborted,   &S.DpredActiveAtEnd,
      &S.UsefulDpredInstrs,
      &S.UselessDpredInstrs, &S.SelectUops,     &S.LoopCorrect,
      &S.LoopEarlyExit,     &S.LoopLateExit,    &S.LoopNoExit,
      &S.LoopExtraIterInstrs, &S.IL1Misses,     &S.DL1Misses,
      &S.L2Misses};
  for (uint64_t *F : Fields)
    *F = R.readU64();
  if (Status St = finishDecode(R); !St.ok())
    return St;
  Stats = S;
  return Status();
}
