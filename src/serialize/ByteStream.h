//===- serialize/ByteStream.h - Binary encode/decode ------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary writer/reader for the artifact formats.  The writer
/// appends to a byte vector; the reader is bounds-checked and latches an
/// error instead of throwing, so callers validate once at the end:
///
///   ByteReader R(Blob);
///   uint64_t N = R.readU64();
///   ...
///   if (!R.ok()) return corrupt();
///
/// Doubles travel as IEEE-754 bit patterns, which is what makes cached
/// profiles bit-identical to freshly collected ones.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERIALIZE_BYTESTREAM_H
#define DMP_SERIALIZE_BYTESTREAM_H

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace dmp::serialize {

/// Appends little-endian scalars and length-prefixed strings to a buffer.
class ByteWriter {
public:
  void writeU8(uint8_t V) { Buffer.push_back(V); }

  void writeU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buffer.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void writeU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buffer.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void writeDouble(double V) { writeU64(std::bit_cast<uint64_t>(V)); }

  void writeString(const std::string &S) {
    writeU64(S.size());
    Buffer.insert(Buffer.end(), S.begin(), S.end());
  }

  void writeBytes(const void *Data, size_t Size) {
    const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
    Buffer.insert(Buffer.end(), Bytes, Bytes + Size);
  }

  const std::vector<uint8_t> &bytes() const { return Buffer; }
  std::vector<uint8_t> take() { return std::move(Buffer); }

private:
  std::vector<uint8_t> Buffer;
};

/// Bounds-checked reader over a byte span.  After a short read every
/// subsequent read returns zero values and ok() stays false.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Blob)
      : ByteReader(Blob.data(), Blob.size()) {}

  uint8_t readU8() {
    uint8_t V = 0;
    readRaw(&V, 1);
    return V;
  }

  uint32_t readU32() {
    uint8_t LE[4] = {};
    readRaw(LE, sizeof(LE));
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(LE[I]) << (8 * I);
    return V;
  }

  uint64_t readU64() {
    uint8_t LE[8] = {};
    readRaw(LE, sizeof(LE));
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= uint64_t(LE[I]) << (8 * I);
    return V;
  }

  double readDouble() { return std::bit_cast<double>(readU64()); }

  std::string readString() {
    const uint64_t Len = readU64();
    if (Len > remaining()) {
      Error = true;
      return std::string();
    }
    std::string S(reinterpret_cast<const char *>(Data + Pos),
                  static_cast<size_t>(Len));
    Pos += static_cast<size_t>(Len);
    return S;
  }

  bool ok() const { return !Error; }
  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }

private:
  void readRaw(void *Out, size_t N) {
    if (N > remaining()) {
      Error = true;
      std::memset(Out, 0, N);
      return;
    }
    std::memcpy(Out, Data + Pos, N);
    Pos += N;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Error = false;
};

} // namespace dmp::serialize

#endif // DMP_SERIALIZE_BYTESTREAM_H
