//===- serialize/ArtifactCache.h - Content-addressed cache ------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed on-disk artifact cache.  Artifacts are stored under
/// `<dir>/<k0k1>/<hex key>.blob` where the key is the SHA-256 digest of a
/// canonical encoding of every input of the cached computation (see
/// harness/Engine.h for the key schemes).  Each blob carries a small header
/// — magic, container version, payload size, payload SHA-256 — so a
/// corrupted, truncated, or incompatible blob is rejected on load and the
/// caller recomputes.
///
/// Stores are atomic (temp file + rename), and the cache is safe for
/// concurrent use from many threads and many processes: two writers of the
/// same key write identical content, so whoever renames last wins
/// harmlessly.  An advisory `.lock` file in the cache root coordinates the
/// maintenance passes with concurrent processes: routine load/store traffic
/// holds a shared flock, while the recovery sweep and the eviction pass
/// need it exclusively and *skip* (counting lockContention()) rather than
/// block when another process is active.
///
/// Crash consistency (see DESIGN.md "Shutdown, deadlines, and crash
/// recovery"): a process killed between writing a temp file and the rename
/// leaves an orphan `*.tmp.*` file but never a torn blob.  The first cache
/// open in a later process runs a recovery sweep that reaps such orphans
/// (counted in orphansReaped()); blobs themselves are always either absent
/// or complete.  evictToBudget() bounds total blob bytes (`--cache-budget`)
/// by deleting oldest-first, never touching keys the caller protects (the
/// live campaign-journal blob).
///
/// Failure semantics (see DESIGN.md "Failure semantics"): load() reports a
/// miss as NotFound, a rejected blob as Corrupt (the blob is deleted so a
/// later store can heal it, and counted in corruptDeletes()), and an
/// injected/filesystem read failure as Transient.  store() reports fs
/// refusals as Transient and counts them in failedStores().  The cache is
/// an accelerator: every failure is survivable by recomputing, so callers
/// must treat any non-ok Status as "proceed uncached".  An optional
/// fault::Injector shims all I/O for deterministic failure-path testing,
/// and hosts the CrashMidStore crashpoint used by tests/test_crash.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERIALIZE_ARTIFACTCACHE_H
#define DMP_SERIALIZE_ARTIFACTCACHE_H

#include "fault/Fault.h"
#include "serialize/Hash.h"
#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dmp::serialize {

/// On-disk blob store keyed by content digest.
class ArtifactCache {
public:
  /// Opens (and lazily creates) the cache rooted at \p Dir.  The recovery
  /// sweep runs on the first load/store, not here, so constructing a cache
  /// for a directory that is never touched costs nothing.
  explicit ArtifactCache(std::string Dir);
  ~ArtifactCache();

  /// Loads the payload stored under \p Key.  Non-ok codes: NotFound on
  /// miss, Corrupt when the blob failed validation (it is deleted so the
  /// next store can heal it), Transient on injected/filesystem faults.
  StatusOr<std::vector<uint8_t>> load(const Digest &Key);

  /// Stores \p Payload under \p Key.  Returns Transient when the
  /// filesystem (or the fault shim) refuses; the experiment still
  /// proceeds, just uncached.
  Status store(const Digest &Key, const std::vector<uint8_t> &Payload);

  /// Runs the orphan-reaping recovery sweep now (it otherwise runs lazily
  /// before the first I/O): every `*.tmp.*` file under the cache root —
  /// debris of a process that died between temp write and rename — is
  /// deleted and counted in orphansReaped().  Requires the exclusive
  /// advisory lock; if another process holds the cache, the sweep is
  /// skipped (lockContention() bumped) and retried on the next call.
  /// Idempotent and safe to call at any time.
  void sweepNow();

  /// Deletes blobs oldest-first (by mtime, ties broken by path) until the
  /// total blob bytes fit \p BudgetBytes.  Keys in \p Protect — the live
  /// campaign-journal blobs — are never evicted, even if the budget cannot
  /// be met without them.  Needs the exclusive advisory lock; skips
  /// (counting lockContention()) when contended.  Returns the number of
  /// blobs evicted (also accumulated in evictions()).
  uint64_t evictToBudget(uint64_t BudgetBytes,
                         const std::vector<Digest> &Protect = {});

  const std::string &dir() const { return Root; }

  /// Installs a deterministic fault shim over load/store I/O; null
  /// removes it.  The injector must outlive the cache.
  void setFaultInjector(const fault::Injector *Injector) {
    Faults = Injector;
  }

  // Counters for reports and tests.
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t stores() const { return Stores.load(std::memory_order_relaxed); }
  /// Corrupt blobs rejected (and deleted) by load().
  uint64_t corruptDeletes() const {
    return CorruptDeletes.load(std::memory_order_relaxed);
  }
  /// store() calls the filesystem (or fault shim) refused.
  uint64_t failedStores() const {
    return FailedStores.load(std::memory_order_relaxed);
  }
  /// Orphaned temp files reaped by the recovery sweep.
  uint64_t orphansReaped() const {
    return OrphansReaped.load(std::memory_order_relaxed);
  }
  /// Blobs deleted by evictToBudget().
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  /// Maintenance passes skipped because another process held the cache.
  uint64_t lockContention() const {
    return LockContention.load(std::memory_order_relaxed);
  }

private:
  std::string blobPath(const Digest &Key) const;
  std::string lockPath() const;
  /// Lazily opens the `.lock` fd and takes the shared (reader/writer)
  /// flock; refcounted in-process.  Returns false when the lock file
  /// cannot even be created (cache proceeds unlocked — advisory only).
  bool acquireShared();
  void releaseShared();
  /// Ensures the one-time recovery sweep ran (or was skipped on
  /// contention; a skip leaves it pending for the next I/O).
  void ensureSwept();
  void sweepLocked();

  std::string Root;
  const fault::Injector *Faults = nullptr;

  // Advisory-lock state.  LockFd is the `.lock` file descriptor; the
  // shared flock is held while SharedHolders > 0 so the exclusive
  // maintenance passes (here or in another process) wait for quiescence.
  std::mutex LockMutex;
  int LockFd = -1;
  unsigned SharedHolders = 0;
  bool SweepDone = false;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Stores{0};
  std::atomic<uint64_t> CorruptDeletes{0};
  std::atomic<uint64_t> FailedStores{0};
  std::atomic<uint64_t> OrphansReaped{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> LockContention{0};
  std::atomic<uint64_t> TempCounter{0};
};

} // namespace dmp::serialize

#endif // DMP_SERIALIZE_ARTIFACTCACHE_H
