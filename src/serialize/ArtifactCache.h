//===- serialize/ArtifactCache.h - Content-addressed cache ------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed on-disk artifact cache.  Artifacts are stored under
/// `<dir>/<k0k1>/<hex key>.blob` where the key is the SHA-256 digest of a
/// canonical encoding of every input of the cached computation (see
/// harness/Engine.h for the key schemes).  Each blob carries a small header
/// — magic, container version, payload size, payload SHA-256 — so a
/// corrupted, truncated, or incompatible blob is rejected on load and the
/// caller recomputes.
///
/// Stores are atomic (temp file + rename), and the cache is safe for
/// concurrent use from many threads and many processes: two writers of the
/// same key write identical content, so whoever renames last wins
/// harmlessly.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERIALIZE_ARTIFACTCACHE_H
#define DMP_SERIALIZE_ARTIFACTCACHE_H

#include "serialize/Hash.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dmp::serialize {

/// On-disk blob store keyed by content digest.
class ArtifactCache {
public:
  /// Opens (and lazily creates) the cache rooted at \p Dir.
  explicit ArtifactCache(std::string Dir);

  /// Loads the payload stored under \p Key.  Returns nullopt on miss,
  /// corruption, or container-version mismatch (corrupt blobs are deleted
  /// so the next store can heal them).
  std::optional<std::vector<uint8_t>> load(const Digest &Key);

  /// Stores \p Payload under \p Key.  Returns false when the filesystem
  /// refuses; the experiment still proceeds, just uncached.
  bool store(const Digest &Key, const std::vector<uint8_t> &Payload);

  const std::string &dir() const { return Root; }

  // Counters for reports and tests.
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t stores() const { return Stores.load(std::memory_order_relaxed); }

private:
  std::string blobPath(const Digest &Key) const;

  std::string Root;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Stores{0};
  std::atomic<uint64_t> TempCounter{0};
};

} // namespace dmp::serialize

#endif // DMP_SERIALIZE_ARTIFACTCACHE_H
