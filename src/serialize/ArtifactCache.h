//===- serialize/ArtifactCache.h - Content-addressed cache ------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed on-disk artifact cache.  Artifacts are stored under
/// `<dir>/<k0k1>/<hex key>.blob` where the key is the SHA-256 digest of a
/// canonical encoding of every input of the cached computation (see
/// harness/Engine.h for the key schemes).  Each blob carries a small header
/// — magic, container version, payload size, payload SHA-256 — so a
/// corrupted, truncated, or incompatible blob is rejected on load and the
/// caller recomputes.
///
/// Stores are atomic (temp file + rename), and the cache is safe for
/// concurrent use from many threads and many processes: two writers of the
/// same key write identical content, so whoever renames last wins
/// harmlessly.
///
/// Failure semantics (see DESIGN.md "Failure semantics"): load() reports a
/// miss as NotFound, a rejected blob as Corrupt (the blob is deleted so a
/// later store can heal it, and counted in corruptDeletes()), and an
/// injected/filesystem read failure as Transient.  store() reports fs
/// refusals as Transient and counts them in failedStores().  The cache is
/// an accelerator: every failure is survivable by recomputing, so callers
/// must treat any non-ok Status as "proceed uncached".  An optional
/// fault::Injector shims all I/O for deterministic failure-path testing.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERIALIZE_ARTIFACTCACHE_H
#define DMP_SERIALIZE_ARTIFACTCACHE_H

#include "fault/Fault.h"
#include "serialize/Hash.h"
#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dmp::serialize {

/// On-disk blob store keyed by content digest.
class ArtifactCache {
public:
  /// Opens (and lazily creates) the cache rooted at \p Dir.
  explicit ArtifactCache(std::string Dir);

  /// Loads the payload stored under \p Key.  Non-ok codes: NotFound on
  /// miss, Corrupt when the blob failed validation (it is deleted so the
  /// next store can heal it), Transient on injected/filesystem faults.
  StatusOr<std::vector<uint8_t>> load(const Digest &Key);

  /// Stores \p Payload under \p Key.  Returns Transient when the
  /// filesystem (or the fault shim) refuses; the experiment still
  /// proceeds, just uncached.
  Status store(const Digest &Key, const std::vector<uint8_t> &Payload);

  const std::string &dir() const { return Root; }

  /// Installs a deterministic fault shim over load/store I/O; null
  /// removes it.  The injector must outlive the cache.
  void setFaultInjector(const fault::Injector *Injector) {
    Faults = Injector;
  }

  // Counters for reports and tests.
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t stores() const { return Stores.load(std::memory_order_relaxed); }
  /// Corrupt blobs rejected (and deleted) by load().
  uint64_t corruptDeletes() const {
    return CorruptDeletes.load(std::memory_order_relaxed);
  }
  /// store() calls the filesystem (or fault shim) refused.
  uint64_t failedStores() const {
    return FailedStores.load(std::memory_order_relaxed);
  }

private:
  std::string blobPath(const Digest &Key) const;

  std::string Root;
  const fault::Injector *Faults = nullptr;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Stores{0};
  std::atomic<uint64_t> CorruptDeletes{0};
  std::atomic<uint64_t> FailedStores{0};
  std::atomic<uint64_t> TempCounter{0};
};

} // namespace dmp::serialize

#endif // DMP_SERIALIZE_ARTIFACTCACHE_H
