//===- serialize/Hash.h - SHA-256 content hashing ---------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SHA-256 for content-addressed artifact keys.  A cache key is the digest
/// of a canonical byte encoding of everything the cached computation
/// depends on (workload spec, input-set kind, profiler/simulator config,
/// format version), so any change to an input moves the artifact to a new
/// address instead of silently aliasing a stale one.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_SERIALIZE_HASH_H
#define DMP_SERIALIZE_HASH_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace dmp::serialize {

/// A 256-bit digest, printable as 64 lowercase hex characters.
struct Digest {
  std::array<uint8_t, 32> Bytes{};

  std::string hex() const;
  bool operator==(const Digest &O) const { return Bytes == O.Bytes; }
  bool operator!=(const Digest &O) const { return !(*this == O); }
};

/// Incremental SHA-256 (FIPS 180-4).
class Hasher {
public:
  Hasher();

  Hasher &update(const void *Data, size_t Size);
  Hasher &update(const std::string &S) { return update(S.data(), S.size()); }

  /// Appends a 64-bit value in little-endian byte order, so digests are
  /// identical across hosts.
  Hasher &updateU64(uint64_t V);

  /// Appends the IEEE-754 bit pattern of \p V (little-endian).
  Hasher &updateDouble(double V);

  /// Finalizes and returns the digest.  The hasher must not be updated
  /// afterwards.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(const void *Data, size_t Size) {
    Hasher H;
    H.update(Data, Size);
    return H.finish();
  }

private:
  void processBlock(const uint8_t *Block);

  uint32_t State[8];
  uint8_t Buffer[64];
  size_t BufferLen = 0;
  uint64_t TotalBytes = 0;
};

} // namespace dmp::serialize

#endif // DMP_SERIALIZE_HASH_H
