//===- ir/Function.cpp - Function --------------------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

using namespace dmp::ir;

BasicBlock *Function::createBlock(const std::string &BlockName) {
  auto Block = std::make_unique<BasicBlock>(
      this, BlockName, static_cast<unsigned>(Blocks.size()));
  BasicBlock *Raw = Block.get();
  if (!Blocks.empty())
    Blocks.back()->setFallthrough(Raw);
  Blocks.push_back(std::move(Block));
  return Raw;
}

unsigned Function::instrCount() const {
  unsigned Count = 0;
  for (const auto &Block : Blocks)
    Count += Block->instrCount();
  return Count;
}
