//===- ir/Instruction.h - A single ISA instruction ---------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Instruction value type.  Instructions are stored by value inside
/// their BasicBlock; after Program::finalize() their storage and addresses
/// are frozen and raw pointers into blocks stay valid.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_IR_INSTRUCTION_H
#define DMP_IR_INSTRUCTION_H

#include "ir/Opcode.h"

#include <cstdint>
#include <string>

namespace dmp::ir {

class BasicBlock;
class Function;

/// Sentinel for "no address assigned yet".
inline constexpr uint32_t InvalidAddr = ~0u;

/// One machine instruction.
///
/// Addresses are assigned densely by Program::finalize(): one instruction
/// occupies one address unit, and the fall-through of any instruction is
/// Addr + 1.
struct Instruction {
  Opcode Op = Opcode::Nop;
  BrCond Cond = BrCond::Eq; // Meaningful only for CondBr.
  Reg Dst = 0;
  Reg Src1 = 0;
  Reg Src2 = 0;
  int64_t Imm = 0;
  BasicBlock *Target = nullptr; // Taken target of CondBr / target of Jmp.
  Function *Callee = nullptr;   // Callee of Call.
  uint32_t Addr = InvalidAddr;  // Assigned by Program::finalize().

  bool isCondBr() const { return Op == Opcode::CondBr; }
  bool isTerminator() const { return ir::isTerminator(Op); }
  bool writesReg() const { return ir::writesRegister(Op); }

  /// Evaluates this CondBr's condition on the given operand values.
  bool evalCond(int64_t A, int64_t B) const;

  /// Renders the instruction as assembly-like text.
  std::string toString() const;
};

} // namespace dmp::ir

#endif // DMP_IR_INSTRUCTION_H
