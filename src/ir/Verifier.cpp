//===- ir/Verifier.cpp - IR structural validation (legacy shim) ---------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "analyze/Analyze.h"
#include "ir/Program.h"

#include <cstdio>
#include <cstdlib>

using namespace dmp;
using namespace dmp::ir;

bool ir::verifyProgram(const Program &P, std::vector<std::string> &Errors) {
  analyze::DiagnosticSink Sink;
  analyze::lintProgram(P, &Sink);
  for (const analyze::Diagnostic &D : Sink.diagnostics())
    if (D.Sev == analyze::Severity::Error)
      Errors.push_back(D.renderText());
  return Sink.errorCount() == 0;
}

void ir::verifyProgramOrDie(const Program &P) {
  std::vector<std::string> Errors;
  if (verifyProgram(P, Errors))
    return;
  std::fprintf(stderr, "program %s failed verification:\n",
               P.getName().c_str());
  for (const auto &Error : Errors)
    std::fprintf(stderr, "  %s\n", Error.c_str());
  std::abort();
}
