//===- ir/Verifier.cpp - IR structural validation ----------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Program.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace dmp;
using namespace dmp::ir;

static void checkFunction(const Function &F, std::vector<std::string> &Errors) {
  if (F.blockCount() == 0) {
    Errors.push_back(formatString("function %s has no blocks",
                                  F.getName().c_str()));
    return;
  }

  for (const auto &Block : F.blocks()) {
    if (Block->empty()) {
      Errors.push_back(formatString("block %s in %s is empty",
                                    Block->getName().c_str(),
                                    F.getName().c_str()));
      continue;
    }
    const auto &Insts = Block->instructions();
    for (size_t I = 0; I < Insts.size(); ++I) {
      const Instruction &Inst = Insts[I];
      if (Inst.isTerminator() && I + 1 != Insts.size())
        Errors.push_back(formatString("terminator mid-block in %s/%s",
                                      F.getName().c_str(),
                                      Block->getName().c_str()));
      if (Inst.writesReg() && Inst.Dst == RegZero)
        Errors.push_back(formatString("write to r0 in %s/%s",
                                      F.getName().c_str(),
                                      Block->getName().c_str()));
      if ((Inst.Op == Opcode::CondBr || Inst.Op == Opcode::Jmp)) {
        if (!Inst.Target)
          Errors.push_back(formatString("branch without target in %s/%s",
                                        F.getName().c_str(),
                                        Block->getName().c_str()));
        else if (Inst.Target->getParent() != &F)
          Errors.push_back(formatString("cross-function branch in %s/%s",
                                        F.getName().c_str(),
                                        Block->getName().c_str()));
      }
      if (Inst.Op == Opcode::Call && !Inst.Callee)
        Errors.push_back(formatString("call without callee in %s/%s",
                                      F.getName().c_str(),
                                      Block->getName().c_str()));
    }
  }

  // No falling off the end of the function.
  const BasicBlock &Last = *F.blocks().back();
  const Instruction *Term = Last.getTerminator();
  if (!Term || (Term->Op != Opcode::Ret && Term->Op != Opcode::Halt &&
                Term->Op != Opcode::Jmp))
    Errors.push_back(formatString(
        "function %s may fall off its last block", F.getName().c_str()));
}

bool ir::verifyProgram(const Program &P, std::vector<std::string> &Errors) {
  const size_t Before = Errors.size();

  if (!P.isFinalized()) {
    Errors.push_back("program is not finalized");
    return false;
  }
  if (!P.getMain()) {
    Errors.push_back("program has no main function");
    return false;
  }

  for (const auto &F : P.functions())
    checkFunction(*F, Errors);

  // Address density and lookup-table consistency.
  for (uint32_t Addr = 0; Addr < P.instrCount(); ++Addr) {
    const Instruction &Inst = P.instrAt(Addr);
    if (Inst.Addr != Addr)
      Errors.push_back(formatString("address table skew at %u", Addr));
    const BasicBlock *Block = P.blockAt(Addr);
    if (Addr < Block->getStartAddr() ||
        Addr >= Block->getStartAddr() + Block->instrCount())
      Errors.push_back(formatString("block table skew at %u", Addr));
  }

  // A runnable program must be able to stop.
  bool HasHalt = false;
  for (const auto &Block : P.getMain()->blocks())
    if (const Instruction *Term = Block->getTerminator())
      if (Term->Op == Opcode::Halt)
        HasHalt = true;
  if (!HasHalt)
    Errors.push_back("main has no halt instruction");

  return Errors.size() == Before;
}

void ir::verifyProgramOrDie(const Program &P) {
  std::vector<std::string> Errors;
  if (verifyProgram(P, Errors))
    return;
  std::fprintf(stderr, "program %s failed verification:\n",
               P.getName().c_str());
  for (const auto &Error : Errors)
    std::fprintf(stderr, "  %s\n", Error.c_str());
  std::abort();
}
