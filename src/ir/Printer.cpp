//===- ir/Printer.cpp - Textual program dumps ---------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Program.h"
#include "support/StringUtils.h"

using namespace dmp;
using namespace dmp::ir;

std::string ir::printBlock(const BasicBlock &Block) {
  std::string Out = formatString("%s:\n", Block.getName().c_str());
  for (const Instruction &Inst : Block.instructions())
    Out += "  " + Inst.toString() + "\n";
  return Out;
}

std::string ir::printFunction(const Function &F) {
  std::string Out = formatString("func %s {\n", F.getName().c_str());
  for (const auto &Block : F.blocks())
    Out += printBlock(*Block);
  Out += "}\n";
  return Out;
}

std::string ir::printProgram(const Program &P) {
  std::string Out = formatString("program %s  (%u instrs)\n",
                                 P.getName().c_str(), P.instrCount());
  for (const auto &F : P.functions())
    Out += printFunction(*F);
  return Out;
}
