//===- ir/Program.h - Whole program -------------------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program: the unit of compilation and simulation.  Owns functions, assigns
/// the flat address space, and provides address-indexed instruction lookup
/// used by the profiler and the cycle simulator.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_IR_PROGRAM_H
#define DMP_IR_PROGRAM_H

#include "ir/Function.h"

#include <cassert>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dmp::ir {

/// A whole program in a single flat address space.
///
/// Typical lifecycle: build functions/blocks/instructions (IRBuilder), call
/// finalize() once, then treat the program as immutable.  finalize() assigns
/// one address unit per instruction, in function order then block layout
/// order, so "fall through" is always Addr + 1.
class Program {
public:
  explicit Program(std::string Name) : Name(std::move(Name)) {}

  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  const std::string &getName() const { return Name; }

  /// Creates a new empty function.  The first function created is the entry
  /// point ("main").
  Function *createFunction(const std::string &FnName);

  Function *getMain() const {
    return Functions.empty() ? nullptr : Functions.front().get();
  }

  /// Finds a function by name; nullptr when absent.
  Function *findFunction(const std::string &FnName) const;

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  /// Assigns addresses and builds the flat lookup tables.  Must be called
  /// exactly once, after all instructions are in place.
  void finalize();

  bool isFinalized() const { return Finalized; }

  /// Total number of static instructions (== size of the address space).
  uint32_t instrCount() const {
    return static_cast<uint32_t>(FlatInstrs.size());
  }

  /// The instruction at \p Addr.  Program must be finalized.
  const Instruction &instrAt(uint32_t Addr) const {
    assert(Finalized && "program not finalized");
    assert(Addr < FlatInstrs.size() && "address out of range");
    return *FlatInstrs[Addr];
  }

  /// The block containing address \p Addr.
  const BasicBlock *blockAt(uint32_t Addr) const {
    assert(Finalized && "program not finalized");
    assert(Addr < BlockOfAddr.size() && "address out of range");
    return BlockOfAddr[Addr];
  }

  /// The function containing address \p Addr.
  const Function *functionAt(uint32_t Addr) const {
    return blockAt(Addr)->getParent();
  }

  /// All conditional-branch addresses, in address order.  The candidate
  /// population that every diverge-branch selector iterates over.
  const std::vector<uint32_t> &condBranchAddrs() const {
    assert(Finalized && "program not finalized");
    return CondBranches;
  }

  /// Lazily-built, layer-opaque decode cache: the first caller's \p Build
  /// runs exactly once per program (thread-safe) and the result is reused
  /// by every later emulator over this program.  The slot is owned by the
  /// program so the predecoded array can never outlive or alias-collide
  /// with it.  Single consumer by contract (profile::DecodedProgram); the
  /// IR layer never interprets the pointee.
  const std::shared_ptr<const void> &
  decodeCache(std::shared_ptr<const void> (*Build)(const Program &)) const {
    assert(Finalized && "decoding an unfinalized program");
    std::call_once(DecodedOnce, [&] { Decoded = Build(*this); });
    return Decoded;
  }

private:
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<const Instruction *> FlatInstrs;
  std::vector<const BasicBlock *> BlockOfAddr;
  std::vector<uint32_t> CondBranches;
  bool Finalized = false;
  mutable std::once_flag DecodedOnce;
  mutable std::shared_ptr<const void> Decoded;
};

} // namespace dmp::ir

#endif // DMP_IR_PROGRAM_H
