//===- ir/BasicBlock.h - Basic block ------------------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock: an ordered list of instructions with at most one terminator
/// at the end.  Blocks without an explicit terminator fall through to the
/// next block in function layout order.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_IR_BASICBLOCK_H
#define DMP_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace dmp::ir {

class Function;

/// A straight-line sequence of instructions.
class BasicBlock {
public:
  BasicBlock(Function *Parent, std::string Name, unsigned Id)
      : Parent(Parent), Name(std::move(Name)), Id(Id) {}

  Function *getParent() const { return Parent; }
  const std::string &getName() const { return Name; }
  /// Dense per-function block index, assigned at creation in layout order.
  unsigned getId() const { return Id; }

  /// Appends \p Inst.  Must not be called after Program::finalize().
  Instruction &append(const Instruction &Inst);

  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }

  const std::vector<Instruction> &instructions() const { return Insts; }
  std::vector<Instruction> &instructions() { return Insts; }

  /// Terminator, or nullptr when the block falls through.
  const Instruction *getTerminator() const;

  /// The block this one falls through to (next block in layout), or nullptr
  /// for the last block.  Set by the parent Function.
  BasicBlock *getFallthrough() const { return Fallthrough; }
  void setFallthrough(BasicBlock *Next) { Fallthrough = Next; }

  /// Address of the first instruction; InvalidAddr before finalize().
  uint32_t getStartAddr() const {
    return Insts.empty() ? InvalidAddr : Insts.front().Addr;
  }

  /// Intra-procedural successor blocks, in (taken, fallthrough) order for
  /// conditional branches.  Ret and Halt have no successors.
  std::vector<BasicBlock *> successors() const;

  /// Number of static instructions in this block.  The paper's block size
  /// N(X) used by the cost model (Section 4.1.1).
  unsigned instrCount() const { return static_cast<unsigned>(Insts.size()); }

private:
  Function *Parent;
  std::string Name;
  unsigned Id;
  std::vector<Instruction> Insts;
  BasicBlock *Fallthrough = nullptr;
};

} // namespace dmp::ir

#endif // DMP_IR_BASICBLOCK_H
