//===- ir/Instruction.cpp - A single ISA instruction -----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

using namespace dmp;
using namespace dmp::ir;

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Slt:
    return "slt";
  case Opcode::AddI:
    return "addi";
  case Opcode::MulI:
    return "muli";
  case Opcode::AndI:
    return "andi";
  case Opcode::SltI:
    return "slti";
  case Opcode::LoadImm:
    return "li";
  case Opcode::Load:
    return "ld";
  case Opcode::Store:
    return "st";
  case Opcode::CondBr:
    return "br";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::Nop:
    return "nop";
  case Opcode::Halt:
    return "halt";
  }
  DMP_UNREACHABLE("unknown opcode");
}

const char *ir::brCondName(BrCond Cond) {
  switch (Cond) {
  case BrCond::Eq:
    return "eq";
  case BrCond::Ne:
    return "ne";
  case BrCond::Lt:
    return "lt";
  case BrCond::Ge:
    return "ge";
  case BrCond::Ltu:
    return "ltu";
  case BrCond::Geu:
    return "geu";
  }
  DMP_UNREACHABLE("unknown branch condition");
}

bool Instruction::evalCond(int64_t A, int64_t B) const {
  switch (Cond) {
  case BrCond::Eq:
    return A == B;
  case BrCond::Ne:
    return A != B;
  case BrCond::Lt:
    return A < B;
  case BrCond::Ge:
    return A >= B;
  case BrCond::Ltu:
    return static_cast<uint64_t>(A) < static_cast<uint64_t>(B);
  case BrCond::Geu:
    return static_cast<uint64_t>(A) >= static_cast<uint64_t>(B);
  }
  DMP_UNREACHABLE("unknown branch condition");
}

std::string Instruction::toString() const {
  std::string Prefix =
      Addr == InvalidAddr ? std::string("      ") : formatString("%5u ", Addr);
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Slt:
    return Prefix + formatString("%-5s r%u, r%u, r%u", opcodeName(Op), Dst,
                                 Src1, Src2);
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::SltI:
    return Prefix + formatString("%-5s r%u, r%u, %lld", opcodeName(Op), Dst,
                                 Src1, static_cast<long long>(Imm));
  case Opcode::LoadImm:
    return Prefix + formatString("%-5s r%u, %lld", opcodeName(Op), Dst,
                                 static_cast<long long>(Imm));
  case Opcode::Load:
    return Prefix + formatString("%-5s r%u, %lld(r%u)", opcodeName(Op), Dst,
                                 static_cast<long long>(Imm), Src1);
  case Opcode::Store:
    return Prefix + formatString("%-5s r%u, %lld(r%u)", opcodeName(Op), Src2,
                                 static_cast<long long>(Imm), Src1);
  case Opcode::CondBr:
    return Prefix + formatString("br.%-3s r%u, r%u, %s", brCondName(Cond),
                                 Src1, Src2,
                                 Target ? Target->getName().c_str() : "?");
  case Opcode::Jmp:
    return Prefix + formatString("%-5s %s", opcodeName(Op),
                                 Target ? Target->getName().c_str() : "?");
  case Opcode::Call:
    return Prefix + formatString("%-5s %s", opcodeName(Op),
                                 Callee ? Callee->getName().c_str() : "?");
  case Opcode::Ret:
  case Opcode::Nop:
  case Opcode::Halt:
    return Prefix + opcodeName(Op);
  }
  DMP_UNREACHABLE("unknown opcode");
}
