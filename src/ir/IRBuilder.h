//===- ir/IRBuilder.h - Convenience instruction builder -----------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder: append instructions to a basic block with one call per
/// instruction.  Used by the workload generators, the examples, and the
/// tests.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_IR_IRBUILDER_H
#define DMP_IR_IRBUILDER_H

#include "ir/Program.h"

namespace dmp::ir {

/// Emits instructions at an insertion point (end of a basic block).
class IRBuilder {
public:
  explicit IRBuilder(Program &P) : Prog(P) {}

  Program &getProgram() { return Prog; }

  void setInsertPoint(BasicBlock *Block) { Insert = Block; }
  BasicBlock *getInsertBlock() const { return Insert; }

  // ALU, register-register.
  Instruction &add(Reg Dst, Reg A, Reg B) { return rrr(Opcode::Add, Dst, A, B); }
  Instruction &sub(Reg Dst, Reg A, Reg B) { return rrr(Opcode::Sub, Dst, A, B); }
  Instruction &mul(Reg Dst, Reg A, Reg B) { return rrr(Opcode::Mul, Dst, A, B); }
  Instruction &div(Reg Dst, Reg A, Reg B) { return rrr(Opcode::Div, Dst, A, B); }
  Instruction &and_(Reg Dst, Reg A, Reg B) { return rrr(Opcode::And, Dst, A, B); }
  Instruction &or_(Reg Dst, Reg A, Reg B) { return rrr(Opcode::Or, Dst, A, B); }
  Instruction &xor_(Reg Dst, Reg A, Reg B) { return rrr(Opcode::Xor, Dst, A, B); }
  Instruction &shl(Reg Dst, Reg A, Reg B) { return rrr(Opcode::Shl, Dst, A, B); }
  Instruction &shr(Reg Dst, Reg A, Reg B) { return rrr(Opcode::Shr, Dst, A, B); }
  Instruction &slt(Reg Dst, Reg A, Reg B) { return rrr(Opcode::Slt, Dst, A, B); }

  // ALU, register-immediate.
  Instruction &addI(Reg Dst, Reg A, int64_t Imm) {
    return rri(Opcode::AddI, Dst, A, Imm);
  }
  Instruction &mulI(Reg Dst, Reg A, int64_t Imm) {
    return rri(Opcode::MulI, Dst, A, Imm);
  }
  Instruction &andI(Reg Dst, Reg A, int64_t Imm) {
    return rri(Opcode::AndI, Dst, A, Imm);
  }
  Instruction &sltI(Reg Dst, Reg A, int64_t Imm) {
    return rri(Opcode::SltI, Dst, A, Imm);
  }
  Instruction &loadImm(Reg Dst, int64_t Imm);

  // Memory.
  Instruction &load(Reg Dst, Reg Base, int64_t Offset);
  Instruction &store(Reg Value, Reg Base, int64_t Offset);

  // Control flow.
  Instruction &condBr(BrCond Cond, Reg A, Reg B, BasicBlock *Taken);
  Instruction &jmp(BasicBlock *Target);
  Instruction &call(Function *Callee);
  Instruction &ret();
  Instruction &nop();
  Instruction &halt();

  /// Appends \p Count Nop-free ALU filler instructions cycling over
  /// registers [\p FirstReg, \p FirstReg + 3].  Workload generators use this
  /// to give blocks their paper-calibrated sizes with real dataflow.
  void emitFiller(unsigned Count, Reg FirstReg);

private:
  Instruction &rrr(Opcode Op, Reg Dst, Reg A, Reg B);
  Instruction &rri(Opcode Op, Reg Dst, Reg A, int64_t Imm);
  Instruction &emit(const Instruction &Inst);

  Program &Prog;
  BasicBlock *Insert = nullptr;
};

} // namespace dmp::ir

#endif // DMP_IR_IRBUILDER_H
