//===- ir/Function.h - Function ----------------------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function: an ordered list of basic blocks.  Block order is layout order;
/// the first block is the entry.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_IR_FUNCTION_H
#define DMP_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace dmp::ir {

class Program;

/// A function: entry block plus layout-ordered body blocks.
class Function {
public:
  Function(Program *Parent, std::string Name, unsigned Id)
      : Parent(Parent), Name(std::move(Name)), Id(Id) {}

  Program *getParent() const { return Parent; }
  const std::string &getName() const { return Name; }
  /// Dense per-program function index.
  unsigned getId() const { return Id; }

  /// Creates and appends a new block.  Fallthrough links are maintained.
  BasicBlock *createBlock(const std::string &BlockName);

  BasicBlock *getEntry() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  size_t blockCount() const { return Blocks.size(); }

  /// Blocks in layout order.
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// Address of the entry instruction; InvalidAddr before finalize().
  uint32_t getEntryAddr() const {
    return getEntry() ? getEntry()->getStartAddr() : InvalidAddr;
  }

  /// Total static instructions.
  unsigned instrCount() const;

private:
  Program *Parent;
  std::string Name;
  unsigned Id;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace dmp::ir

#endif // DMP_IR_FUNCTION_H
