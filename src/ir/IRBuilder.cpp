//===- ir/IRBuilder.cpp - Convenience instruction builder --------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include <cassert>

using namespace dmp::ir;

Instruction &IRBuilder::emit(const Instruction &Inst) {
  assert(Insert && "no insertion point set");
  assert(!Prog.isFinalized() && "cannot emit into a finalized program");
  assert(!Insert->getTerminator() && "emitting past a terminator");
  return Insert->append(Inst);
}

Instruction &IRBuilder::rrr(Opcode Op, Reg Dst, Reg A, Reg B) {
  assert(Dst != RegZero && "r0 is hardwired to zero");
  Instruction Inst;
  Inst.Op = Op;
  Inst.Dst = Dst;
  Inst.Src1 = A;
  Inst.Src2 = B;
  return emit(Inst);
}

Instruction &IRBuilder::rri(Opcode Op, Reg Dst, Reg A, int64_t Imm) {
  assert(Dst != RegZero && "r0 is hardwired to zero");
  Instruction Inst;
  Inst.Op = Op;
  Inst.Dst = Dst;
  Inst.Src1 = A;
  Inst.Imm = Imm;
  return emit(Inst);
}

Instruction &IRBuilder::loadImm(Reg Dst, int64_t Imm) {
  assert(Dst != RegZero && "r0 is hardwired to zero");
  Instruction Inst;
  Inst.Op = Opcode::LoadImm;
  Inst.Dst = Dst;
  Inst.Imm = Imm;
  return emit(Inst);
}

Instruction &IRBuilder::load(Reg Dst, Reg Base, int64_t Offset) {
  assert(Dst != RegZero && "r0 is hardwired to zero");
  Instruction Inst;
  Inst.Op = Opcode::Load;
  Inst.Dst = Dst;
  Inst.Src1 = Base;
  Inst.Imm = Offset;
  return emit(Inst);
}

Instruction &IRBuilder::store(Reg Value, Reg Base, int64_t Offset) {
  Instruction Inst;
  Inst.Op = Opcode::Store;
  Inst.Src1 = Base;
  Inst.Src2 = Value;
  Inst.Imm = Offset;
  return emit(Inst);
}

Instruction &IRBuilder::condBr(BrCond Cond, Reg A, Reg B, BasicBlock *Taken) {
  assert(Taken && "conditional branch needs a taken target");
  assert(Taken->getParent() == Insert->getParent() &&
         "branch target must be in the same function");
  Instruction Inst;
  Inst.Op = Opcode::CondBr;
  Inst.Cond = Cond;
  Inst.Src1 = A;
  Inst.Src2 = B;
  Inst.Target = Taken;
  return emit(Inst);
}

Instruction &IRBuilder::jmp(BasicBlock *Target) {
  assert(Target && "jump needs a target");
  assert(Target->getParent() == Insert->getParent() &&
         "jump target must be in the same function");
  Instruction Inst;
  Inst.Op = Opcode::Jmp;
  Inst.Target = Target;
  return emit(Inst);
}

Instruction &IRBuilder::call(Function *Callee) {
  assert(Callee && "call needs a callee");
  Instruction Inst;
  Inst.Op = Opcode::Call;
  Inst.Callee = Callee;
  return emit(Inst);
}

Instruction &IRBuilder::ret() {
  Instruction Inst;
  Inst.Op = Opcode::Ret;
  return emit(Inst);
}

Instruction &IRBuilder::nop() {
  Instruction Inst;
  Inst.Op = Opcode::Nop;
  return emit(Inst);
}

Instruction &IRBuilder::halt() {
  Instruction Inst;
  Inst.Op = Opcode::Halt;
  return emit(Inst);
}

void IRBuilder::emitFiller(unsigned Count, Reg FirstReg) {
  assert(FirstReg != RegZero && FirstReg + 3 < NumRegs &&
         "filler register window out of range");
  for (unsigned I = 0; I < Count; ++I) {
    const Reg Dst = static_cast<Reg>(FirstReg + (I % 4));
    const Reg Src = static_cast<Reg>(FirstReg + ((I + 1) % 4));
    if (I % 3 == 0)
      addI(Dst, Src, static_cast<int64_t>(I) + 1);
    else if (I % 3 == 1)
      xor_(Dst, Dst, Src);
    else
      add(Dst, Dst, Src);
  }
}
