//===- ir/Program.cpp - Whole program ----------------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

using namespace dmp::ir;

Function *Program::createFunction(const std::string &FnName) {
  assert(!Finalized && "cannot add functions after finalize()");
  Functions.push_back(std::make_unique<Function>(
      this, FnName, static_cast<unsigned>(Functions.size())));
  return Functions.back().get();
}

Function *Program::findFunction(const std::string &FnName) const {
  for (const auto &F : Functions)
    if (F->getName() == FnName)
      return F.get();
  return nullptr;
}

void Program::finalize() {
  assert(!Finalized && "finalize() called twice");
  uint32_t Addr = 0;
  for (const auto &F : Functions) {
    for (const auto &Block : F->blocks()) {
      for (Instruction &Inst : Block->instructions()) {
        Inst.Addr = Addr++;
        FlatInstrs.push_back(&Inst);
        BlockOfAddr.push_back(Block.get());
        if (Inst.Op == Opcode::CondBr)
          CondBranches.push_back(Inst.Addr);
      }
    }
  }
  Finalized = true;
}
