//===- ir/BasicBlock.cpp - Basic block --------------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include "ir/Function.h"

using namespace dmp::ir;

Instruction &BasicBlock::append(const Instruction &Inst) {
  Insts.push_back(Inst);
  return Insts.back();
}

const Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty())
    return nullptr;
  const Instruction &Last = Insts.back();
  return Last.isTerminator() ? &Last : nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Result;
  const Instruction *Term = getTerminator();
  if (!Term) {
    if (Fallthrough)
      Result.push_back(Fallthrough);
    return Result;
  }
  switch (Term->Op) {
  case Opcode::CondBr:
    Result.push_back(Term->Target);
    if (Fallthrough)
      Result.push_back(Fallthrough);
    break;
  case Opcode::Jmp:
    Result.push_back(Term->Target);
    break;
  case Opcode::Ret:
  case Opcode::Halt:
    break;
  default:
    break;
  }
  return Result;
}
