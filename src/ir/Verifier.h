//===- ir/Verifier.h - IR structural validation (legacy shim) -----*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DEPRECATED legacy entry points, kept as thin shims for one release.
/// The structural checks live in the analyze:: static checker now
/// (analyze/Analyze.h): call analyze::lintProgram for a Status-returning
/// IR lint with structured diagnostics, or run the full
/// AnalysisManager::standardPipeline() to also cross-check annotations and
/// profiles.  New code must not call verifyProgramOrDie — it aborts the
/// whole process, which is exactly wrong for fuzz-generated inputs.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_IR_VERIFIER_H
#define DMP_IR_VERIFIER_H

#include <string>
#include <vector>

namespace dmp::ir {

class Program;

/// DEPRECATED: shim over analyze::lintProgram.  Appends the rendered
/// error-severity diagnostics to \p Errors and returns true when there are
/// none.  Prefer analyze::lintProgram, which returns a dmp::Status and can
/// surface the structured diagnostics (including warnings).
bool verifyProgram(const Program &P, std::vector<std::string> &Errors);

/// DEPRECATED: aborts with rendered diagnostics on the first lint error.
/// Only for tests/builders where a malformed program is a programming bug;
/// everything else migrated to the Status-returning analyze entry points.
void verifyProgramOrDie(const Program &P);

} // namespace dmp::ir

#endif // DMP_IR_VERIFIER_H
