//===- ir/Verifier.h - IR structural validation -------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural validation of programs: every workload generator output and
/// every hand-built test program goes through verifyProgram before it may be
/// profiled or simulated.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_IR_VERIFIER_H
#define DMP_IR_VERIFIER_H

#include <string>
#include <vector>

namespace dmp::ir {

class Program;

/// Checks structural invariants of \p P and appends human-readable
/// diagnostics to \p Errors.  Returns true when the program is well formed.
///
/// Checked invariants:
///  - the program is finalized and has a main function;
///  - every block is non-empty;
///  - terminators appear only as the last instruction of a block;
///  - the last block of a function ends in Ret, Halt, or Jmp (no falling off
///    the end of a function);
///  - main's last reachable terminator structure contains a Halt;
///  - branch/jump targets are blocks of the same function;
///  - calls reference functions of the same program, and no function ends
///    without a terminating Ret/Halt;
///  - no instruction writes r0;
///  - addresses are dense and consistent with the flat lookup tables.
bool verifyProgram(const Program &P, std::vector<std::string> &Errors);

/// Convenience wrapper that aborts with the first error.  For tests and
/// generators where a malformed program is a programming bug.
void verifyProgramOrDie(const Program &P);

} // namespace dmp::ir

#endif // DMP_IR_VERIFIER_H
