//===- ir/Printer.h - Textual program dumps ------------------------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembly-style textual dumps of programs, functions, and blocks, used by
/// the examples and for debugging.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_IR_PRINTER_H
#define DMP_IR_PRINTER_H

#include <string>

namespace dmp::ir {

class BasicBlock;
class Function;
class Program;

std::string printBlock(const BasicBlock &Block);
std::string printFunction(const Function &F);
std::string printProgram(const Program &P);

} // namespace dmp::ir

#endif // DMP_IR_PRINTER_H
