//===- ir/Opcode.h - Instruction opcodes of the DMP ISA ----------*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcode set of the small RISC-like register ISA the reproduction targets.
///
/// The paper evaluates Alpha binaries; the compiler algorithms and the DMP
/// hardware mechanism only depend on control-flow shape and branch-outcome
/// statistics, so we substitute a minimal ISA that exposes the same control
/// constructs: conditional branches, unconditional jumps, calls and returns.
/// See DESIGN.md section 2 for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_IR_OPCODE_H
#define DMP_IR_OPCODE_H

#include <cstdint>

namespace dmp::ir {

/// Architectural register index.  The ISA has 32 integer registers; r0 is
/// hardwired to zero (MIPS-style).
using Reg = uint8_t;

/// Number of architectural integer registers.
inline constexpr unsigned NumRegs = 32;

/// The hardwired-zero register.
inline constexpr Reg RegZero = 0;

enum class Opcode : uint8_t {
  // Register-register ALU.
  Add,
  Sub,
  Mul,
  Div, // Integer divide; divide-by-zero yields zero (deterministic).
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Slt, // Dst = (Src1 < Src2) ? 1 : 0, signed.

  // Register-immediate ALU.
  AddI,
  MulI,
  AndI,
  SltI,
  LoadImm, // Dst = Imm.

  // Memory (word-addressed data memory; address = Src1 + Imm).
  Load,
  Store,

  // Control flow.
  CondBr, // if cond(Src1, Src2) goto Target else fall through.
  Jmp,    // goto Target.
  Call,   // push return pc; goto Callee entry.
  Ret,    // pop return pc.

  // Misc.
  Nop,
  Halt, // Ends the program.
};

/// Condition codes for CondBr.
enum class BrCond : uint8_t { Eq, Ne, Lt, Ge, Ltu, Geu };

/// Returns a mnemonic string for \p Op.
const char *opcodeName(Opcode Op);

/// Returns a mnemonic string for \p Cond.
const char *brCondName(BrCond Cond);

/// Returns true for instructions that may transfer control (CondBr, Jmp,
/// Call, Ret, Halt).
inline bool isControlFlow(Opcode Op) {
  switch (Op) {
  case Opcode::CondBr:
  case Opcode::Jmp:
  case Opcode::Call:
  case Opcode::Ret:
  case Opcode::Halt:
    return true;
  default:
    return false;
  }
}

/// Returns true for instructions that must terminate a basic block.  Call is
/// deliberately not a terminator: like most CFG representations, calls sit in
/// the middle of blocks and the intra-procedural CFG ignores them.
inline bool isTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::CondBr:
  case Opcode::Jmp:
  case Opcode::Ret:
  case Opcode::Halt:
    return true;
  default:
    return false;
  }
}

/// Returns true when the instruction writes its Dst register.
inline bool writesRegister(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Slt:
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::AndI:
  case Opcode::SltI:
  case Opcode::LoadImm:
  case Opcode::Load:
    return true;
  default:
    return false;
  }
}

/// Returns true when the instruction reads Src1.
inline bool readsSrc1(Opcode Op) {
  switch (Op) {
  case Opcode::LoadImm:
  case Opcode::Jmp:
  case Opcode::Call:
  case Opcode::Ret:
  case Opcode::Nop:
  case Opcode::Halt:
    return false;
  default:
    return true;
  }
}

/// Returns true when the instruction reads Src2.
inline bool readsSrc2(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Slt:
  case Opcode::CondBr:
  case Opcode::Store:
    return true;
  default:
    return false;
  }
}

} // namespace dmp::ir

#endif // DMP_IR_OPCODE_H
