//===- tests/test_dataflow.cpp - Dataflow framework + meldability tests ------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// The static half of the dataflow test tier (TESTING.md "Dataflow &
// predication safety"): solver unit tests on hand-built programs, property
// tests pitting the bitset fixpoint against a brute-force per-path
// evaluator over check::ProgramGen's random CFGs, convergence on
// irreducible and loop-heavy shapes, the meldability classifier on the
// Figure 3 zoo, and the DF01-DF06 diagnostics through the full analyze
// pipeline (including the IR15 whole-program generalization).  The dynamic
// half — emulator ground truth — lives in test_dataflow_soundness.cpp.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "analyze/Analyze.h"
#include "check/ProgramGen.h"
#include "dataflow/Dataflow.h"
#include "dataflow/Meldability.h"
#include "ir/IRBuilder.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

using namespace dmp;
using dataflow::AllRegs;
using dataflow::RegSet;
using dataflow::regBit;
using dataflow::ZeroRegBit;

namespace {

//===----------------------------------------------------------------------===//
// Brute-force per-path oracles
//
// Deliberately a different algorithm from the solver: per-register DFS over
// the block graph instead of bitset transfer functions iterated in RPO.
// Each block is classified for one register (use-before-def, def, or
// transparent) and the property becomes plain graph reachability.
//===----------------------------------------------------------------------===//

enum class BlockUse { UseFirst, DefFirst, Transparent };

BlockUse classifyBlock(const ir::BasicBlock *B, unsigned R) {
  for (const ir::Instruction &Inst : B->instructions()) {
    if (dataflow::instrUses(Inst) & regBit(R))
      return BlockUse::UseFirst;
    if (dataflow::instrDefs(Inst) & regBit(R))
      return BlockUse::DefFirst;
  }
  return BlockUse::Transparent;
}

bool blockDefines(const ir::BasicBlock *B, unsigned R) {
  for (const ir::Instruction &Inst : B->instructions())
    if (dataflow::instrDefs(Inst) & regBit(R))
      return true;
  return false;
}

/// Exists a path from the *start* of \p B on which r is read before any
/// write?  (The liveness LiveIn property, calls transparent.)
bool pathLiveIn(const ir::BasicBlock *B, unsigned R,
                std::set<const ir::BasicBlock *> &Visited) {
  if (!Visited.insert(B).second)
    return false; // A cycle of transparent blocks never reads r.
  switch (classifyBlock(B, R)) {
  case BlockUse::UseFirst:
    return true;
  case BlockUse::DefFirst:
    return false;
  case BlockUse::Transparent:
    break;
  }
  for (const ir::BasicBlock *S : B->successors())
    if (pathLiveIn(S, R, Visited))
      return true;
  return false;
}

/// Set of reachable blocks the entry can reach with r still unwritten when
/// the block *starts* (the complement of the definite-assignment AssignedIn
/// property, empty entry set).
std::set<const ir::BasicBlock *>
blocksReachableUnassigned(const cfg::CFGView &View, unsigned R) {
  std::set<const ir::BasicBlock *> RU;
  if (View.reversePostorder().empty())
    return RU;
  std::vector<const ir::BasicBlock *> Work{View.reversePostorder().front()};
  RU.insert(Work.back());
  while (!Work.empty()) {
    const ir::BasicBlock *B = Work.back();
    Work.pop_back();
    if (blockDefines(B, R))
      continue; // Every path through B writes r somewhere inside it.
    for (const ir::BasicBlock *S : B->successors())
      if (RU.insert(S).second)
        Work.push_back(S);
  }
  return RU;
}

void expectLivenessMatchesBruteForce(const cfg::CFGView &View) {
  const dataflow::LivenessResult L =
      dataflow::computeLiveness(View, /*RetLiveOut=*/0);
  for (const ir::BasicBlock *B : View.reversePostorder())
    for (unsigned R = 1; R < ir::NumRegs; ++R) {
      std::set<const ir::BasicBlock *> Visited;
      const bool Brute = pathLiveIn(B, R, Visited);
      const bool Solver = (L.LiveIn[B->getId()] & regBit(R)) != 0;
      ASSERT_EQ(Solver, Brute)
          << "liveness mismatch: r" << R << " at block '" << B->getName()
          << "' of " << View.getFunction().getName();
    }
}

void expectDefiniteAssignMatchesBruteForce(const cfg::CFGView &View) {
  const dataflow::DefiniteAssignResult D =
      dataflow::computeDefiniteAssign(View, /*EntryAssigned=*/0);
  for (unsigned R = 1; R < ir::NumRegs; ++R) {
    const std::set<const ir::BasicBlock *> RU =
        blocksReachableUnassigned(View, R);
    for (const ir::BasicBlock *B : View.reversePostorder()) {
      const bool BruteAssigned = RU.count(B) == 0;
      const bool Solver = (D.AssignedIn[B->getId()] & regBit(R)) != 0;
      ASSERT_EQ(Solver, BruteAssigned)
          << "definite-assignment mismatch: r" << R << " at block '"
          << B->getName() << "' of " << View.getFunction().getName();
    }
  }
}

/// Brute-force reaching definitions for one definition site: BFS forward
/// from its block (when downward-exposed) through blocks that do not
/// redefine the register.
void expectReachingDefsMatchBruteForce(const cfg::CFGView &View) {
  const dataflow::ReachingDefsResult RD = dataflow::computeReachingDefs(View);
  // Recover each definition's (block, register, position) from its address.
  for (unsigned D = 0; D < RD.defCount(); ++D) {
    const uint32_t Addr = RD.DefAddrs[D];
    const ir::BasicBlock *Home = nullptr;
    unsigned Reg = 0;
    bool Exposed = true; // No later def of Reg in Home after Addr.
    for (const ir::BasicBlock *B : View.reversePostorder()) {
      bool Seen = false;
      for (const ir::Instruction &Inst : B->instructions()) {
        if (Inst.Addr == Addr) {
          Home = B;
          Seen = true;
          Reg = Inst.Dst;
          continue;
        }
        if (Seen && (dataflow::instrDefs(Inst) & regBit(Reg)))
          Exposed = false;
      }
      if (Home != nullptr)
        break;
    }
    ASSERT_NE(Home, nullptr) << "definition address not in any RPO block";
    std::set<const ir::BasicBlock *> InReach;
    if (Exposed) {
      std::vector<const ir::BasicBlock *> Work;
      for (const ir::BasicBlock *S : Home->successors())
        if (InReach.insert(S).second)
          Work.push_back(S);
      while (!Work.empty()) {
        const ir::BasicBlock *B = Work.back();
        Work.pop_back();
        if (blockDefines(B, Reg))
          continue;
        for (const ir::BasicBlock *S : B->successors())
          if (InReach.insert(S).second)
            Work.push_back(S);
      }
    }
    for (const ir::BasicBlock *B : View.reversePostorder()) {
      const bool Brute = InReach.count(B) != 0;
      const bool Solver = RD.In[B->getId()].test(D);
      ASSERT_EQ(Solver, Brute)
          << "reaching-defs mismatch: def@" << Addr << " (r" << Reg
          << ") at block '" << B->getName() << "'";
    }
  }
}

//===----------------------------------------------------------------------===//
// Hand-built shapes
//===----------------------------------------------------------------------===//

/// entry -> {A, B};  A <-> B (two-entry loop: irreducible);  both -> exit.
std::unique_ptr<ir::Program> buildIrreducible() {
  auto P = std::make_unique<ir::Program>("irreducible");
  ir::Function *F = P->createFunction("main");
  ir::IRBuilder B(*P);
  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *A = F->createBlock("a");
  ir::BasicBlock *Bb = F->createBlock("b");
  ir::BasicBlock *Exit = F->createBlock("exit");

  // Layout order entry, a, b, exit gives every condBr a distinct
  // fallthrough: entry -> {b, a}, a -> {exit, b}, b -> {a, exit}.  The
  // a<->b cycle has two entries: irreducible.
  B.setInsertPoint(Entry);
  B.loadImm(1, 0);
  B.loadImm(2, 10);
  B.condBr(ir::BrCond::Ne, 1, 2, Bb);

  B.setInsertPoint(A);
  B.addI(1, 1, 1);
  B.condBr(ir::BrCond::Ge, 1, 2, Exit);

  B.setInsertPoint(Bb);
  B.addI(1, 1, 2);
  B.condBr(ir::BrCond::Lt, 1, 2, A);

  B.setInsertPoint(Exit);
  B.halt();
  P->finalize();
  return P;
}

/// main writes r5, calls f; f reads r5 (fine) and r7 (never written
/// anywhere: IR15 in the callee).
std::unique_ptr<ir::Program> buildCalleeUndefRead() {
  auto P = std::make_unique<ir::Program>("callee-undef");
  ir::Function *Main = P->createFunction("main");
  ir::Function *F = P->createFunction("f");
  ir::IRBuilder B(*P);

  ir::BasicBlock *ME = Main->createBlock("entry");
  B.setInsertPoint(ME);
  B.loadImm(5, 42);
  B.call(F);
  B.addI(6, 6, 1); // Uses f's result register.
  B.halt();

  ir::BasicBlock *FE = F->createBlock("entry");
  B.setInsertPoint(FE);
  B.addI(6, 5, 1); // r5 assigned by the caller: no warning.
  B.add(6, 6, 7);  // r7 never assigned on any path: IR15.
  B.ret();
  P->finalize();
  return P;
}

core::DivergeAnnotation simpleAnnotation(uint32_t CfmAddr) {
  core::DivergeAnnotation Ann;
  Ann.Kind = core::DivergeKind::SimpleHammock;
  Ann.Cfms.push_back(core::CfmPoint::atAddress(CfmAddr, 1.0));
  return Ann;
}

} // namespace

//===----------------------------------------------------------------------===//
// Solver unit tests
//===----------------------------------------------------------------------===//

TEST(DataflowSolverTest, SimpleHammockLivenessFacts) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  const ir::Function &F = *H.Prog->functions().front();
  const cfg::CFGView View(F);
  const dataflow::LivenessResult L = dataflow::computeLiveness(View, 0);

  // The loop bound r2 and index r1 are live at the loop header; the
  // condition register r3 is not (the header reloads it).
  const RegSet HeaderIn = L.LiveIn[H.BranchBlock->getId()];
  EXPECT_TRUE(HeaderIn & regBit(1));
  EXPECT_TRUE(HeaderIn & regBit(2));
  EXPECT_FALSE(HeaderIn & regBit(3));
  // Nothing is live after the halt-terminated exit block.
  for (const ir::BasicBlock *B : View.reversePostorder()) {
    const ir::Instruction *T = B->getTerminator();
    if (T != nullptr && T->Op == ir::Opcode::Halt)
      EXPECT_EQ(L.LiveOut[B->getId()], 0u);
  }
}

TEST(DataflowSolverTest, SimpleHammockDefiniteAssignFacts) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  const ir::Function &F = *H.Prog->functions().front();
  const cfg::CFGView View(F);
  const dataflow::DefiniteAssignResult D =
      dataflow::computeDefiniteAssign(View, 0);

  // The entry block writes r1/r2/r4 on the only path to the header.
  const RegSet HeaderIn = D.AssignedIn[H.BranchBlock->getId()];
  EXPECT_TRUE(HeaderIn & regBit(1));
  EXPECT_TRUE(HeaderIn & regBit(2));
  EXPECT_TRUE(HeaderIn & regBit(4));
  // A register nothing writes is assigned nowhere.
  for (const ir::BasicBlock *B : View.reversePostorder())
    EXPECT_FALSE(D.AssignedOut[B->getId()] & regBit(20));
}

TEST(DataflowSolverTest, RetLiveOutFlowsIntoRetBlocks) {
  const test::ProgramHandles H = test::buildRetFuncLoop();
  for (const auto &F : H.Prog->functions()) {
    if (F->getName() == "main")
      continue;
    const cfg::CFGView View(*F);
    const dataflow::LivenessResult Demand =
        dataflow::computeLiveness(View, regBit(9));
    const dataflow::LivenessResult NoDemand =
        dataflow::computeLiveness(View, 0);
    bool SawRet = false;
    for (const ir::BasicBlock *B : View.reversePostorder()) {
      const ir::Instruction *T = B->getTerminator();
      if (T == nullptr || T->Op != ir::Opcode::Ret)
        continue;
      SawRet = true;
      EXPECT_TRUE(Demand.LiveOut[B->getId()] & regBit(9));
      EXPECT_FALSE(NoDemand.LiveOut[B->getId()] & regBit(9));
    }
    EXPECT_TRUE(SawRet);
  }
}

TEST(DataflowSolverTest, BlockEffectsSummaries) {
  const test::ProgramHandles H = test::buildRetFuncLoop();
  for (const auto &F : H.Prog->functions()) {
    const cfg::CFGView View(*F);
    const std::vector<dataflow::BlockEffects> E =
        dataflow::computeBlockEffects(View);
    for (const ir::BasicBlock *B : View.reversePostorder()) {
      uint32_t Calls = 0, Stores = 0;
      bool Halt = false, Ret = false;
      for (const ir::Instruction &Inst : B->instructions()) {
        Calls += Inst.Op == ir::Opcode::Call;
        Stores += Inst.Op == ir::Opcode::Store;
        Halt |= Inst.Op == ir::Opcode::Halt;
        Ret |= Inst.Op == ir::Opcode::Ret;
      }
      EXPECT_EQ(E[B->getId()].Calls, Calls);
      EXPECT_EQ(E[B->getId()].Stores, Stores);
      EXPECT_EQ(E[B->getId()].HasHalt, Halt);
      EXPECT_EQ(E[B->getId()].HasRet, Ret);
      EXPECT_EQ(E[B->getId()].pure(), Calls == 0 && Stores == 0 && !Halt && !Ret);
    }
  }
}

//===----------------------------------------------------------------------===//
// Property tests vs the brute-force per-path evaluator
//===----------------------------------------------------------------------===//

TEST(DataflowPropertyTest, LivenessMatchesBruteForceOnRandomPrograms) {
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    const check::GenProgram G = check::materialize(check::randomRecipe(Seed));
    ASSERT_TRUE(G.VerifyErrors.empty());
    for (const auto &F : G.Prog->functions())
      expectLivenessMatchesBruteForce(cfg::CFGView(*F));
  }
}

TEST(DataflowPropertyTest, DefiniteAssignMatchesBruteForceOnRandomPrograms) {
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    const check::GenProgram G = check::materialize(check::randomRecipe(Seed));
    ASSERT_TRUE(G.VerifyErrors.empty());
    for (const auto &F : G.Prog->functions())
      expectDefiniteAssignMatchesBruteForce(cfg::CFGView(*F));
  }
}

TEST(DataflowPropertyTest, ReachingDefsMatchBruteForceOnRandomPrograms) {
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    const check::GenProgram G = check::materialize(check::randomRecipe(Seed));
    ASSERT_TRUE(G.VerifyErrors.empty());
    for (const auto &F : G.Prog->functions())
      expectReachingDefsMatchBruteForce(cfg::CFGView(*F));
  }
}

TEST(DataflowPropertyTest, IrreducibleCfgConvergesAndMatchesBruteForce) {
  const std::unique_ptr<ir::Program> P = buildIrreducible();
  const ir::Function &F = *P->functions().front();
  const cfg::CFGView View(F);
  expectLivenessMatchesBruteForce(View);
  expectDefiniteAssignMatchesBruteForce(View);
  expectReachingDefsMatchBruteForce(View);
  const dataflow::LivenessResult L = dataflow::computeLiveness(View, 0);
  EXPECT_LE(L.Rounds, View.blockCount() + 2);
}

TEST(DataflowPropertyTest, LoopHeavyRecipesConvergeQuickly) {
  // Recipes made of nothing but loops: the worst case for a forward
  // RPO sweep of a backward problem and vice versa.
  check::GenRecipe Recipe;
  Recipe.Seed = 99;
  Recipe.OuterIters = 8;
  for (unsigned I = 0; I < 8; ++I) {
    check::GenOp Op;
    Op.Kind = (I % 2) ? check::GenOpKind::ShortLoop
                      : check::GenOpKind::DataLoop;
    Op.A = 3;
    Op.B = 3;
    Op.C = static_cast<uint32_t>(17 * I + 1);
    Recipe.Ops.push_back(Op);
  }
  const check::GenProgram G = check::materialize(Recipe);
  ASSERT_TRUE(G.VerifyErrors.empty());
  for (const auto &F : G.Prog->functions()) {
    const cfg::CFGView View(*F);
    const dataflow::LivenessResult L = dataflow::computeLiveness(View, 0);
    const dataflow::DefiniteAssignResult D =
        dataflow::computeDefiniteAssign(View, 0);
    EXPECT_LE(L.Rounds, View.blockCount() + 2);
    EXPECT_LE(D.Rounds, View.blockCount() + 2);
    expectLivenessMatchesBruteForce(View);
    expectDefiniteAssignMatchesBruteForce(View);
  }
}

TEST(DataflowPropertyTest, ProgramDataflowIsDeterministic) {
  const check::GenProgram G = check::materialize(check::randomRecipe(7));
  ASSERT_TRUE(G.VerifyErrors.empty());
  const dataflow::ProgramDataflow A(*G.Prog);
  const dataflow::ProgramDataflow B(*G.Prog);
  ASSERT_EQ(A.interRounds(), B.interRounds());
  for (uint32_t Addr = 0; Addr < G.Prog->instrCount(); ++Addr) {
    ASSERT_EQ(A.assignedBefore(Addr), B.assignedBefore(Addr));
    ASSERT_EQ(A.liveAfter(Addr), B.liveAfter(Addr));
  }
}

TEST(DataflowPropertyTest, InterproceduralFixpointConverges) {
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    const check::GenProgram G = check::materialize(check::randomRecipe(Seed));
    ASSERT_TRUE(G.VerifyErrors.empty());
    const dataflow::ProgramDataflow PD(*G.Prog);
    const unsigned NF =
        static_cast<unsigned>(G.Prog->functions().size());
    EXPECT_LE(PD.interRounds(), 32 * NF + 2);
    // Every instruction's claims respect the r0 invariants.
    // r0 is hardwired-zero, so every claim must treat it as assigned.
    // (It is *not* always live: liveness is may-read-before-write, and the
    // soundness checker masks r0 out of dead claims for the same reason.)
    for (uint32_t Addr = 0; Addr < G.Prog->instrCount(); ++Addr)
      EXPECT_TRUE(PD.assignedBefore(Addr) & ZeroRegBit);
  }
}

//===----------------------------------------------------------------------===//
// Meldability classification
//===----------------------------------------------------------------------===//

TEST(MeldabilityTest, SimpleHammockIsMeldable) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  const cfg::ProgramAnalysis PA(*H.Prog);
  const dataflow::ProgramDataflow PD(*H.Prog);
  core::DivergeMap Map;
  Map.add(H.BranchAddr, simpleAnnotation(H.Merge->getStartAddr()));

  const dataflow::MeldReport R =
      dataflow::analyzeMeldability(*H.Prog, PA, Map, PD);
  ASSERT_EQ(R.Hammocks.size(), 1u);
  const dataflow::HammockReport &HR = R.Hammocks.front();
  EXPECT_EQ(HR.BranchAddr, H.BranchAddr);
  EXPECT_EQ(HR.Kind, core::DivergeKind::SimpleHammock);
  EXPECT_EQ(HR.RegionBlocks, 2u);
  EXPECT_EQ(HR.EscapeBlocks, 0u);
  EXPECT_GT(HR.SelectCount, 0u);
  EXPECT_EQ(HR.PredStoreCount, 0u);
  EXPECT_EQ(HR.unsafeCount(), 0u);
  EXPECT_TRUE(HR.Meldable);
  // The verdict list covers exactly the region's instructions, in
  // ascending address order.
  for (size_t I = 1; I < HR.Instrs.size(); ++I)
    EXPECT_LT(HR.Instrs[I - 1].Addr, HR.Instrs[I].Addr);
}

TEST(MeldabilityTest, StoreInLegBecomesPredicatedStore) {
  auto P = std::make_unique<ir::Program>("store-hammock");
  ir::Function *F = P->createFunction("main");
  ir::IRBuilder B(*P);
  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *Then = F->createBlock("then");
  ir::BasicBlock *Merge = F->createBlock("merge");
  B.setInsertPoint(Entry);
  B.loadImm(1, 1);
  B.loadImm(2, 64);
  B.condBr(ir::BrCond::Eq, 1, 0, Merge);
  B.setInsertPoint(Then);
  B.store(1, 2, 0);
  B.addI(3, 1, 1);
  B.jmp(Merge);
  B.setInsertPoint(Merge);
  B.halt();
  P->finalize();
  test::requireClean(*P);
  const uint32_t BranchAddr = Entry->getTerminator()->Addr;

  const cfg::ProgramAnalysis PA(*P);
  const dataflow::ProgramDataflow PD(*P);
  core::DivergeMap Map;
  Map.add(BranchAddr, simpleAnnotation(Merge->getStartAddr()));
  const dataflow::MeldReport R = dataflow::analyzeMeldability(*P, PA, Map, PD);
  ASSERT_EQ(R.Hammocks.size(), 1u);
  EXPECT_EQ(R.Hammocks[0].PredStoreCount, 1u);
  EXPECT_EQ(R.Hammocks[0].unsafeCount(), 0u);
  EXPECT_TRUE(R.Hammocks[0].Meldable);
}

TEST(MeldabilityTest, CallInLegIsUnsafe) {
  auto P = std::make_unique<ir::Program>("call-hammock");
  ir::Function *Main = P->createFunction("main");
  ir::Function *Helper = P->createFunction("helper");
  ir::IRBuilder B(*P);
  ir::BasicBlock *Entry = Main->createBlock("entry");
  ir::BasicBlock *Then = Main->createBlock("then");
  ir::BasicBlock *Merge = Main->createBlock("merge");
  B.setInsertPoint(Entry);
  B.loadImm(1, 1);
  B.condBr(ir::BrCond::Eq, 1, 0, Merge);
  B.setInsertPoint(Then);
  B.call(Helper);
  B.jmp(Merge);
  B.setInsertPoint(Merge);
  B.halt();
  ir::BasicBlock *HE = Helper->createBlock("entry");
  B.setInsertPoint(HE);
  B.addI(4, 4, 1);
  B.ret();
  P->finalize();
  test::requireClean(*P);
  const uint32_t BranchAddr = Entry->getTerminator()->Addr;

  const cfg::ProgramAnalysis PA(*P);
  const dataflow::ProgramDataflow PD(*P);
  core::DivergeMap Map;
  Map.add(BranchAddr, simpleAnnotation(Merge->getStartAddr()));
  const dataflow::MeldReport R = dataflow::analyzeMeldability(*P, PA, Map, PD);
  ASSERT_EQ(R.Hammocks.size(), 1u);
  EXPECT_EQ(R.Hammocks[0].UnsafeCalls, 1u);
  EXPECT_FALSE(R.Hammocks[0].Meldable);
}

TEST(MeldabilityTest, FreqHammockRareSideEscapes) {
  const test::ProgramHandles H = test::buildFreqHammockLoop();
  const cfg::ProgramAnalysis PA(*H.Prog);
  const dataflow::ProgramDataflow PD(*H.Prog);
  core::DivergeMap Map;
  core::DivergeAnnotation Ann;
  Ann.Kind = core::DivergeKind::FreqHammock;
  Ann.Cfms.push_back(core::CfmPoint::atAddress(H.Merge->getStartAddr(), 0.9));
  Map.add(H.BranchAddr, Ann);

  const dataflow::MeldReport R =
      dataflow::analyzeMeldability(*H.Prog, PA, Map, PD);
  ASSERT_EQ(R.Hammocks.size(), 1u);
  // The rare side bypasses the merge: a side exit or escape blocks must be
  // reported, and the region is not meldable as-is.
  EXPECT_GT(R.Hammocks[0].UnsafeSideExits + R.Hammocks[0].EscapeBlocks, 0u);
  EXPECT_FALSE(R.Hammocks[0].Meldable);
}

TEST(MeldabilityTest, LoopAnnotationFindsLoopCarriedRecurrence) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  // The loop-back branch lives in the merge block.
  const ir::Instruction *LoopBr = H.Merge->getTerminator();
  ASSERT_NE(LoopBr, nullptr);
  ASSERT_EQ(LoopBr->Op, ir::Opcode::CondBr);

  const cfg::ProgramAnalysis PA(*H.Prog);
  const dataflow::ProgramDataflow PD(*H.Prog);
  core::DivergeMap Map;
  core::DivergeAnnotation Ann;
  Ann.Kind = core::DivergeKind::Loop;
  Ann.LoopHeaderAddr = H.BranchBlock->getStartAddr();
  Ann.LoopStayTaken = true;
  Ann.Cfms.push_back(
      core::CfmPoint::atAddress(H.BranchBlock->getStartAddr(), 0.9));
  Map.add(LoopBr->Addr, Ann);

  const dataflow::MeldReport R =
      dataflow::analyzeMeldability(*H.Prog, PA, Map, PD);
  ASSERT_EQ(R.Hammocks.size(), 1u);
  EXPECT_EQ(R.Hammocks[0].Kind, core::DivergeKind::Loop);
  // The loop index (r1) recurrence at minimum: i = i + 1 with r1 live at
  // the header.
  EXPECT_GT(R.Hammocks[0].UnsafeLoopCarried, 0u);
  EXPECT_FALSE(R.Hammocks[0].Meldable);
}

TEST(MeldabilityTest, NoCfmAnnotationYieldsEmptyRow) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  const cfg::ProgramAnalysis PA(*H.Prog);
  const dataflow::ProgramDataflow PD(*H.Prog);
  core::DivergeMap Map;
  core::DivergeAnnotation Ann;
  Ann.Kind = core::DivergeKind::NoCfm;
  Map.add(H.BranchAddr, Ann);
  const dataflow::MeldReport R =
      dataflow::analyzeMeldability(*H.Prog, PA, Map, PD);
  ASSERT_EQ(R.Hammocks.size(), 1u);
  EXPECT_EQ(R.Hammocks[0].RegionBlocks, 0u);
  EXPECT_FALSE(R.Hammocks[0].Meldable);
}

TEST(MeldabilityTest, TsvRendererIsStable) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  const cfg::ProgramAnalysis PA(*H.Prog);
  const dataflow::ProgramDataflow PD(*H.Prog);
  core::DivergeMap Map;
  Map.add(H.BranchAddr, simpleAnnotation(H.Merge->getStartAddr()));
  const dataflow::MeldReport R =
      dataflow::analyzeMeldability(*H.Prog, PA, Map, PD);
  const std::string Tsv =
      dataflow::renderMeldReportTsv(R, {"workload"}, {"hammock"});
  EXPECT_EQ(Tsv.substr(0, Tsv.find('\n')),
            "workload\tbranch\tkind\tblocks\tescapes\tselect\tpred_store\t"
            "unsafe_call\tunsafe_loop\tunsafe_exit\tmeldable");
  EXPECT_NE(Tsv.find("\nhammock\t"), std::string::npos);
  EXPECT_EQ(Tsv, dataflow::renderMeldReportTsv(R, {"workload"}, {"hammock"}));
}

//===----------------------------------------------------------------------===//
// DF01-DF06 + whole-program IR15 through the analyze pipeline
//===----------------------------------------------------------------------===//

namespace {

analyze::DiagnosticSink lintWithAnnotations(const ir::Program &P,
                                            const core::DivergeMap &Map) {
  analyze::DiagnosticSink Sink;
  const cfg::ProgramAnalysis PA(P);
  analyze::AnalysisInput Input;
  Input.P = &P;
  Input.PA = &PA;
  Input.Annotations = &Map;
  analyze::lintAll(Input, &Sink);
  return Sink;
}

} // namespace

TEST(PredicationSafetyTest, DeadWriteWarnsDF05) {
  auto P = std::make_unique<ir::Program>("dead-write");
  ir::Function *F = P->createFunction("main");
  ir::IRBuilder B(*P);
  ir::BasicBlock *Entry = F->createBlock("entry");
  B.setInsertPoint(Entry);
  B.loadImm(10, 1); // Dead: overwritten before any read.
  B.loadImm(10, 2);
  B.addI(11, 10, 1);
  B.store(11, 0, 0);
  B.halt();
  P->finalize();

  core::DivergeMap Empty;
  const analyze::DiagnosticSink Sink = lintWithAnnotations(*P, Empty);
  EXPECT_TRUE(Sink.has(analyze::DiagCode::DfDeadWrite));
  EXPECT_EQ(Sink.errorCount(), 0u);
}

TEST(PredicationSafetyTest, HammockCallWarnsDF02) {
  auto P = std::make_unique<ir::Program>("df02");
  ir::Function *Main = P->createFunction("main");
  ir::Function *Helper = P->createFunction("helper");
  ir::IRBuilder B(*P);
  ir::BasicBlock *Entry = Main->createBlock("entry");
  ir::BasicBlock *Then = Main->createBlock("then");
  ir::BasicBlock *Merge = Main->createBlock("merge");
  B.setInsertPoint(Entry);
  B.loadImm(1, 1);
  B.condBr(ir::BrCond::Eq, 1, 0, Merge);
  B.setInsertPoint(Then);
  B.call(Helper);
  B.jmp(Merge);
  B.setInsertPoint(Merge);
  B.addI(4, 4, 1);
  B.store(4, 0, 0);
  B.halt();
  ir::BasicBlock *HE = Helper->createBlock("entry");
  B.setInsertPoint(HE);
  B.addI(4, 1, 1);
  B.ret();
  P->finalize();
  const uint32_t BranchAddr = Entry->getTerminator()->Addr;

  core::DivergeMap Map;
  Map.add(BranchAddr, simpleAnnotation(Merge->getStartAddr()));
  const analyze::DiagnosticSink Sink = lintWithAnnotations(*P, Map);
  EXPECT_TRUE(Sink.has(analyze::DiagCode::DfHammockCall));
}

TEST(PredicationSafetyTest, MeldableStoresWarnDF06) {
  auto P = std::make_unique<ir::Program>("df06");
  ir::Function *F = P->createFunction("main");
  ir::IRBuilder B(*P);
  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *Then = F->createBlock("then");
  ir::BasicBlock *Merge = F->createBlock("merge");
  B.setInsertPoint(Entry);
  B.loadImm(1, 1);
  B.loadImm(2, 64);
  B.condBr(ir::BrCond::Eq, 1, 0, Merge);
  B.setInsertPoint(Then);
  B.store(1, 2, 0);
  B.jmp(Merge);
  B.setInsertPoint(Merge);
  B.halt();
  P->finalize();
  const uint32_t BranchAddr = Entry->getTerminator()->Addr;

  core::DivergeMap Map;
  Map.add(BranchAddr, simpleAnnotation(Merge->getStartAddr()));
  const analyze::DiagnosticSink Sink = lintWithAnnotations(*P, Map);
  EXPECT_TRUE(Sink.has(analyze::DiagCode::DfPredStores));
  EXPECT_EQ(Sink.errorCount(), 0u);
}

TEST(PredicationSafetyTest, ExactCfmWithHaltInRegionErrorsDF01) {
  auto P = std::make_unique<ir::Program>("df01");
  ir::Function *F = P->createFunction("main");
  ir::IRBuilder B(*P);
  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *Fall = F->createBlock("fall"); // Layout: fallthrough leg.
  ir::BasicBlock *Then = F->createBlock("then");
  ir::BasicBlock *Merge = F->createBlock("merge");
  B.setInsertPoint(Entry);
  B.loadImm(1, 1);
  B.condBr(ir::BrCond::Eq, 1, 0, Then);
  B.setInsertPoint(Fall);
  B.addI(2, 1, 1);
  B.jmp(Merge);
  B.setInsertPoint(Then);
  B.halt(); // The "merging" path can end execution inside the region.
  B.setInsertPoint(Merge);
  B.store(2, 0, 0);
  B.halt();
  P->finalize();
  const uint32_t BranchAddr = Entry->getTerminator()->Addr;

  core::DivergeMap Map;
  Map.add(BranchAddr, simpleAnnotation(Merge->getStartAddr()));
  const analyze::DiagnosticSink Sink = lintWithAnnotations(*P, Map);
  // The structural check fires (the CFM does not post-dominate) *and* the
  // side-effect cross-check independently proves the claim impossible.
  EXPECT_TRUE(Sink.has(analyze::DiagCode::CfmNotPostDominator));
  EXPECT_TRUE(Sink.has(analyze::DiagCode::DfExactCfmImpure));
  EXPECT_GT(Sink.errorCount(), 0u);
}

TEST(IRLintWholeProgramTest, UndefReadInCalleeWarnsIR15) {
  const std::unique_ptr<ir::Program> P = buildCalleeUndefRead();
  analyze::DiagnosticSink Sink;
  analyze::lintProgram(*P, &Sink);
  bool SawR7 = false, SawR5 = false;
  for (const analyze::Diagnostic &D : Sink.diagnostics()) {
    if (D.Code != analyze::DiagCode::IrMaybeUndefRead)
      continue;
    SawR7 |= D.Message.find("r7") != std::string::npos;
    SawR5 |= D.Message.find("r5") != std::string::npos;
  }
  // r7 is read in f with no write on any path: warn.  r5 is assigned by
  // the caller before every call to f: the interprocedural entry set must
  // suppress the false positive.
  EXPECT_TRUE(SawR7);
  EXPECT_FALSE(SawR5);
}

TEST(IRLintWholeProgramTest, MainOnlyProgramKeepsLegacyIR15Verdicts) {
  // The golden program the old main-only IR15 was tuned on (the filler's
  // r9/r10/r11 upward-exposed reads in the fall block) must produce the
  // exact same warnings — same registers, same addresses, same message —
  // under the whole-program analysis.
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  analyze::DiagnosticSink Sink;
  analyze::lintProgram(*H.Prog, &Sink);
  std::vector<std::string> Seen;
  for (const analyze::Diagnostic &D : Sink.diagnostics())
    if (D.Code == analyze::DiagCode::IrMaybeUndefRead)
      Seen.push_back(D.renderText());
  ASSERT_EQ(Seen.size(), 3u) << Sink.renderText();
  EXPECT_EQ(Seen[0],
            "warning[IR15] main:fall@5: r9 may be read before any write "
            "(relies on implicit zero initialization)");
  EXPECT_EQ(Seen[1],
            "warning[IR15] main:fall@6: r10 may be read before any write "
            "(relies on implicit zero initialization)");
  EXPECT_EQ(Seen[2],
            "warning[IR15] main:fall@7: r11 may be read before any write "
            "(relies on implicit zero initialization)");
  EXPECT_EQ(Sink.errorCount(), 0u);
}

//===----------------------------------------------------------------------===//
// dmp_lint --json: the snapshot must round-trip through dmp::json
//===----------------------------------------------------------------------===//

#ifdef DMP_TEST_LINT_TOOL
TEST(LintJsonTest, SnapshotParsesAndCarriesDiagnostics) {
  const std::string Out = ::testing::TempDir() + "lint_snapshot.json";
  const std::string Cmd = std::string(DMP_TEST_LINT_TOOL) +
                          " gzip --json --profile-instrs=120000 > " + Out;
  ASSERT_EQ(std::system(Cmd.c_str()), 0) << Cmd;

  const StatusOr<json::Value> Parsed = json::parseFile(Out);
  std::remove(Out.c_str());
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();
  const json::Value &Root = Parsed.value();

  const json::Value *Schema = Root.findString("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asString(), "dmp-bench/1");
  ASSERT_NE(Root.find("clean"), nullptr);

  const json::Value *Workloads = Root.find("workloads");
  ASSERT_NE(Workloads, nullptr);
  ASSERT_EQ(Workloads->asArray().size(), 1u);
  const json::Value &W = Workloads->asArray().front();
  ASSERT_NE(W.findString("name"), nullptr);
  EXPECT_EQ(W.findString("name")->asString(), "gzip");
  ASSERT_NE(W.findNumber("errors"), nullptr);
  ASSERT_NE(W.findNumber("warnings"), nullptr);
  const json::Value *Diags = W.find("diagnostics");
  ASSERT_NE(Diags, nullptr);
  // Every diagnostic element carries the machine-format fields.
  for (const json::Value &D : Diags->asArray()) {
    ASSERT_NE(D.findString("code"), nullptr);
    ASSERT_NE(D.findString("severity"), nullptr);
    ASSERT_NE(D.findString("message"), nullptr);
  }
}
#endif // DMP_TEST_LINT_TOOL
