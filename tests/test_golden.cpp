//===- tests/test_golden.cpp - Golden-file tests for textual emitters ---------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Pins the exact output of the two textual emitters — cfg::exportFunctionDot
// and ir::printProgram — against checked-in golden files in tests/golden/.
// Unlike the structural assertions in test_dotexport.cpp/test_ir.cpp, these
// catch *any* formatting drift, which matters because DOT dumps and program
// listings are diffed by humans and consumed by graphviz.
//
// To regenerate after an intentional format change:
//
//   DMP_UPDATE_GOLDEN=1 ./dmp_tests --gtest_filter='GoldenFileTest.*'
//
// then review the diff of tests/golden/ like any other code change.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "cfg/DotExport.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace dmp;

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(DMP_TEST_GOLDEN_DIR) + "/" + Name;
}

void compareToGolden(const std::string &Name, const std::string &Actual) {
  const std::string Path = goldenPath(Name);
  if (std::getenv("DMP_UPDATE_GOLDEN")) {
    std::ofstream Out(Path, std::ios::trunc);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    GTEST_LOG_(INFO) << "updated golden file " << Path;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (regenerate with DMP_UPDATE_GOLDEN=1)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Actual)
      << "output of " << Name
      << " drifted; if intentional, regenerate with DMP_UPDATE_GOLDEN=1 "
         "and review the diff";
}

} // namespace

TEST(GoldenFileTest, SimpleHammockProgramListing) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  compareToGolden("simple_hammock.ir", ir::printProgram(*H.Prog));
}

TEST(GoldenFileTest, SimpleHammockDot) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  std::string Dot;
  for (const auto &F : H.Prog->functions())
    Dot += cfg::exportFunctionDot(*F);
  compareToGolden("simple_hammock.dot", Dot);
}

TEST(GoldenFileTest, FreqHammockDot) {
  const test::ProgramHandles H = test::buildFreqHammockLoop();
  std::string Dot;
  for (const auto &F : H.Prog->functions())
    Dot += cfg::exportFunctionDot(*F);
  compareToGolden("freq_hammock.dot", Dot);
}

TEST(GoldenFileTest, MultiReturnProgramListing) {
  const test::ProgramHandles H = test::buildRetFuncLoop();
  compareToGolden("multi_return.ir", ir::printProgram(*H.Prog));
}
