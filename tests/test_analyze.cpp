//===- tests/test_analyze.cpp - Static checker tests --------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Tests for src/analyze: the diagnostics engine (rendering, severity
// registry, sink accounting), each checker pass against targeted
// corruptions that must yield their specific stable code, the
// AnalysisManager's Status semantics, and golden files pinning the exact
// text/machine rendering of a deterministic corrupt scenario.
//
// Corrupt programs are produced by building a valid program and then
// mutating instruction fields in place: finalize() freezes storage, so
// field edits keep the flat tables consistent while breaking exactly the
// invariant under test.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "analyze/Analyze.h"
#include "cfg/Analysis.h"
#include "core/AnnotationIO.h"
#include "profile/Profiler.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace dmp;
using analyze::DiagCode;
using analyze::DiagLocation;
using analyze::DiagnosticSink;
using analyze::Severity;

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(DMP_TEST_GOLDEN_DIR) + "/" + Name;
}

void compareToGolden(const std::string &Name, const std::string &Actual) {
  const std::string Path = goldenPath(Name);
  if (std::getenv("DMP_UPDATE_GOLDEN")) {
    std::ofstream Out(Path, std::ios::trunc);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    GTEST_LOG_(INFO) << "updated golden file " << Path;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (regenerate with DMP_UPDATE_GOLDEN=1)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Actual)
      << "output of " << Name
      << " drifted; if intentional, regenerate with DMP_UPDATE_GOLDEN=1 "
         "and review the diff";
}

/// Runs the full standard pipeline with whichever artifacts are given.
Status lintWith(const ir::Program &P, const core::DivergeMap *Map,
                const cfg::EdgeProfile *Profile, DiagnosticSink &Sink) {
  const cfg::ProgramAnalysis PA(P);
  analyze::AnalysisInput Input;
  Input.P = &P;
  Input.PA = &PA;
  Input.Annotations = Map;
  Input.Profile = Profile;
  return analyze::lintAll(Input, &Sink);
}

core::DivergeAnnotation hammockAnn(core::DivergeKind Kind, uint32_t CfmAddr,
                                   double Prob) {
  core::DivergeAnnotation Ann;
  Ann.Kind = Kind;
  Ann.Cfms.push_back(core::CfmPoint::atAddress(CfmAddr, Prob));
  return Ann;
}

} // namespace

//===----------------------------------------------------------------------===//
// Diagnostics engine
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, TextRendering) {
  DiagnosticSink Sink;
  analyze::Diagnostic &D =
      Sink.report(DiagCode::CfmNotPostDominator,
                  DiagLocation::inBlock("main", "merge", 17), "message here");
  EXPECT_EQ(D.renderText(), "error[CFM01] main:merge@17: message here");
  D.Notes.push_back("a supporting detail");
  EXPECT_EQ(D.renderText(), "error[CFM01] main:merge@17: message here\n"
                            "  note: a supporting detail");
}

TEST(DiagnosticsTest, ProgramScopeRendersDashes) {
  DiagnosticSink Sink;
  const analyze::Diagnostic &D = Sink.report(
      DiagCode::AnnBranchAddrOutOfRange, DiagLocation::program(), "gone");
  EXPECT_EQ(D.renderText(), "error[ANN01] -: gone");
  // Machine format: code, severity, function, block, addr, message.
  EXPECT_EQ(D.renderMachine(), "ANN01\terror\t-\t-\t-\tgone");
}

TEST(DiagnosticsTest, MachineRenderingFields) {
  DiagnosticSink Sink;
  analyze::Diagnostic &D =
      Sink.report(DiagCode::IrUnreachableBlock,
                  DiagLocation::inBlock("f", "orphan", 9), "never runs");
  D.Notes.push_back("note one");
  EXPECT_EQ(D.renderMachine(),
            "IR14\twarning\tf\torphan\t9\tnever runs\tnote one");
}

TEST(DiagnosticsTest, SeverityRegistry) {
  using analyze::diagCodeSeverity;
  EXPECT_EQ(diagCodeSeverity(DiagCode::IrWriteToZeroReg), Severity::Error);
  EXPECT_EQ(diagCodeSeverity(DiagCode::IrUnreachableBlock), Severity::Warning);
  EXPECT_EQ(diagCodeSeverity(DiagCode::IrMaybeUndefRead), Severity::Warning);
  EXPECT_EQ(diagCodeSeverity(DiagCode::CfmNotPostDominator), Severity::Error);
  EXPECT_EQ(diagCodeSeverity(DiagCode::CfmOneSidedMerge), Severity::Warning);
  EXPECT_EQ(diagCodeSeverity(DiagCode::AnnDuplicateEntry), Severity::Warning);
  EXPECT_EQ(diagCodeSeverity(DiagCode::ProfFlowNotConserved), Severity::Error);
  EXPECT_EQ(diagCodeSeverity(DiagCode::ProfAnnotatedNeverExecuted),
            Severity::Warning);
}

TEST(DiagnosticsTest, SinkAccounting) {
  DiagnosticSink Sink;
  EXPECT_TRUE(Sink.empty());
  EXPECT_EQ(Sink.summaryLine(), "clean");
  Sink.report(DiagCode::IrEmptyBlock, DiagLocation::program(), "e1");
  Sink.report(DiagCode::IrEmptyBlock, DiagLocation::program(), "e2");
  Sink.report(DiagCode::IrUnreachableBlock, DiagLocation::program(), "w1");
  EXPECT_EQ(Sink.errorCount(), 2u);
  EXPECT_EQ(Sink.warningCount(), 1u);
  EXPECT_TRUE(Sink.has(DiagCode::IrEmptyBlock));
  EXPECT_FALSE(Sink.has(DiagCode::IrNoHalt));
  EXPECT_EQ(Sink.summaryLine(), "2 errors, 1 warning");
}

//===----------------------------------------------------------------------===//
// IRLint
//===----------------------------------------------------------------------===//

TEST(IRLintTest, CleanProgramsHaveNoErrors) {
  for (auto Build : {test::buildSimpleHammockLoop, test::buildFreqHammockLoop,
                     test::buildDataLoop}) {
    const test::ProgramHandles H = Build(4, 64);
    DiagnosticSink Sink;
    EXPECT_TRUE(analyze::lintProgram(*H.Prog, &Sink).ok());
    EXPECT_EQ(Sink.errorCount(), 0u) << Sink.renderText();
  }
}

TEST(IRLintTest, NotFinalized) {
  ir::Program P("unfinalized");
  ir::Function *F = P.createFunction("main");
  ir::IRBuilder B(P);
  B.setInsertPoint(F->createBlock("entry"));
  B.halt();
  DiagnosticSink Sink;
  EXPECT_FALSE(analyze::lintProgram(P, &Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::IrNotFinalized));
}

TEST(IRLintTest, WriteToZeroRegister) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  // Merge begins with "addI r1, r1, 1"; retarget the write at r0.
  H.Merge->instructions().front().Dst = ir::RegZero;
  DiagnosticSink Sink;
  EXPECT_FALSE(analyze::lintProgram(*H.Prog, &Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::IrWriteToZeroReg)) << Sink.renderText();
}

TEST(IRLintTest, RegisterOutOfRange) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  H.Merge->instructions().front().Src1 = static_cast<ir::Reg>(ir::NumRegs);
  DiagnosticSink Sink;
  EXPECT_FALSE(analyze::lintProgram(*H.Prog, &Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::IrRegOutOfRange)) << Sink.renderText();
}

TEST(IRLintTest, TerminatorMidBlock) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  ir::Instruction &First = H.FallSide->instructions().front();
  First.Op = ir::Opcode::Jmp;
  First.Target = H.Merge;
  DiagnosticSink Sink;
  EXPECT_FALSE(analyze::lintProgram(*H.Prog, &Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::IrTerminatorMidBlock)) << Sink.renderText();
}

TEST(IRLintTest, UnreachableBlockIsWarning) {
  ir::Program P("orphan");
  ir::Function *F = P.createFunction("main");
  ir::IRBuilder B(P);
  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *Orphan = F->createBlock("orphan");
  ir::BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.loadImm(1, 7);
  B.jmp(Exit);
  B.setInsertPoint(Orphan);
  B.addI(2, 1, 1);
  B.jmp(Exit);
  B.setInsertPoint(Exit);
  B.halt();
  P.finalize();
  DiagnosticSink Sink;
  EXPECT_TRUE(analyze::lintProgram(P, &Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::IrUnreachableBlock)) << Sink.renderText();
  EXPECT_EQ(Sink.errorCount(), 0u);
}

TEST(IRLintTest, MaybeUndefReadIsWarning) {
  ir::Program P("undef-read");
  ir::Function *F = P.createFunction("main");
  ir::IRBuilder B(P);
  B.setInsertPoint(F->createBlock("entry"));
  B.add(4, 5, 5); // r5 is never written anywhere.
  B.halt();
  P.finalize();
  DiagnosticSink Sink;
  EXPECT_TRUE(analyze::lintProgram(P, &Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::IrMaybeUndefRead)) << Sink.renderText();
}

//===----------------------------------------------------------------------===//
// AnnotationConsistency
//===----------------------------------------------------------------------===//

TEST(AnnotationConsistencyTest, BranchAddrOutOfRange) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  core::DivergeMap Map;
  Map.add(999999, hammockAnn(core::DivergeKind::SimpleHammock,
                             H.Merge->getStartAddr(), 1.0));
  DiagnosticSink Sink;
  EXPECT_FALSE(lintWith(*H.Prog, &Map, nullptr, Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::AnnBranchAddrOutOfRange))
      << Sink.renderText();
}

TEST(AnnotationConsistencyTest, AnnotatedAddrNotCondBr) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  core::DivergeMap Map; // Address 0 is the entry loadImm.
  Map.add(0, hammockAnn(core::DivergeKind::SimpleHammock,
                        H.Merge->getStartAddr(), 1.0));
  DiagnosticSink Sink;
  EXPECT_FALSE(lintWith(*H.Prog, &Map, nullptr, Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::AnnNotCondBr)) << Sink.renderText();
}

TEST(AnnotationConsistencyTest, CfmNotBlockStart) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  core::DivergeMap Map;
  Map.add(H.BranchAddr, hammockAnn(core::DivergeKind::SimpleHammock,
                                   H.Merge->getStartAddr() + 1, 1.0));
  DiagnosticSink Sink;
  EXPECT_FALSE(lintWith(*H.Prog, &Map, nullptr, Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::AnnCfmNotBlockStart)) << Sink.renderText();
}

TEST(AnnotationConsistencyTest, AnnotationOnDeadBlock) {
  // entry jumps straight to exit; orphan holds an unreachable branch.
  ir::Program P("dead-branch");
  ir::Function *F = P.createFunction("main");
  ir::IRBuilder B(P);
  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *Orphan = F->createBlock("orphan");
  ir::BasicBlock *OrphanFall = F->createBlock("orphanfall");
  ir::BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.loadImm(1, 0);
  B.jmp(Exit);
  B.setInsertPoint(Orphan);
  B.load(3, 1, 0);
  B.condBr(ir::BrCond::Ne, 3, 0, Exit);
  B.setInsertPoint(OrphanFall);
  B.addI(4, 1, 1);
  // Falls through to Exit.
  B.setInsertPoint(Exit);
  B.halt();
  P.finalize();

  const uint32_t DeadBranchAddr = Orphan->instructions().back().Addr;
  core::DivergeMap Map;
  Map.add(DeadBranchAddr, hammockAnn(core::DivergeKind::SimpleHammock,
                                     Exit->getStartAddr(), 1.0));
  DiagnosticSink Sink;
  EXPECT_FALSE(lintWith(P, &Map, nullptr, Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::AnnDeadBlock)) << Sink.renderText();
}

TEST(AnnotationConsistencyTest, DuplicateSerializedEntries) {
  DiagnosticSink Sink;
  analyze::lintDivergeMapText(
      "branch 12 kind=simple always=1\nbranch 12 kind=loop always=0\n", Sink);
  EXPECT_TRUE(Sink.has(DiagCode::AnnDuplicateEntry));
  EXPECT_EQ(Sink.warningCount(), 1u);
  EXPECT_EQ(Sink.errorCount(), 0u);
}

TEST(AnnotationConsistencyTest, SerializedRealMapHasNoDuplicates) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  core::DivergeMap Map;
  Map.add(H.BranchAddr, hammockAnn(core::DivergeKind::SimpleHammock,
                                   H.Merge->getStartAddr(), 1.0));
  DiagnosticSink Sink;
  analyze::lintDivergeMapText(core::serializeDivergeMap(Map), Sink);
  EXPECT_FALSE(Sink.has(DiagCode::AnnDuplicateEntry)) << Sink.renderText();
}

//===----------------------------------------------------------------------===//
// CfmLegality
//===----------------------------------------------------------------------===//

TEST(CfmLegalityTest, ExactCfmMustPostDominate) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  // The taken side does not post-dominate the hammock branch, yet the
  // annotation claims an exact (probability 1) merge there.
  core::DivergeMap Map;
  Map.add(H.BranchAddr, hammockAnn(core::DivergeKind::NestedHammock,
                                   H.TakenSide->getStartAddr(), 1.0));
  DiagnosticSink Sink;
  const Status S = lintWith(*H.Prog, &Map, nullptr, Sink);
  EXPECT_FALSE(S.ok());
  EXPECT_TRUE(Sink.has(DiagCode::CfmNotPostDominator)) << Sink.renderText();
  EXPECT_NE(S.toString().find("CFM01"), std::string::npos) << S.toString();
}

TEST(CfmLegalityTest, ApproximateKindExemptFromPostDominance) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  // Same merge point, but a frequently-hammock claiming 0.7: approximate
  // CFMs are legal without post-dominance (Section 3.1's Alg-freq).
  core::DivergeMap Map;
  Map.add(H.BranchAddr, hammockAnn(core::DivergeKind::FreqHammock,
                                   H.TakenSide->getStartAddr(), 0.7));
  DiagnosticSink Sink;
  EXPECT_TRUE(lintWith(*H.Prog, &Map, nullptr, Sink).ok())
      << Sink.renderText();
  EXPECT_FALSE(Sink.has(DiagCode::CfmNotPostDominator));
}

TEST(CfmLegalityTest, SimpleHammockShape) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  // Claiming the loop exit as a *simple* hammock's CFM: the region between
  // branch and exit contains the loop back-branch, so it is not two
  // straight-line sides.
  const ir::BasicBlock *Exit = nullptr;
  for (const auto &Blk : H.Prog->getMain()->blocks())
    if (Blk->getName() == "exit")
      Exit = Blk.get();
  ASSERT_NE(Exit, nullptr);
  core::DivergeMap Map;
  Map.add(H.BranchAddr, hammockAnn(core::DivergeKind::SimpleHammock,
                                   Exit->getStartAddr(), 1.0));
  DiagnosticSink Sink;
  EXPECT_FALSE(lintWith(*H.Prog, &Map, nullptr, Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::CfmNotSimpleHammock)) << Sink.renderText();
}

TEST(CfmLegalityTest, LoopHeaderMustHeadALoop) {
  const test::ProgramHandles H = test::buildDataLoop();
  core::DivergeAnnotation Ann;
  Ann.Kind = core::DivergeKind::Loop;
  Ann.LoopHeaderAddr = 0; // The entry block heads no loop.
  Ann.LoopStayTaken = true;
  core::DivergeMap Map;
  Map.add(H.BranchAddr, Ann);
  DiagnosticSink Sink;
  EXPECT_FALSE(lintWith(*H.Prog, &Map, nullptr, Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::CfmLoopHeaderNotLoop)) << Sink.renderText();
}

TEST(CfmLegalityTest, LoopStayDirectionMustMatchCfg) {
  const test::ProgramHandles H = test::buildDataLoop();
  // buildDataLoop's inner branch stays in the loop when taken; claim the
  // opposite.
  core::DivergeAnnotation Ann;
  Ann.Kind = core::DivergeKind::Loop;
  Ann.LoopHeaderAddr = H.BranchBlock->getStartAddr();
  Ann.LoopStayTaken = false;
  core::DivergeMap Map;
  Map.add(H.BranchAddr, Ann);
  DiagnosticSink Sink;
  EXPECT_FALSE(lintWith(*H.Prog, &Map, nullptr, Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::CfmLoopBranchNotExit)) << Sink.renderText();
}

TEST(CfmLegalityTest, CorrectLoopAnnotationIsClean) {
  const test::ProgramHandles H = test::buildDataLoop();
  core::DivergeAnnotation Ann;
  Ann.Kind = core::DivergeKind::Loop;
  Ann.LoopHeaderAddr = H.BranchBlock->getStartAddr();
  Ann.LoopStayTaken = true;
  core::DivergeMap Map;
  Map.add(H.BranchAddr, Ann);
  DiagnosticSink Sink;
  EXPECT_TRUE(lintWith(*H.Prog, &Map, nullptr, Sink).ok())
      << Sink.renderText();
}

TEST(CfmLegalityTest, DuplicateCfmPoint) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  core::DivergeAnnotation Ann = hammockAnn(core::DivergeKind::SimpleHammock,
                                           H.Merge->getStartAddr(), 0.5);
  Ann.Cfms.push_back(core::CfmPoint::atAddress(H.Merge->getStartAddr(), 0.5));
  core::DivergeMap Map;
  Map.add(H.BranchAddr, Ann);
  DiagnosticSink Sink;
  EXPECT_FALSE(lintWith(*H.Prog, &Map, nullptr, Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::CfmDuplicatePoint)) << Sink.renderText();
}

TEST(CfmLegalityTest, MergeProbOutsideRange) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  core::DivergeMap Map;
  Map.add(H.BranchAddr, hammockAnn(core::DivergeKind::SimpleHammock,
                                   H.Merge->getStartAddr(), 1.5));
  DiagnosticSink Sink;
  EXPECT_FALSE(lintWith(*H.Prog, &Map, nullptr, Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::CfmMergeProbRange)) << Sink.renderText();
}

TEST(CfmLegalityTest, MergeProbSumIsWarning) {
  const test::ProgramHandles H = test::buildFreqHammockLoop();
  ASSERT_NE(H.End, nullptr);
  core::DivergeAnnotation Ann =
      hammockAnn(core::DivergeKind::FreqHammock, H.Merge->getStartAddr(), 0.8);
  Ann.Cfms.push_back(core::CfmPoint::atAddress(H.End->getStartAddr(), 0.8));
  core::DivergeMap Map;
  Map.add(H.BranchAddr, Ann);
  DiagnosticSink Sink;
  EXPECT_TRUE(lintWith(*H.Prog, &Map, nullptr, Sink).ok())
      << Sink.renderText();
  EXPECT_TRUE(Sink.has(DiagCode::CfmMergeProbSum)) << Sink.renderText();
}

//===----------------------------------------------------------------------===//
// ProfileSanity
//===----------------------------------------------------------------------===//

namespace {

/// A real profile of the simple-hammock loop, plus everything needed to
/// corrupt it.
struct ProfiledHammock {
  test::ProgramHandles H;
  std::unique_ptr<cfg::ProgramAnalysis> PA;
  cfg::EdgeProfile Edges;

  ProfiledHammock() : H(test::buildSimpleHammockLoop()) {
    PA = std::make_unique<cfg::ProgramAnalysis>(*H.Prog);
    const std::vector<int64_t> Image = test::alternatingImage(4096, 3);
    Edges = profile::collectProfile(*H.Prog, *PA, Image).Edges;
  }

  Status lint(DiagnosticSink &Sink, const core::DivergeMap *Map = nullptr) {
    analyze::AnalysisInput Input;
    Input.P = H.Prog.get();
    Input.PA = PA.get();
    Input.Profile = &Edges;
    Input.Annotations = Map;
    return analyze::lintAll(Input, &Sink);
  }
};

} // namespace

TEST(ProfileSanityTest, RealProfileIsClean) {
  ProfiledHammock P;
  DiagnosticSink Sink;
  EXPECT_TRUE(P.lint(Sink).ok()) << Sink.renderText();
  EXPECT_FALSE(Sink.has(DiagCode::ProfFlowNotConserved));
  EXPECT_FALSE(Sink.has(DiagCode::ProfBranchTotalsMismatch));
  EXPECT_FALSE(Sink.has(DiagCode::ProfUnknownAddr));
}

TEST(ProfileSanityTest, FlowNotConserved) {
  ProfiledHammock P;
  const uint32_t MergeStart = P.H.Merge->getStartAddr();
  P.Edges.setBlockExecCount(MergeStart,
                            P.Edges.blockExecCount(MergeStart) + 5000);
  DiagnosticSink Sink;
  EXPECT_FALSE(P.lint(Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::ProfFlowNotConserved)) << Sink.renderText();
}

TEST(ProfileSanityTest, BranchTotalsMismatch) {
  ProfiledHammock P;
  cfg::BranchCounts Counts = P.Edges.branchCounts(P.H.BranchAddr);
  Counts.Taken += 5000;
  P.Edges.setBranchCounts(P.H.BranchAddr, Counts);
  DiagnosticSink Sink;
  EXPECT_FALSE(P.lint(Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::ProfBranchTotalsMismatch))
      << Sink.renderText();
}

TEST(ProfileSanityTest, UnknownProfiledAddr) {
  ProfiledHammock P;
  P.Edges.setBlockExecCount(P.H.Merge->getStartAddr() + 1, 10);
  DiagnosticSink Sink;
  EXPECT_FALSE(P.lint(Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::ProfUnknownAddr)) << Sink.renderText();
}

TEST(ProfileSanityTest, AnnotatedBranchNeverExecutedIsWarning) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  const cfg::EdgeProfile Empty; // Nothing ever executed.
  core::DivergeMap Map;
  Map.add(H.BranchAddr, hammockAnn(core::DivergeKind::SimpleHammock,
                                   H.Merge->getStartAddr(), 1.0));
  DiagnosticSink Sink;
  EXPECT_TRUE(lintWith(*H.Prog, &Map, &Empty, Sink).ok())
      << Sink.renderText();
  EXPECT_TRUE(Sink.has(DiagCode::ProfAnnotatedNeverExecuted))
      << Sink.renderText();
}

//===----------------------------------------------------------------------===//
// AnalysisManager / Status semantics
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, ErrorStatusCarriesOriginAndFirstFinding) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  H.Merge->instructions().front().Dst = ir::RegZero;
  const Status S = analyze::lintProgram(*H.Prog);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.toString().find("analyze"), std::string::npos) << S.toString();
  EXPECT_NE(S.toString().find("IR06"), std::string::npos) << S.toString();
}

TEST(AnalysisManagerTest, IrLintErrorsShortCircuitLaterPasses) {
  ir::Program P("unfinalized");
  ir::Function *F = P.createFunction("main");
  ir::IRBuilder B(P);
  B.setInsertPoint(F->createBlock("entry"));
  B.halt();
  // No finalize(): IRLint must stop the pipeline before the annotation
  // passes touch (and assert on) the unfinalized program.
  core::DivergeMap Map;
  Map.add(999999, core::DivergeAnnotation());
  analyze::AnalysisInput Input;
  Input.P = &P;
  Input.Annotations = &Map;
  DiagnosticSink Sink;
  EXPECT_FALSE(analyze::lintAll(Input, &Sink).ok());
  EXPECT_TRUE(Sink.has(DiagCode::IrNotFinalized));
  EXPECT_FALSE(Sink.has(DiagCode::AnnBranchAddrOutOfRange));
}

TEST(AnalysisManagerTest, WarningsDoNotGate) {
  ir::Program P("warn-only");
  ir::Function *F = P.createFunction("main");
  ir::IRBuilder B(P);
  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *Orphan = F->createBlock("orphan");
  ir::BasicBlock *Exit = F->createBlock("exit");
  B.setInsertPoint(Entry);
  B.loadImm(1, 7);
  B.jmp(Exit);
  B.setInsertPoint(Orphan);
  B.addI(2, 1, 1);
  B.jmp(Exit);
  B.setInsertPoint(Exit);
  B.halt();
  P.finalize();
  DiagnosticSink Sink;
  EXPECT_TRUE(analyze::lintProgram(P, &Sink).ok());
  EXPECT_GE(Sink.warningCount(), 1u);
  EXPECT_EQ(Sink.errorCount(), 0u);
}

/// lintProgram (which replaced the removed ir::Verifier shim) must report
/// error-severity findings as a non-ok Status with rendered IR codes.
TEST(AnalysisManagerTest, LintProgramReportsErrors) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  H.Merge->instructions().front().Dst = ir::RegZero;
  analyze::DiagnosticSink Sink;
  EXPECT_FALSE(analyze::lintProgram(*H.Prog, &Sink).ok());
  ASSERT_GE(Sink.errorCount(), 1u);
  EXPECT_NE(Sink.renderText().find("IR06"), std::string::npos)
      << Sink.renderText();
}

//===----------------------------------------------------------------------===//
// Golden rendering
//===----------------------------------------------------------------------===//

namespace {

/// A deterministic corrupt scenario exercising one finding per pass tier:
/// an out-of-range annotation (ANN01), a mid-instruction CFM (ANN04), an
/// exact CFM that does not post-dominate (CFM01), and an out-of-range merge
/// probability (CFM08).
DiagnosticSink lintCorruptScenario() {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  core::DivergeMap Map;
  Map.add(999999, hammockAnn(core::DivergeKind::SimpleHammock, 0, 1.0));
  Map.add(H.BranchAddr, [&] {
    core::DivergeAnnotation Ann = hammockAnn(
        core::DivergeKind::NestedHammock, H.TakenSide->getStartAddr(), 1.0);
    Ann.Cfms.push_back(
        core::CfmPoint::atAddress(H.Merge->getStartAddr() + 1, 1.5));
    return Ann;
  }());
  DiagnosticSink Sink;
  lintWith(*H.Prog, &Map, nullptr, Sink);
  return Sink;
}

} // namespace

TEST(GoldenDiagnosticsTest, TextRendering) {
  compareToGolden("analyze_diagnostics.txt", lintCorruptScenario().renderText());
}

TEST(GoldenDiagnosticsTest, MachineRendering) {
  compareToGolden("analyze_diagnostics.tsv",
                  lintCorruptScenario().renderMachine());
}
