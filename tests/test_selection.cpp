//===- tests/test_selection.cpp - Diverge-branch selection tests --------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Covers HammockAnalysis classification, chain reduction, the selection
// orchestrator (Alg-exact, Alg-freq, short hammocks, return CFMs, loop
// heuristics, cost mode), and the simple baseline selectors.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "core/DivergeSelector.h"
#include "core/HammockAnalysis.h"
#include "core/LoopSelect.h"
#include "core/SimpleSelectors.h"
#include "profile/Profiler.h"
#include "support/RNG.h"
#include "workloads/SpecSuite.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::core;

namespace {

/// Runs a real profiling pass over the handles' program with the given
/// memory image.
profile::ProfileData profileWith(const test::ProgramHandles &H,
                                 const cfg::ProgramAnalysis &PA,
                                 const std::vector<int64_t> &Image) {
  return profile::collectProfile(*H.Prog, PA, Image);
}

std::vector<int64_t> randomImage(size_t Words, double P, uint64_t Seed = 11) {
  std::vector<int64_t> Image(Words, 0);
  RNG Rng(Seed);
  for (auto &W : Image)
    W = Rng.nextBool(P);
  return Image;
}

} // namespace

TEST(HammockAnalysisTest, ClassifiesSimpleHammock) {
  auto H = test::buildSimpleHammockLoop();
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profileWith(H, PA, randomImage(8192, 0.5));
  SelectionConfig Config;
  const BranchCandidate Cand =
      analyzeBranch(PA, Prof.Edges, H.BranchAddr, Config, Config.MaxInstr,
                    Config.MaxCondBr);
  EXPECT_EQ(Cand.StructKind, DivergeKind::SimpleHammock);
  EXPECT_TRUE(Cand.AllPathsReachIposdom);
  EXPECT_EQ(Cand.Iposdom, H.Merge);
  EXPECT_NEAR(Cand.TakenProb, 0.5, 0.05);
}

TEST(HammockAnalysisTest, ClassifiesFreqHammock) {
  auto H = test::buildFreqHammockLoop(/*RareLen=*/60, /*Iters=*/2000);
  cfg::ProgramAnalysis PA(*H.Prog);
  // Hammock 50/50, rare path ~5%.
  std::vector<int64_t> Image = randomImage(8192, 0.5);
  RNG Rng(5);
  for (size_t I = 4096; I < 8192; ++I)
    Image[I] = Rng.nextBool(0.05);
  auto Prof = profileWith(H, PA, Image);
  SelectionConfig Config;
  const BranchCandidate Cand =
      analyzeBranch(PA, Prof.Edges, H.BranchAddr, Config, Config.MaxInstr,
                    Config.MaxCondBr);
  EXPECT_EQ(Cand.StructKind, DivergeKind::FreqHammock);
  EXPECT_FALSE(Cand.AllPathsReachIposdom);
  ASSERT_FALSE(Cand.Cfms.empty());
  // The best candidate is the frequent merge with ~95% merge probability.
  EXPECT_EQ(Cand.Cfms[0].Block, H.Merge);
  EXPECT_GT(Cand.Cfms[0].MergeProb, 0.85);
}

TEST(HammockAnalysisTest, ChainReductionPrefersFrequentMerge) {
  auto H = test::buildFreqHammockLoop(/*RareLen=*/30, /*Iters=*/2000);
  cfg::ProgramAnalysis PA(*H.Prog);
  std::vector<int64_t> Image = randomImage(8192, 0.5);
  RNG Rng(5);
  for (size_t I = 4096; I < 8192; ++I)
    Image[I] = Rng.nextBool(0.05);
  auto Prof = profileWith(H, PA, Image);
  SelectionConfig Config;
  // Wide scope so End is reachable on all paths: Merge and End chain.
  const BranchCandidate Cand =
      analyzeBranch(PA, Prof.Edges, H.BranchAddr, Config,
                    Config.CostScopeMaxInstr, Config.CostScopeMaxCondBr);
  // End postdominates; Merge must win the chain (higher first-merge prob)
  // and End must be suppressed.
  bool HasMerge = false, HasEnd = false;
  for (const CfmCandidate &C : Cand.Cfms) {
    HasMerge |= (C.Block == H.Merge);
    HasEnd |= (C.Block == H.End);
  }
  EXPECT_TRUE(HasMerge);
  EXPECT_FALSE(HasEnd);
}

TEST(HammockAnalysisTest, ReturnCfmCandidate) {
  auto H = test::buildRetFuncLoop();
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profileWith(H, PA, randomImage(8192, 0.5));
  SelectionConfig Config;
  const BranchCandidate Cand =
      analyzeBranch(PA, Prof.Edges, H.BranchAddr, Config, Config.MaxInstr,
                    Config.MaxCondBr);
  EXPECT_EQ(Cand.Iposdom, nullptr);
  ASSERT_FALSE(Cand.Cfms.empty());
  EXPECT_TRUE(Cand.Cfms[0].IsReturn);
  EXPECT_GT(Cand.Cfms[0].MergeProb, 0.95);
}

TEST(SelectorTest, ExactSelectsSimpleHammock) {
  auto H = test::buildSimpleHammockLoop();
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profileWith(H, PA, randomImage(8192, 0.5));
  SelectionConfig Config;
  SelectionStats Stats;
  const DivergeMap Map = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::exactOnly(), &Stats);
  ASSERT_TRUE(Map.contains(H.BranchAddr));
  const DivergeAnnotation &Ann = *Map.find(H.BranchAddr);
  EXPECT_EQ(Ann.Kind, DivergeKind::SimpleHammock);
  ASSERT_EQ(Ann.Cfms.size(), 1u);
  EXPECT_EQ(Ann.Cfms[0].Addr, H.Merge->getStartAddr());
  EXPECT_EQ(Stats.SelectedExact, 1u);
}

TEST(SelectorTest, MaxInstrRejectsBigHammock) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/120);
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profileWith(H, PA, randomImage(8192, 0.5));
  SelectionConfig Config; // MaxInstr = 50
  const DivergeMap Map = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::exactFreq());
  EXPECT_FALSE(Map.contains(H.BranchAddr));
}

TEST(SelectorTest, FreqRequiresFreqFeature) {
  auto H = test::buildFreqHammockLoop(/*RareLen=*/60, /*Iters=*/2000);
  cfg::ProgramAnalysis PA(*H.Prog);
  std::vector<int64_t> Image = randomImage(8192, 0.5);
  RNG Rng(5);
  for (size_t I = 4096; I < 8192; ++I)
    Image[I] = Rng.nextBool(0.05);
  auto Prof = profileWith(H, PA, Image);
  SelectionConfig Config;
  const DivergeMap ExactMap = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::exactOnly());
  EXPECT_FALSE(ExactMap.contains(H.BranchAddr));
  const DivergeMap FreqMap = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::exactFreq());
  ASSERT_TRUE(FreqMap.contains(H.BranchAddr));
  EXPECT_EQ(FreqMap.find(H.BranchAddr)->Kind, DivergeKind::FreqHammock);
  EXPECT_EQ(FreqMap.find(H.BranchAddr)->Cfms[0].Addr,
            H.Merge->getStartAddr());
}

TEST(SelectorTest, MinMergeProbFilters) {
  auto H = test::buildFreqHammockLoop(/*RareLen=*/60, /*Iters=*/2000);
  cfg::ProgramAnalysis PA(*H.Prog);
  std::vector<int64_t> Image = randomImage(8192, 0.5);
  RNG Rng(5);
  for (size_t I = 4096; I < 8192; ++I)
    Image[I] = Rng.nextBool(0.30); // rare path not so rare: merge ~49%
  auto Prof = profileWith(H, PA, Image);
  SelectionConfig Config;
  const DivergeMap Loose = selectDivergeBranches(
      PA, Prof, Config.withMinMergeProb(0.01), SelectionFeatures::exactFreq());
  EXPECT_TRUE(Loose.contains(H.BranchAddr));
  const DivergeMap Strict = selectDivergeBranches(
      PA, Prof, Config.withMinMergeProb(0.90), SelectionFeatures::exactFreq());
  EXPECT_FALSE(Strict.contains(H.BranchAddr));
}

TEST(SelectorTest, ShortHammockAlwaysPredicate) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/2);
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profileWith(H, PA, randomImage(8192, 0.5)); // ~45% mispredict
  SelectionConfig Config;
  SelectionStats Stats;
  const DivergeMap Map = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::exactFreqShort(), &Stats);
  ASSERT_TRUE(Map.contains(H.BranchAddr));
  EXPECT_TRUE(Map.find(H.BranchAddr)->AlwaysPredicate);
  EXPECT_EQ(Stats.SelectedShort, 1u);

  // Without the short feature the same branch is selected but not
  // always-predicated.
  const DivergeMap Plain = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::exactFreq());
  ASSERT_TRUE(Plain.contains(H.BranchAddr));
  EXPECT_FALSE(Plain.find(H.BranchAddr)->AlwaysPredicate);
}

TEST(SelectorTest, ShortHammockNeedsMisprediction) {
  // Long run so cold-start mispredictions are amortized below 5%.
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/2, /*Iters=*/1024);
  cfg::ProgramAnalysis PA(*H.Prog);
  // Highly predictable branch: not a short-hammock candidate (<5% misp).
  auto Prof = profileWith(H, PA, std::vector<int64_t>(8192, 0));
  SelectionConfig Config;
  const DivergeMap Map = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::exactFreqShort());
  if (Map.contains(H.BranchAddr)) {
    EXPECT_FALSE(Map.find(H.BranchAddr)->AlwaysPredicate);
  }
}

TEST(SelectorTest, ReturnCfmSelection) {
  auto H = test::buildRetFuncLoop();
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profileWith(H, PA, randomImage(8192, 0.5));
  SelectionConfig Config;
  SelectionStats Stats;
  const DivergeMap Map = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::exactFreqShortRet(), &Stats);
  ASSERT_TRUE(Map.contains(H.BranchAddr));
  const DivergeAnnotation &Ann = *Map.find(H.BranchAddr);
  ASSERT_EQ(Ann.Cfms.size(), 1u);
  EXPECT_EQ(Ann.Cfms[0].PointKind, CfmPoint::Kind::Return);
  EXPECT_EQ(Stats.SelectedRet, 1u);

  // Without the return-CFM feature, the branch is not selected.
  const DivergeMap NoRet = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::exactFreqShort());
  EXPECT_FALSE(NoRet.contains(H.BranchAddr));
}

TEST(SelectorTest, LoopHeuristicsSelectSmallLoop) {
  auto H = test::buildDataLoop(/*BodyLen=*/4);
  cfg::ProgramAnalysis PA(*H.Prog);
  // Trip counts 1..6: small loop, few iterations -> selected.
  std::vector<int64_t> Image(8192, 0);
  RNG Rng(3);
  for (auto &W : Image)
    W = Rng.nextInRange(1, 6);
  auto Prof = profileWith(H, PA, Image);
  SelectionConfig Config;
  SelectionStats Stats;
  const DivergeMap Map = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::allBestHeur(), &Stats);
  ASSERT_TRUE(Map.contains(H.BranchAddr));
  const DivergeAnnotation &Ann = *Map.find(H.BranchAddr);
  EXPECT_EQ(Ann.Kind, DivergeKind::Loop);
  EXPECT_TRUE(Ann.LoopStayTaken);
  EXPECT_EQ(Ann.LoopHeaderAddr, H.BranchBlock->getStartAddr());
  EXPECT_GT(Ann.LoopSelectUops, 0u);
  ASSERT_EQ(Ann.Cfms.size(), 1u);
  EXPECT_EQ(Ann.Cfms[0].Addr, H.Merge->getStartAddr());
  EXPECT_EQ(Stats.SelectedLoop, 1u);
}

TEST(SelectorTest, LoopHeuristicsRejectManyIterations) {
  auto H = test::buildDataLoop(/*BodyLen=*/4);
  cfg::ProgramAnalysis PA(*H.Prog);
  std::vector<int64_t> Image(8192, 40); // 40 iterations > LOOP_ITER=15
  auto Prof = profileWith(H, PA, Image);
  SelectionConfig Config;
  const DivergeMap Map = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::allBestHeur());
  EXPECT_FALSE(Map.contains(H.BranchAddr));

  DivergeAnnotation Ann;
  const LoopDecision Decision =
      evaluateLoopBranch(PA, Prof, H.BranchAddr, Config, Ann);
  EXPECT_TRUE(Decision.RejectedIter);
  EXPECT_TRUE(Decision.RejectedDynamic); // 6*40 = 240 > 80
  EXPECT_FALSE(Decision.RejectedStatic);
  EXPECT_FALSE(Decision.Selected);
}

TEST(SelectorTest, LoopHeuristicsRejectBigBody) {
  auto H = test::buildDataLoop(/*BodyLen=*/40);
  cfg::ProgramAnalysis PA(*H.Prog);
  std::vector<int64_t> Image(8192, 2);
  auto Prof = profileWith(H, PA, Image);
  SelectionConfig Config;
  DivergeAnnotation Ann;
  const LoopDecision Decision =
      evaluateLoopBranch(PA, Prof, H.BranchAddr, Config, Ann);
  EXPECT_TRUE(Decision.RejectedStatic); // 42 > 30
  EXPECT_FALSE(Decision.Selected);
}

TEST(SelectorTest, LoopBranchNotHammockCandidate) {
  auto H = test::buildDataLoop();
  cfg::ProgramAnalysis PA(*H.Prog);
  EXPECT_TRUE(isLoopExitBranch(PA, H.BranchAddr));
  std::vector<int64_t> Image(8192, 3);
  auto Prof = profileWith(H, PA, Image);
  SelectionConfig Config;
  // Loops disabled: the exit branch must not be selected as any hammock.
  const DivergeMap Map = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::exactFreqShortRet());
  EXPECT_FALSE(Map.contains(H.BranchAddr));
}

TEST(SelectorTest, CostModeSelectsProfitableOnly) {
  auto Small = test::buildSimpleHammockLoop(/*BodyLen=*/4);
  cfg::ProgramAnalysis SmallPA(*Small.Prog);
  auto SmallProf = profileWith(Small, SmallPA, randomImage(8192, 0.5));
  SelectionConfig Config;
  const DivergeMap SmallMap = selectDivergeBranches(
      SmallPA, SmallProf, Config, SelectionFeatures::costEdge());
  EXPECT_TRUE(SmallMap.contains(Small.BranchAddr));

  auto Big = test::buildSimpleHammockLoop(/*BodyLen=*/140);
  cfg::ProgramAnalysis BigPA(*Big.Prog);
  auto BigProf = profileWith(Big, BigPA, randomImage(8192, 0.5));
  SelectionStats Stats;
  const DivergeMap BigMap = selectDivergeBranches(
      BigPA, BigProf, Config, SelectionFeatures::costEdge(), &Stats);
  EXPECT_FALSE(BigMap.contains(Big.BranchAddr));
  EXPECT_GT(Stats.RejectedByCost, 0u);
}

TEST(SelectorTest, CostModePrefersApproximateCfmOfFreqHammock) {
  auto H = test::buildFreqHammockLoop(/*RareLen=*/120, /*Iters=*/2000);
  cfg::ProgramAnalysis PA(*H.Prog);
  std::vector<int64_t> Image = randomImage(8192, 0.5);
  RNG Rng(5);
  for (size_t I = 4096; I < 8192; ++I)
    Image[I] = Rng.nextBool(0.03);
  auto Prof = profileWith(H, PA, Image);
  SelectionConfig Config;
  const DivergeMap Map = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::costEdge());
  ASSERT_TRUE(Map.contains(H.BranchAddr));
  // The cheap CFM is the frequent merge, not the distant IPOSDOM.
  EXPECT_EQ(Map.find(H.BranchAddr)->Cfms[0].Addr, H.Merge->getStartAddr());
}

TEST(SimpleSelectorsTest, EveryBranchSelectsAllExecuted) {
  auto H = test::buildFreqHammockLoop();
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profileWith(H, PA, randomImage(8192, 0.5));
  const DivergeMap Map = selectEveryBranch(PA, Prof);
  // All three conditional branches executed.
  EXPECT_EQ(Map.size(), 3u);
  // Footnote 10: IPOSDOM becomes the CFM.
  ASSERT_TRUE(Map.contains(H.BranchAddr));
  EXPECT_EQ(Map.find(H.BranchAddr)->Cfms[0].Addr, H.End->getStartAddr());
}

TEST(SimpleSelectorsTest, Random50IsDeterministicAndPartial) {
  workloads::Workload W = workloads::buildByName("gcc");
  cfg::ProgramAnalysis PA(*W.Prog);
  auto Prof = profile::collectProfile(
      *W.Prog, PA, W.buildImage(workloads::InputSetKind::Run));
  const DivergeMap A = selectRandom50(PA, Prof, 99);
  const DivergeMap B = selectRandom50(PA, Prof, 99);
  EXPECT_EQ(A.size(), B.size());
  const DivergeMap All = selectEveryBranch(PA, Prof);
  EXPECT_LT(A.size(), All.size());
  EXPECT_GT(A.size(), 0u);
}

TEST(SimpleSelectorsTest, HighBPFiltersByMispRate) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/4, /*Iters=*/1024);
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profileWith(H, PA, std::vector<int64_t>(8192, 0)); // easy
  const DivergeMap Map = selectHighBP(PA, Prof, 0.05);
  EXPECT_FALSE(Map.contains(H.BranchAddr));
  auto HardProf = profileWith(H, PA, randomImage(8192, 0.5));
  const DivergeMap HardMap = selectHighBP(PA, HardProf, 0.05);
  EXPECT_TRUE(HardMap.contains(H.BranchAddr));
}

TEST(SimpleSelectorsTest, ImmediateRequiresIposdom) {
  auto H = test::buildRetFuncLoop();
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profileWith(H, PA, randomImage(8192, 0.5));
  const DivergeMap Map = selectImmediate(PA, Prof);
  // The callee's branch has no IPOSDOM (different returns) -> excluded.
  EXPECT_FALSE(Map.contains(H.BranchAddr));
  // Every-br still selects it, with no CFM (dual-path mode).
  const DivergeMap All = selectEveryBranch(PA, Prof);
  ASSERT_TRUE(All.contains(H.BranchAddr));
  EXPECT_EQ(All.find(H.BranchAddr)->Kind, DivergeKind::NoCfm);
  EXPECT_TRUE(All.find(H.BranchAddr)->Cfms.empty());
}

TEST(SimpleSelectorsTest, IfElseOnlySimpleHammocks) {
  auto Simple = test::buildSimpleHammockLoop();
  cfg::ProgramAnalysis SimplePA(*Simple.Prog);
  auto SimpleProf = profileWith(Simple, SimplePA, randomImage(8192, 0.5));
  SelectionConfig Config;
  const DivergeMap SimpleMap = selectIfElse(SimplePA, SimpleProf, Config);
  EXPECT_TRUE(SimpleMap.contains(Simple.BranchAddr));

  auto Freq = test::buildFreqHammockLoop();
  cfg::ProgramAnalysis FreqPA(*Freq.Prog);
  std::vector<int64_t> Image = randomImage(8192, 0.5);
  RNG Rng(5);
  for (size_t I = 4096; I < 8192; ++I)
    Image[I] = Rng.nextBool(0.05);
  auto FreqProf = profileWith(Freq, FreqPA, Image);
  const DivergeMap FreqMap = selectIfElse(FreqPA, FreqProf, Config);
  EXPECT_FALSE(FreqMap.contains(Freq.BranchAddr));
}

TEST(SelectorTest, DeterministicSelection) {
  workloads::Workload W = workloads::buildByName("twolf");
  cfg::ProgramAnalysis PA(*W.Prog);
  auto Prof = profile::collectProfile(
      *W.Prog, PA, W.buildImage(workloads::InputSetKind::Run));
  SelectionConfig Config;
  const DivergeMap A = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::allBestHeur());
  const DivergeMap B = selectDivergeBranches(
      PA, Prof, Config, SelectionFeatures::allBestHeur());
  EXPECT_EQ(A.sortedAddrs(), B.sortedAddrs());
}
