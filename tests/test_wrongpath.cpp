//===- tests/test_wrongpath.cpp - Wrong-path walker unit tests ----------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Direct unit tests for sim::walkWrongPath / sim::walkExtraIterations, the
// speculative-fetch walkers behind dpred-mode's wrong-path cost estimates.
// A fixed-direction stub predictor keeps the expectations exact: these
// tests pin the walker's control flow, not any real predictor's training
// dynamics.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "ir/IRBuilder.h"
#include "sim/WrongPathWalker.h"
#include "uarch/BranchPredictor.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

using namespace dmp;
using namespace dmp::ir;

namespace {

/// Deterministic per-address directions, ignoring history and training.
class FixedPredictor final : public uarch::BranchPredictor {
public:
  bool DefaultTaken = false;
  std::map<uint32_t, bool> Directions;

  bool predict(uint32_t Addr) const override { return directionFor(Addr); }
  bool predictWithHistory(uint32_t Addr, uint64_t) const override {
    return directionFor(Addr);
  }
  void update(uint32_t, bool) override {}
  uint64_t history() const override { return 0; }
  void reset() override {}

private:
  bool directionFor(uint32_t Addr) const {
    const auto It = Directions.find(Addr);
    return It == Directions.end() ? DefaultTaken : It->second;
  }
};

/// Hammock inside a counted loop, with handles on the pieces the walker
/// cares about:
///
///   entry -> head:{ld r3, br r3!=0 -> taken}
///   fall:{r4+=1, r5+=2, jmp merge} ; taken:{r6+=1} -> merge
///   merge:{r1+=1, br r1<r2 -> head} ; exit: halt
struct HammockProgram {
  std::unique_ptr<Program> Prog;
  uint32_t HeadAddr = 0;   ///< First instruction of the head block.
  uint32_t BranchAddr = 0; ///< The hammock branch.
  uint32_t FallAddr = 0;
  uint32_t TakenAddr = 0;
  uint32_t MergeAddr = 0;
  uint32_t LoopBranchAddr = 0;
};

HammockProgram buildHammock() {
  HammockProgram H;
  H.Prog = std::make_unique<Program>("wrongpath-hammock");
  Function *F = H.Prog->createFunction("main");
  IRBuilder B(*H.Prog);

  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Head = F->createBlock("head");
  BasicBlock *Fall = F->createBlock("fall");
  BasicBlock *Taken = F->createBlock("taken");
  BasicBlock *Merge = F->createBlock("merge");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertPoint(Entry);
  B.loadImm(1, 0);
  B.loadImm(2, 8);

  B.setInsertPoint(Head);
  B.load(3, 1, 0);
  B.condBr(BrCond::Ne, 3, 0, Taken);

  B.setInsertPoint(Fall);
  B.addI(4, 4, 1);
  B.addI(5, 5, 2);
  B.jmp(Merge);

  B.setInsertPoint(Taken);
  B.addI(6, 6, 1);
  // Falls through to Merge.

  B.setInsertPoint(Merge);
  B.addI(1, 1, 1);
  B.condBr(BrCond::Lt, 1, 2, Head);

  B.setInsertPoint(Exit);
  B.halt();

  H.Prog->finalize();
  test::requireClean(*H.Prog);
  H.HeadAddr = Head->getStartAddr();
  H.BranchAddr = Head->instructions().back().Addr;
  H.FallAddr = Fall->getStartAddr();
  H.TakenAddr = Taken->getStartAddr();
  H.MergeAddr = Merge->getStartAddr();
  H.LoopBranchAddr = Merge->instructions().back().Addr;
  return H;
}

core::DivergeAnnotation cfmAt(uint32_t Addr) {
  core::DivergeAnnotation Annotation;
  Annotation.Kind = core::DivergeKind::SimpleHammock;
  Annotation.Cfms.push_back(core::CfmPoint::atAddress(Addr, 1.0));
  return Annotation;
}

core::DivergeAnnotation returnCfm() {
  core::DivergeAnnotation Annotation;
  Annotation.Kind = core::DivergeKind::SimpleHammock;
  Annotation.Cfms.push_back(core::CfmPoint::atReturn(1.0));
  return Annotation;
}

} // namespace

TEST(WrongPathWalkerTest, StopsAtCfmPoint) {
  const HammockProgram H = buildHammock();
  FixedPredictor Predictor;
  const sim::WrongPathResult R = sim::walkWrongPath(
      *H.Prog, Predictor, cfmAt(H.MergeAddr), H.FallAddr, /*MaxInstrs=*/100);
  EXPECT_TRUE(R.ReachedCfm);
  EXPECT_EQ(R.ReachedCfmAddr, H.MergeAddr);
  // addI r4, addI r5, jmp — the CFM instruction itself is not fetched.
  EXPECT_EQ(R.InstrsFetched, 3u);
  EXPECT_EQ(R.WrittenRegs.size(), 2u);
  EXPECT_TRUE(R.WrittenRegs.count(4));
  EXPECT_TRUE(R.WrittenRegs.count(5));
}

TEST(WrongPathWalkerTest, FallthroughSideReachesCfmByFallthrough) {
  const HammockProgram H = buildHammock();
  FixedPredictor Predictor;
  const sim::WrongPathResult R = sim::walkWrongPath(
      *H.Prog, Predictor, cfmAt(H.MergeAddr), H.TakenAddr, /*MaxInstrs=*/100);
  EXPECT_TRUE(R.ReachedCfm);
  EXPECT_EQ(R.InstrsFetched, 1u);
  EXPECT_TRUE(R.WrittenRegs.count(6));
}

TEST(WrongPathWalkerTest, BudgetExhaustionStopsShortOfCfm) {
  const HammockProgram H = buildHammock();
  FixedPredictor Predictor;
  const sim::WrongPathResult R = sim::walkWrongPath(
      *H.Prog, Predictor, cfmAt(H.MergeAddr), H.FallAddr, /*MaxInstrs=*/2);
  EXPECT_FALSE(R.ReachedCfm);
  EXPECT_EQ(R.InstrsFetched, 2u);
}

TEST(WrongPathWalkerTest, FollowsPredictedDirectionAtBranches) {
  const HammockProgram H = buildHammock();

  FixedPredictor TakenPred;
  TakenPred.Directions[H.BranchAddr] = true;
  const sim::WrongPathResult ViaTaken = sim::walkWrongPath(
      *H.Prog, TakenPred, cfmAt(H.MergeAddr), H.HeadAddr, /*MaxInstrs=*/100);
  EXPECT_TRUE(ViaTaken.ReachedCfm);
  // load, condBr, taken-side addI r6.
  EXPECT_EQ(ViaTaken.InstrsFetched, 3u);
  EXPECT_TRUE(ViaTaken.WrittenRegs.count(6));
  EXPECT_FALSE(ViaTaken.WrittenRegs.count(4));

  FixedPredictor FallPred;
  FallPred.Directions[H.BranchAddr] = false;
  const sim::WrongPathResult ViaFall = sim::walkWrongPath(
      *H.Prog, FallPred, cfmAt(H.MergeAddr), H.HeadAddr, /*MaxInstrs=*/100);
  EXPECT_TRUE(ViaFall.ReachedCfm);
  // load, condBr, fall-side addI r4, addI r5, jmp.
  EXPECT_EQ(ViaFall.InstrsFetched, 5u);
  EXPECT_TRUE(ViaFall.WrittenRegs.count(4));
  EXPECT_FALSE(ViaFall.WrittenRegs.count(6));
}

TEST(WrongPathWalkerTest, ReturnCfmStopsAtTopLevelReturn) {
  // Walk a function body with a nested call: the nested ret must pop back
  // via the shadow stack; only the walk-level ret is the CFM.
  auto Prog = std::make_unique<Program>("wrongpath-retcfm");
  Function *Outer = Prog->createFunction("outer");
  Function *Inner = Prog->createFunction("inner");
  IRBuilder B(*Prog);

  BasicBlock *OuterBody = Outer->createBlock("body");
  B.setInsertPoint(OuterBody);
  B.addI(9, 9, 1);
  B.call(Inner);
  B.addI(10, 10, 1);
  B.ret();

  BasicBlock *InnerBody = Inner->createBlock("body");
  B.setInsertPoint(InnerBody);
  B.addI(11, 11, 1);
  B.ret();

  Prog->finalize();

  FixedPredictor Predictor;
  const sim::WrongPathResult R =
      sim::walkWrongPath(*Prog, Predictor, returnCfm(),
                         OuterBody->getStartAddr(), /*MaxInstrs=*/100);
  EXPECT_TRUE(R.ReachedCfm);
  // addI r9, call, addI r11, ret (nested), addI r10, ret (top level).
  EXPECT_EQ(R.InstrsFetched, 6u);
  EXPECT_TRUE(R.WrittenRegs.count(9));
  EXPECT_TRUE(R.WrittenRegs.count(10));
  EXPECT_TRUE(R.WrittenRegs.count(11));
}

TEST(WrongPathWalkerTest, HaltEndsWalkWithoutCfm) {
  const HammockProgram H = buildHammock();
  FixedPredictor Predictor; // Loop branch predicted not-taken: exit.
  const sim::WrongPathResult R = sim::walkWrongPath(
      *H.Prog, Predictor, cfmAt(H.FallAddr), H.TakenAddr, /*MaxInstrs=*/1000);
  // taken-side addI, merge addI, loop br (not taken), halt — never reaches
  // the fall block.
  EXPECT_FALSE(R.ReachedCfm);
  EXPECT_EQ(R.InstrsFetched, 4u);
}

TEST(ExtraIterationsTest, StayPredictionRunsToIterationCap) {
  const HammockProgram H = buildHammock();
  FixedPredictor Predictor;
  Predictor.Directions[H.LoopBranchAddr] = true; // Stay in the loop.
  Predictor.Directions[H.BranchAddr] = false;    // Hammock via fall side.
  const sim::ExtraIterResult R = sim::walkExtraIterations(
      *H.Prog, Predictor, /*StayTargetAddr=*/H.HeadAddr,
      /*LoopBranchAddr=*/H.LoopBranchAddr, /*StayTaken=*/true,
      /*MaxIters=*/5, /*MaxInstrs=*/1000);
  EXPECT_FALSE(R.PredictedExit);
  EXPECT_EQ(R.Iterations, 5u);
  // Per iteration: ld, condBr, addI r4, addI r5, jmp, addI r1, loop br.
  EXPECT_EQ(R.InstrsFetched, 35u);
  EXPECT_TRUE(R.WrittenRegs.count(1)); // Induction variable.
  EXPECT_TRUE(R.WrittenRegs.count(4));
}

TEST(ExtraIterationsTest, ExitPredictionStopsFirstIteration) {
  const HammockProgram H = buildHammock();
  FixedPredictor Predictor;
  Predictor.Directions[H.LoopBranchAddr] = false; // Predicts loop exit.
  Predictor.Directions[H.BranchAddr] = false;
  const sim::ExtraIterResult R = sim::walkExtraIterations(
      *H.Prog, Predictor, H.HeadAddr, H.LoopBranchAddr, /*StayTaken=*/true,
      /*MaxIters=*/5, /*MaxInstrs=*/1000);
  EXPECT_TRUE(R.PredictedExit);
  EXPECT_EQ(R.Iterations, 1u);
}

TEST(ExtraIterationsTest, InstructionBudgetBoundsTheWalk) {
  const HammockProgram H = buildHammock();
  FixedPredictor Predictor;
  Predictor.Directions[H.LoopBranchAddr] = true;
  Predictor.Directions[H.BranchAddr] = false;
  const sim::ExtraIterResult R = sim::walkExtraIterations(
      *H.Prog, Predictor, H.HeadAddr, H.LoopBranchAddr, /*StayTaken=*/true,
      /*MaxIters=*/1000, /*MaxInstrs=*/13);
  EXPECT_FALSE(R.PredictedExit);
  EXPECT_LE(R.InstrsFetched, 13u);
  EXPECT_LT(R.Iterations, 1000u);
}
