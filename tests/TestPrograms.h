//===- tests/TestPrograms.h - Shared program builders for tests ----*- C++ -*-===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hand-built programs reused across the unit tests: a simple
/// hammock, a nested hammock, a frequently-hammock, a counted loop, and a
/// function with two returns.  Each builder returns a finalized, verified
/// program.
///
//===----------------------------------------------------------------------===//

#ifndef DMP_TESTS_TESTPROGRAMS_H
#define DMP_TESTS_TESTPROGRAMS_H

#include "analyze/Analyze.h"
#include "ir/IRBuilder.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

namespace dmp::test {

/// Aborts with rendered diagnostics when \p P fails the IR lint: a broken
/// builder is a bug in the test itself, not something to EXPECT around.
inline void requireClean(const ir::Program &P) {
  analyze::DiagnosticSink Sink;
  if (analyze::lintProgram(P, &Sink).ok())
    return;
  std::fprintf(stderr, "test program %s failed lint:\n%s",
               P.getName().c_str(), Sink.renderText().c_str());
  std::abort();
}

/// Handles to interesting blocks of a built program.
struct ProgramHandles {
  std::unique_ptr<ir::Program> Prog;
  ir::BasicBlock *BranchBlock = nullptr; ///< Block ending in the hammock br.
  ir::BasicBlock *TakenSide = nullptr;
  ir::BasicBlock *FallSide = nullptr;
  ir::BasicBlock *Merge = nullptr;
  ir::BasicBlock *RareSide = nullptr;
  ir::BasicBlock *End = nullptr;
  uint32_t BranchAddr = 0; ///< Address of the hammock/loop branch.
};

/// if (mem[r1]) { r4 += body } else { r4 -= body }; merge; loop N times.
///
///   entry -> header:{ld, br} -> F -> M / T -> M ; M:{i++, br<N header} exit
inline ProgramHandles buildSimpleHammockLoop(unsigned BodyLen = 4,
                                             unsigned Iters = 64) {
  ProgramHandles H;
  H.Prog = std::make_unique<ir::Program>("simple-hammock");
  ir::Function *F = H.Prog->createFunction("main");
  ir::IRBuilder B(*H.Prog);

  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *Header = F->createBlock("header");
  ir::BasicBlock *Fall = F->createBlock("fall");
  ir::BasicBlock *Taken = F->createBlock("taken");
  ir::BasicBlock *Merge = F->createBlock("merge");
  ir::BasicBlock *Exit = F->createBlock("exit");

  B.setInsertPoint(Entry);
  B.loadImm(1, 0);                           // r1 = index
  B.loadImm(2, static_cast<int64_t>(Iters)); // r2 = bound
  B.loadImm(4, 0);

  B.setInsertPoint(Header);
  B.load(3, 1, 0); // r3 = mem[r1]
  B.condBr(ir::BrCond::Ne, 3, 0, Taken);

  B.setInsertPoint(Fall);
  B.emitFiller(BodyLen, 8);
  B.addI(4, 4, 1);
  B.jmp(Merge);

  B.setInsertPoint(Taken);
  B.emitFiller(BodyLen, 8);
  B.addI(4, 4, -1);
  // Falls through to Merge.

  B.setInsertPoint(Merge);
  B.addI(1, 1, 1);
  B.condBr(ir::BrCond::Lt, 1, 2, Header);

  B.setInsertPoint(Exit);
  B.halt();

  H.Prog->finalize();
  requireClean(*H.Prog);
  H.BranchBlock = Header;
  H.TakenSide = Taken;
  H.FallSide = Fall;
  H.Merge = Merge;
  H.BranchAddr = Header->instructions().back().Addr;
  return H;
}

/// A frequently-hammock: the taken side usually merges at M but rarely
/// takes a long path R that bypasses M to End.
///
///   header:{ld,br} -> F -> M ; T:{ld,br} -> T2 -> M / R(long) -> End
///   M:{merge filler} -> End ; End: loop back.
inline ProgramHandles buildFreqHammockLoop(unsigned RareLen = 60,
                                           unsigned Iters = 64) {
  ProgramHandles H;
  H.Prog = std::make_unique<ir::Program>("freq-hammock");
  ir::Function *F = H.Prog->createFunction("main");
  ir::IRBuilder B(*H.Prog);

  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *Header = F->createBlock("header");
  ir::BasicBlock *Fall = F->createBlock("fall");
  ir::BasicBlock *Taken = F->createBlock("taken");
  ir::BasicBlock *TakenBody = F->createBlock("taken2");
  ir::BasicBlock *Rare = F->createBlock("rare");
  ir::BasicBlock *Merge = F->createBlock("merge");
  ir::BasicBlock *End = F->createBlock("end");
  ir::BasicBlock *Exit = F->createBlock("exit");

  B.setInsertPoint(Entry);
  B.loadImm(1, 0);
  B.loadImm(2, static_cast<int64_t>(Iters));

  B.setInsertPoint(Header);
  B.load(3, 1, 0);
  B.condBr(ir::BrCond::Ne, 3, 0, Taken);

  B.setInsertPoint(Fall);
  B.emitFiller(4, 8);
  B.jmp(Merge);

  B.setInsertPoint(Taken);
  B.load(5, 1, 4096); // rare selector
  B.condBr(ir::BrCond::Ne, 5, 0, Rare);

  B.setInsertPoint(TakenBody);
  B.emitFiller(4, 8);
  B.jmp(Merge);

  B.setInsertPoint(Rare);
  B.emitFiller(RareLen, 8);
  B.jmp(End);

  B.setInsertPoint(Merge);
  B.emitFiller(6, 8);
  // Falls through to End.

  B.setInsertPoint(End);
  B.addI(1, 1, 1);
  B.condBr(ir::BrCond::Lt, 1, 2, Header);

  B.setInsertPoint(Exit);
  B.halt();

  H.Prog->finalize();
  requireClean(*H.Prog);
  H.BranchBlock = Header;
  H.TakenSide = Taken;
  H.FallSide = Fall;
  H.Merge = Merge;
  H.RareSide = Rare;
  H.End = End;
  H.BranchAddr = Header->instructions().back().Addr;
  return H;
}

/// do { body } while (++i < mem[n]); with trip counts from memory.
inline ProgramHandles buildDataLoop(unsigned BodyLen = 4,
                                    unsigned Outer = 64) {
  ProgramHandles H;
  H.Prog = std::make_unique<ir::Program>("data-loop");
  ir::Function *F = H.Prog->createFunction("main");
  ir::IRBuilder B(*H.Prog);

  ir::BasicBlock *Entry = F->createBlock("entry");
  ir::BasicBlock *OuterHdr = F->createBlock("outer");
  ir::BasicBlock *Loop = F->createBlock("loop");
  ir::BasicBlock *Post = F->createBlock("post");
  ir::BasicBlock *Exit = F->createBlock("exit");

  B.setInsertPoint(Entry);
  B.loadImm(1, 0);
  B.loadImm(2, static_cast<int64_t>(Outer));

  B.setInsertPoint(OuterHdr);
  B.load(7, 1, 0); // trip count
  B.loadImm(6, 0);

  B.setInsertPoint(Loop);
  B.emitFiller(BodyLen, 8);
  B.addI(6, 6, 1);
  B.condBr(ir::BrCond::Lt, 6, 7, Loop);

  B.setInsertPoint(Post);
  B.emitFiller(6, 8);
  B.addI(1, 1, 1);
  B.condBr(ir::BrCond::Lt, 1, 2, OuterHdr);

  B.setInsertPoint(Exit);
  B.halt();

  H.Prog->finalize();
  requireClean(*H.Prog);
  H.BranchBlock = Loop;
  H.Merge = Post;
  H.BranchAddr = Loop->instructions().back().Addr;
  return H;
}

/// main calls f once per iteration; f's two paths end in different returns.
inline ProgramHandles buildRetFuncLoop(unsigned Iters = 64) {
  ProgramHandles H;
  H.Prog = std::make_unique<ir::Program>("ret-func");
  ir::Function *Main = H.Prog->createFunction("main");
  ir::Function *Callee = H.Prog->createFunction("f");
  ir::IRBuilder B(*H.Prog);

  ir::BasicBlock *Entry = Main->createBlock("entry");
  ir::BasicBlock *Header = Main->createBlock("header");
  ir::BasicBlock *Exit = Main->createBlock("exit");

  ir::BasicBlock *FEntry = Callee->createBlock("fentry");
  ir::BasicBlock *FFall = Callee->createBlock("ffall");
  ir::BasicBlock *FTaken = Callee->createBlock("ftaken");

  B.setInsertPoint(Entry);
  B.loadImm(1, 0);
  B.loadImm(2, static_cast<int64_t>(Iters));

  B.setInsertPoint(Header);
  B.call(Callee);
  B.emitFiller(6, 8);
  B.addI(1, 1, 1);
  B.condBr(ir::BrCond::Lt, 1, 2, Header);

  B.setInsertPoint(Exit);
  B.halt();

  B.setInsertPoint(FEntry);
  B.load(3, 1, 0);
  B.condBr(ir::BrCond::Ne, 3, 0, FTaken);

  B.setInsertPoint(FFall);
  B.emitFiller(4, 8);
  B.ret();

  B.setInsertPoint(FTaken);
  B.emitFiller(4, 8);
  B.ret();

  H.Prog->finalize();
  requireClean(*H.Prog);
  H.BranchBlock = FEntry;
  H.TakenSide = FTaken;
  H.FallSide = FFall;
  H.BranchAddr = FEntry->instructions().back().Addr;
  return H;
}

/// Memory image where word[i] = (i % Period == 0), i.e. a periodic branch
/// condition, or a Bernoulli image from a fixed seed.
inline std::vector<int64_t> alternatingImage(size_t Words, unsigned Period) {
  std::vector<int64_t> Image(Words, 0);
  for (size_t I = 0; I < Words; ++I)
    Image[I] = (I % Period == 0) ? 1 : 0;
  return Image;
}

} // namespace dmp::test

#endif // DMP_TESTS_TESTPROGRAMS_H
