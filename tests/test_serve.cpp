//===- tests/test_serve.cpp - Campaign-service tests ----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Four suites, split by what they may do (the TSan preset runs only the
// first two by name — they never fork):
//
//   ServeProtocolTest  pure codec/decoder tests: round-trips, frame fuzz
//                      (garbage, truncation, oversize, version skew), and
//                      the strict exact-match decode contract.
//   ServeInProcTest    a live server (Workers=0, no forks) on a background
//                      thread: submit/fetch digest parity with local
//                      execution, admission control, deadlines, cancel,
//                      malformed-frame survival, multi-client concurrency,
//                      drain via SHUTDOWN, submit dedup, and the
//                      fetch-until-ack result lifecycle.
//   ServeDurableTest   a live server with a cache-backed job store (still
//                      Workers=0, no forks): restart recovery from
//                      checkpoints, ack tombstones, and epoch changes —
//                      each asserting digest-identical results.
//   ServeWorkerTest    forked worker processes: socketpair-level worker
//                      conformance, SIGKILL isolation, and the
//                      DMP_SERVE_CRASH_TICKET deterministic crash-retry —
//                      each asserting digest-identical results.
//   ServeSoakTest      an env-gated (DMP_SERVE_SOAK=1) multi-client hammer
//                      for `scripts/check.sh --serve`.
//
//===----------------------------------------------------------------------===//

#include "harness/CellRun.h"
#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/WorkerPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serve;

namespace {

harness::CellSpec smallSpec(const std::string &Benchmark = "mcf",
                            const std::string &Algo = "all") {
  harness::CellSpec Spec;
  Spec.Benchmark = Benchmark;
  Spec.Algo = Algo;
  Spec.SimInstrs = 100'000;
  Spec.ProfileInstrs = 400'000;
  return Spec;
}

serialize::Digest localDigest(const harness::CellSpec &Spec) {
  StatusOr<harness::CellResult> R = harness::runCellSpec(Spec, nullptr);
  EXPECT_TRUE(R.ok()) << R.status().toString();
  return harness::cellResultDigest(*R);
}

std::string freshSocketPath(const std::string &Tag) {
  static std::atomic<unsigned> Counter{0};
  return (std::filesystem::temp_directory_path() /
          ("dmp-serve-" + Tag + "-" + std::to_string(::getpid()) + "-" +
           std::to_string(Counter++) + ".sock"))
      .string();
}

std::vector<uint8_t> encodedPing() { return encodeFrame(MsgType::Ping, {}); }

/// Worker-plane read that skips CELL_PROGRESS liveness beats: the
/// socketpair conformance tests assert the CellDone contract, not the
/// heartbeat cadence (which is wall-clock-thinned and so not countable).
StatusOr<Frame> readFrameSkippingBeats(int Fd) {
  while (true) {
    StatusOr<Frame> F = readFrame(Fd);
    if (!F.ok() || F->Type != MsgType::CellProgress)
      return F;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// ServeProtocolTest — codecs and the incremental decoder (no I/O).
//===----------------------------------------------------------------------===//

TEST(ServeProtocolTest, FrameRoundTrip) {
  const std::vector<uint8_t> Payload = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> Bytes = encodeFrame(MsgType::Submit, Payload);
  ASSERT_EQ(Bytes.size(), kFrameHeaderBytes + Payload.size());

  FrameDecoder D;
  D.feed(Bytes.data(), Bytes.size());
  Frame F;
  Status Err;
  ASSERT_EQ(D.next(F, Err), FrameDecoder::Outcome::Got);
  EXPECT_EQ(F.Type, MsgType::Submit);
  EXPECT_EQ(F.Payload, Payload);
  EXPECT_EQ(D.next(F, Err), FrameDecoder::Outcome::NeedMore);
}

TEST(ServeProtocolTest, DecoderHandlesByteAtATimeDelivery) {
  const std::vector<uint8_t> Bytes = encodeFrame(MsgType::Pong, {9, 9});
  FrameDecoder D;
  Frame F;
  Status Err;
  for (size_t I = 0; I + 1 < Bytes.size(); ++I) {
    D.feed(&Bytes[I], 1);
    ASSERT_EQ(D.next(F, Err), FrameDecoder::Outcome::NeedMore);
    EXPECT_TRUE(D.midFrame());
  }
  D.feed(&Bytes.back(), 1);
  ASSERT_EQ(D.next(F, Err), FrameDecoder::Outcome::Got);
  EXPECT_EQ(F.Type, MsgType::Pong);
  EXPECT_FALSE(D.midFrame());
}

TEST(ServeProtocolTest, DecoderHandlesPipelinedFrames) {
  std::vector<uint8_t> Stream = encodeFrame(MsgType::Ping, {});
  const std::vector<uint8_t> Second = encodeFrame(MsgType::Shutdown, {});
  Stream.insert(Stream.end(), Second.begin(), Second.end());
  FrameDecoder D;
  D.feed(Stream.data(), Stream.size());
  Frame F;
  Status Err;
  ASSERT_EQ(D.next(F, Err), FrameDecoder::Outcome::Got);
  EXPECT_EQ(F.Type, MsgType::Ping);
  ASSERT_EQ(D.next(F, Err), FrameDecoder::Outcome::Got);
  EXPECT_EQ(F.Type, MsgType::Shutdown);
}

TEST(ServeProtocolTest, GarbageBytesAreFatal) {
  FrameDecoder D;
  const char Garbage[] = "GET / HTTP/1.1\r\nHost: not-a-dmp-client\r\n";
  D.feed(Garbage, sizeof(Garbage));
  Frame F;
  Status Err;
  ASSERT_EQ(D.next(F, Err), FrameDecoder::Outcome::Fatal);
  EXPECT_EQ(Err.code(), ErrorCode::Corrupt);
  EXPECT_TRUE(D.fatal());
  // Fatal latches: even valid bytes afterwards cannot resynchronize.
  const std::vector<uint8_t> Valid = encodedPing();
  D.feed(Valid.data(), Valid.size());
  EXPECT_EQ(D.next(F, Err), FrameDecoder::Outcome::Fatal);
}

TEST(ServeProtocolTest, OversizedLengthIsFatal) {
  std::vector<uint8_t> Bytes = encodeFrame(MsgType::Submit, {1});
  // Corrupt the payload-length field (bytes 9..16) to 1 TiB.
  const uint64_t Huge = 1ull << 40;
  std::memcpy(Bytes.data() + 9, &Huge, sizeof(Huge));
  FrameDecoder D;
  D.feed(Bytes.data(), Bytes.size());
  Frame F;
  Status Err;
  ASSERT_EQ(D.next(F, Err), FrameDecoder::Outcome::Fatal);
  EXPECT_EQ(Err.code(), ErrorCode::Corrupt);
}

TEST(ServeProtocolTest, VersionSkewIsSurvivableAndStreamRecovers) {
  std::vector<uint8_t> Skewed = encodeFrame(MsgType::Ping, {7, 7, 7});
  const uint32_t WrongVersion = kProtocolVersion + 1;
  std::memcpy(Skewed.data() + 4, &WrongVersion, sizeof(WrongVersion));
  FrameDecoder D;
  D.feed(Skewed.data(), Skewed.size());
  const std::vector<uint8_t> Valid = encodedPing();
  D.feed(Valid.data(), Valid.size());

  Frame F;
  Status Err;
  ASSERT_EQ(D.next(F, Err), FrameDecoder::Outcome::Skew);
  EXPECT_EQ(Err.code(), ErrorCode::Corrupt);
  EXPECT_FALSE(D.fatal());
  // The well-framed skewed frame was consumed whole: the next frame parses.
  ASSERT_EQ(D.next(F, Err), FrameDecoder::Outcome::Got);
  EXPECT_EQ(F.Type, MsgType::Ping);
}

TEST(ServeProtocolTest, TruncatedFrameStaysMidFrame) {
  const std::vector<uint8_t> Bytes = encodeFrame(MsgType::Submit, {1, 2, 3});
  FrameDecoder D;
  D.feed(Bytes.data(), Bytes.size() - 1);
  Frame F;
  Status Err;
  EXPECT_EQ(D.next(F, Err), FrameDecoder::Outcome::NeedMore);
  EXPECT_TRUE(D.midFrame()); // an EOF here is a truncated frame
}

TEST(ServeProtocolTest, SubmitCodecRoundTrip) {
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec("mcf", "all"));
  Req.Cells.push_back(smallSpec("gzip", "freq"));
  Req.Cells[1].ProfileInput = workloads::InputSetKind::Train;
  Req.Cells[1].MaxInstr = 99;
  Req.Cells[1].MinMergeProb = 0.25;
  Req.DeadlineSeconds = 12.5;

  SubmitRequest Out;
  ASSERT_TRUE(decodeSubmit(encodeSubmit(Req), Out).ok());
  ASSERT_EQ(Out.Cells.size(), 2u);
  EXPECT_EQ(Out.Cells[0].Benchmark, "mcf");
  EXPECT_EQ(Out.Cells[1].Benchmark, "gzip");
  EXPECT_EQ(Out.Cells[1].Algo, "freq");
  EXPECT_EQ(Out.Cells[1].ProfileInput, workloads::InputSetKind::Train);
  EXPECT_EQ(Out.Cells[1].MaxInstr, 99u);
  EXPECT_DOUBLE_EQ(Out.Cells[1].MinMergeProb, 0.25);
  EXPECT_DOUBLE_EQ(Out.DeadlineSeconds, 12.5);
}

TEST(ServeProtocolTest, SubmitDecodeRejectsTrailingBytes) {
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  std::vector<uint8_t> Payload = encodeSubmit(Req);
  Payload.push_back(0);
  SubmitRequest Out;
  const Status S = decodeSubmit(Payload, Out);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Corrupt);
}

TEST(ServeProtocolTest, SubmitDecodeRejectsTruncation) {
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  std::vector<uint8_t> Payload = encodeSubmit(Req);
  Payload.resize(Payload.size() / 2);
  SubmitRequest Out;
  EXPECT_EQ(decodeSubmit(Payload, Out).code(), ErrorCode::Corrupt);
}

TEST(ServeProtocolTest, SubmitDecodeRejectsZeroCells) {
  SubmitRequest Req; // no cells
  SubmitRequest Out;
  EXPECT_EQ(decodeSubmit(encodeSubmit(Req), Out).code(), ErrorCode::Corrupt);
}

TEST(ServeProtocolTest, StatusReplyRoundTrip) {
  JobStatusReply In;
  In.Job = 42;
  In.State = JobState::Running;
  In.Total = 10;
  In.Done = 3;
  In.Failed = 1;
  JobStatusReply Out;
  ASSERT_TRUE(decodeStatusReply(encodeStatusReply(In), Out).ok());
  EXPECT_EQ(Out.Job, 42u);
  EXPECT_EQ(Out.State, JobState::Running);
  EXPECT_EQ(Out.Total, 10u);
  EXPECT_EQ(Out.Done, 3u);
  EXPECT_EQ(Out.Failed, 1u);
}

TEST(ServeProtocolTest, StatusPayloadRoundTrip) {
  const Status In = Status::resourceExhausted("queue full", "serve::Server");
  Status Out;
  ASSERT_TRUE(decodeStatusPayload(encodeStatusPayload(In), Out).ok());
  EXPECT_EQ(Out.code(), ErrorCode::ResourceExhausted);
  EXPECT_EQ(Out.message(), "queue full");
  EXPECT_EQ(Out.origin(), "serve::Server");
}

TEST(ServeProtocolTest, FetchReplyRoundTripMixedOutcomes) {
  harness::CellResult R;
  R.Baseline.RetiredInstrs = 1000;
  R.Baseline.Cycles = 400;
  R.Dmp.RetiredInstrs = 1000;
  R.Dmp.Cycles = 300;
  R.DivergeBranches = 7;
  R.AvgCfmPoints = 1.5;

  FetchReplyData In;
  In.Job = 9;
  In.Cells.emplace_back(R);
  In.Cells.emplace_back(Status::cancelled("shed", "serve::Server"));

  FetchReplyData Out;
  ASSERT_TRUE(decodeFetchReply(encodeFetchReply(In), Out).ok());
  EXPECT_EQ(Out.Job, 9u);
  ASSERT_EQ(Out.Cells.size(), 2u);
  ASSERT_TRUE(Out.Cells[0].ok());
  EXPECT_EQ(harness::cellResultDigest(*Out.Cells[0]).hex(),
            harness::cellResultDigest(R).hex());
  ASSERT_FALSE(Out.Cells[1].ok());
  EXPECT_EQ(Out.Cells[1].status().code(), ErrorCode::Cancelled);
  EXPECT_EQ(Out.Cells[1].status().message(), "shed");
}

TEST(ServeProtocolTest, RunCellAndCellDoneRoundTrip) {
  const harness::CellSpec Spec = smallSpec("gcc", "cost-edge");
  uint64_t Ticket = 0;
  harness::CellSpec OutSpec;
  ASSERT_TRUE(decodeRunCell(encodeRunCell(77, Spec), Ticket, OutSpec).ok());
  EXPECT_EQ(Ticket, 77u);
  EXPECT_EQ(OutSpec.Benchmark, "gcc");
  EXPECT_EQ(OutSpec.Algo, "cost-edge");

  StatusOr<harness::CellResult> Outcome =
      Status::transient("worker crashed", "serve::WorkerPool");
  uint64_t DoneTicket = 0;
  StatusOr<harness::CellResult> OutOutcome;
  ASSERT_TRUE(
      decodeCellDone(encodeCellDone(77, Outcome), DoneTicket, OutOutcome)
          .ok());
  EXPECT_EQ(DoneTicket, 77u);
  ASSERT_FALSE(OutOutcome.ok());
  EXPECT_EQ(OutOutcome.status().code(), ErrorCode::Transient);
}

TEST(ServeProtocolTest, CellSpecValidateRejectsBadFields) {
  EXPECT_FALSE(harness::CellSpec().validate().ok()); // empty benchmark
  harness::CellSpec S = smallSpec();
  EXPECT_TRUE(S.validate().ok());
  S.MinMergeProb = 1.5;
  EXPECT_FALSE(S.validate().ok());
  S = smallSpec();
  S.SimInstrs = 0;
  EXPECT_FALSE(S.validate().ok());
  S = smallSpec();
  S.MaxInstr = 0;
  EXPECT_FALSE(S.validate().ok());
}

TEST(ServeProtocolTest, CellResultEncodingIsCanonical) {
  harness::CellResult R;
  R.Baseline.RetiredInstrs = 5;
  R.Dmp.RetiredInstrs = 5;
  R.DivergeBranches = 2;
  R.AvgCfmPoints = 0.5;
  const std::vector<uint8_t> A = harness::encodeCellResult(R);
  harness::CellResult Decoded;
  ASSERT_TRUE(harness::decodeCellResult(A, Decoded).ok());
  // Canonical: re-encoding the decoded result is byte-identical, so the
  // digest survives a wire round-trip.
  EXPECT_EQ(harness::encodeCellResult(Decoded), A);
  EXPECT_EQ(harness::cellResultDigest(Decoded).hex(),
            harness::cellResultDigest(R).hex());
}

TEST(ServeProtocolTest, RequestKeyIsDeterministicAndSensitive) {
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  Req.Cells.push_back(smallSpec("mcf", "every-br"));
  const serialize::Digest A = requestKey(Req);
  const serialize::Digest B = requestKey(Req);
  EXPECT_EQ(A.hex(), B.hex()) << "the idempotency key must be stable";
  // Any semantic change to the request changes the key.
  SubmitRequest Reordered = Req;
  std::swap(Reordered.Cells[0], Reordered.Cells[1]);
  EXPECT_NE(requestKey(Reordered).hex(), A.hex());
  SubmitRequest Deadlined = Req;
  Deadlined.DeadlineSeconds = 5.0;
  EXPECT_NE(requestKey(Deadlined).hex(), A.hex());
  SubmitRequest Shorter = Req;
  Shorter.Cells.pop_back();
  EXPECT_NE(requestKey(Shorter).hex(), A.hex());
}

TEST(ServeProtocolTest, PongPayloadRoundTripsTheEpoch) {
  const uint64_t Epoch = 0x0123456789ABCDEFull;
  uint64_t Decoded = 0;
  ASSERT_TRUE(decodePong(encodePong(Epoch), Decoded).ok());
  EXPECT_EQ(Decoded, Epoch);
  // A pre-epoch daemon sends an empty Pong: decodes as the "unknown"
  // epoch 0, not an error (backward compatibility).
  Decoded = 99;
  ASSERT_TRUE(decodePong({}, Decoded).ok());
  EXPECT_EQ(Decoded, 0u);
  // Trailing garbage is still rejected.
  std::vector<uint8_t> Long = encodePong(Epoch);
  Long.push_back(0);
  EXPECT_FALSE(decodePong(Long, Decoded).ok());
}

TEST(ServeProtocolTest, PongLoadRidesBehindTheEpoch) {
  const uint64_t Epoch = 0xFEEDFACEull;
  PongLoad In;
  In.JobsActive = 3;
  In.CellsRunning = 17;
  In.JobsShed = 5;
  In.ConnsShed = 11;

  uint64_t E = 0;
  PongLoad Out;
  bool HasLoad = false;
  ASSERT_TRUE(decodePong(encodePong(Epoch, In), E, &Out, &HasLoad).ok());
  EXPECT_EQ(E, Epoch);
  EXPECT_TRUE(HasLoad);
  EXPECT_EQ(Out.JobsActive, 3u);
  EXPECT_EQ(Out.CellsRunning, 17u);
  EXPECT_EQ(Out.JobsShed, 5u);
  EXPECT_EQ(Out.ConnsShed, 11u);

  // An epoch-only PONG (a pre-load daemon) decodes cleanly with HasLoad
  // false; an empty PONG (pre-epoch daemon) likewise.  Neither is an
  // error: the snapshot is additive, compatible in both directions.
  HasLoad = true;
  Out = PongLoad();
  ASSERT_TRUE(decodePong(encodePong(Epoch), E, &Out, &HasLoad).ok());
  EXPECT_EQ(E, Epoch);
  EXPECT_FALSE(HasLoad);
  HasLoad = true;
  ASSERT_TRUE(decodePong({}, E, &Out, &HasLoad).ok());
  EXPECT_EQ(E, 0u);
  EXPECT_FALSE(HasLoad);
  // A load-free decoder reading a load-carrying PONG also succeeds (it
  // ignores what it did not ask for); trailing garbage is still rejected.
  ASSERT_TRUE(decodePong(encodePong(Epoch, In), E).ok());
  EXPECT_EQ(E, Epoch);
  std::vector<uint8_t> Long = encodePong(Epoch, In);
  Long.push_back(0);
  EXPECT_FALSE(decodePong(Long, E, &Out, &HasLoad).ok());
}

TEST(ServeProtocolTest, CellProgressRoundTrip) {
  uint64_t Ticket = 0;
  ASSERT_TRUE(
      decodeCellProgress(encodeCellProgress(0xDEADBEEFull), Ticket).ok());
  EXPECT_EQ(Ticket, 0xDEADBEEFull);
  std::vector<uint8_t> Long = encodeCellProgress(1);
  Long.push_back(0);
  EXPECT_FALSE(decodeCellProgress(Long, Ticket).ok());
  EXPECT_FALSE(decodeCellProgress({1, 2, 3}, Ticket).ok());
}

TEST(ServeProtocolTest, StatusPayloadCarriesOptionalRetryAfter) {
  const Status In = Status::resourceExhausted("brownout", "serve::Server");
  // Hinted: the trailing u32 rides behind the Status and round-trips.
  Status Out;
  uint32_t Hint = 0;
  ASSERT_TRUE(
      decodeStatusPayload(encodeStatusPayload(In, 250), Out, &Hint).ok());
  EXPECT_EQ(Out.code(), ErrorCode::ResourceExhausted);
  EXPECT_EQ(Hint, 250u);
  // Hint-free: a pre-brownout payload decodes with hint 0.
  Hint = 99;
  ASSERT_TRUE(decodeStatusPayload(encodeStatusPayload(In), Out, &Hint).ok());
  EXPECT_EQ(Hint, 0u);
  // A hint-blind decoder (no out-param) still accepts a hinted payload.
  ASSERT_TRUE(decodeStatusPayload(encodeStatusPayload(In, 250), Out).ok());
  EXPECT_EQ(Out.message(), "brownout");
  // Encoding with hint 0 is byte-identical to the pre-hint encoding, so
  // old peers see exactly the bytes they always saw.
  EXPECT_EQ(encodeStatusPayload(In, 0), encodeStatusPayload(In));
}

TEST(ServeProtocolTest, BackoffDelayIsDeterministicAndBounded) {
  RetryPolicy Retry;
  Retry.BaseDelayMs = 10;
  Retry.MaxDelayMs = 2000;
  Retry.Seed = 42;
  for (unsigned A = 0; A < 32; ++A) {
    const unsigned D1 = Client::backoffDelayMs(Retry, A);
    const unsigned D2 = Client::backoffDelayMs(Retry, A);
    EXPECT_EQ(D1, D2) << "attempt " << A << " must replay identically";
    EXPECT_LE(D1, Retry.MaxDelayMs);
    const unsigned Cap =
        std::min<uint64_t>(uint64_t(Retry.BaseDelayMs)
                               << std::min(A, 20u),
                           Retry.MaxDelayMs);
    EXPECT_GE(D1, Cap / 2) << "jitter window is [cap/2, cap]";
  }
  // Different seeds explore different schedules (almost surely).
  RetryPolicy Other = Retry;
  Other.Seed = 43;
  bool Differs = false;
  for (unsigned A = 2; A < 16 && !Differs; ++A)
    Differs = Client::backoffDelayMs(Retry, A) !=
              Client::backoffDelayMs(Other, A);
  EXPECT_TRUE(Differs);
}

//===----------------------------------------------------------------------===//
// ServeSunPathTest — AF_UNIX path-length validation on every bind/connect.
//===----------------------------------------------------------------------===//

TEST(ServeSunPathTest, ClientConnectRejectsOverlongPath) {
  Client C;
  const std::string Long(200, 'x');
  const Status S = C.connect("/tmp/" + Long + ".sock");
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Invariant);
  EXPECT_NE(S.toString().find("sun_path"), std::string::npos)
      << "message should name the AF_UNIX limit: " << S.toString();
  EXPECT_NE(S.toString().find("too long"), std::string::npos);
}

TEST(ServeSunPathTest, ServerListenRejectsOverlongPath) {
  WorkerPoolOptions PO;
  PO.Workers = 0;
  PO.UseCache = false;
  WorkerPool Pool(PO);
  ServerOptions Opts;
  Opts.SocketPath = "/tmp/" + std::string(200, 'y') + ".sock";
  Server Srv(std::move(Opts), Pool);
  const Status S = Srv.listen();
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Invariant);
  EXPECT_NE(S.toString().find("sun_path"), std::string::npos)
      << S.toString();
  EXPECT_NE(S.toString().find("too long"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ServeInProcTest — live server, no forks (TSan-safe).
//===----------------------------------------------------------------------===//

namespace {

/// A live Workers=0 server on a background thread, plus helpers to connect
/// clients and stop cleanly.
class ServeInProcTest : public ::testing::Test {
protected:
  void start(ServerOptions Extra = {}) {
    PoolOpts.Workers = 0;
    PoolOpts.UseCache = false;
    Pool = std::make_unique<WorkerPool>(PoolOpts);
    Extra.SocketPath = Socket = freshSocketPath("inproc");
    Srv = std::make_unique<Server>(std::move(Extra), *Pool, &Token);
    ASSERT_TRUE(Srv->listen().ok());
    Loop = std::thread([this] { RunResult = Srv->run(); });
  }

  void TearDown() override {
    if (Loop.joinable()) {
      Srv->requestStop();
      Loop.join();
      EXPECT_TRUE(RunResult.ok()) << RunResult.toString();
    }
    std::error_code EC;
    std::filesystem::remove(Socket, EC);
  }

  Client connected() {
    Client C;
    EXPECT_TRUE(C.connect(Socket).ok());
    return C;
  }

  WorkerPoolOptions PoolOpts;
  std::unique_ptr<WorkerPool> Pool;
  std::unique_ptr<Server> Srv;
  guard::CancelToken Token;
  std::thread Loop;
  std::string Socket;
  Status RunResult;
};

} // namespace

TEST_F(ServeInProcTest, PingPong) {
  start();
  Client C = connected();
  EXPECT_TRUE(C.ping().ok());
}

TEST_F(ServeInProcTest, SubmitFetchDigestMatchesLocalExecution) {
  start();
  Client C = connected();
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec("mcf", "all"));
  Req.Cells.push_back(smallSpec("mcf", "every-br"));
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_EQ(Reply->Cells.size(), 2u);
  for (size_t I = 0; I < 2; ++I) {
    ASSERT_TRUE(Reply->Cells[I].ok()) << Reply->Cells[I].status().toString();
    EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[I]).hex(),
              localDigest(Req.Cells[I]).hex())
        << "cell " << I << " diverged from local execution";
  }
  // The job survives the fetch until the client acks (or GC reclaims it);
  // see FetchSurvivesUntilAck below.
}

TEST_F(ServeInProcTest, UnknownJobIsNotFound) {
  start();
  Client C = connected();
  EXPECT_EQ(C.status(999).status().code(), ErrorCode::NotFound);
  EXPECT_EQ(C.fetch(999).status().code(), ErrorCode::NotFound);
  EXPECT_EQ(C.cancel(999).code(), ErrorCode::NotFound);
}

TEST_F(ServeInProcTest, FetchSurvivesUntilAck) {
  // The fetch-once protocol had a result-loss window: a reply torn in
  // transit destroyed the only copy.  Fetch is now idempotent; the job
  // lives until the client explicitly ACKs it.
  start();
  Client C = connected();
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<uint64_t> Job = C.submit(Req);
  ASSERT_TRUE(Job.ok());
  while (true) {
    StatusOr<JobStatusReply> S = C.status(*Job);
    ASSERT_TRUE(S.ok());
    if (S->State == JobState::Done)
      break;
    ::usleep(5000);
  }
  // Fetch twice: identical replies, the second models a client retrying
  // after a torn first reply.
  StatusOr<FetchReplyData> First = C.fetch(*Job);
  ASSERT_TRUE(First.ok());
  StatusOr<FetchReplyData> Second = C.fetch(*Job);
  ASSERT_TRUE(Second.ok()) << "fetch must be idempotent until acked";
  ASSERT_EQ(First->Cells.size(), Second->Cells.size());
  ASSERT_TRUE(First->Cells[0].ok());
  ASSERT_TRUE(Second->Cells[0].ok());
  EXPECT_EQ(harness::cellResultDigest(*First->Cells[0]).hex(),
            harness::cellResultDigest(*Second->Cells[0]).hex());
  // ACK releases the job; only then is it forgotten.
  ASSERT_TRUE(C.ack(*Job).ok());
  EXPECT_EQ(C.fetch(*Job).status().code(), ErrorCode::NotFound);
  // Re-acking a forgotten job is a no-op, not an error: the first AckOk
  // may have been lost in transit.
  EXPECT_TRUE(C.ack(*Job).ok());
}

TEST_F(ServeInProcTest, AckBeforeCompletionIsRejected) {
  start();
  Client C = connected();
  SubmitRequest Req;
  for (int I = 0; I < 8; ++I)
    Req.Cells.push_back(smallSpec("mcf", I % 2 ? "all" : "every-br"));
  StatusOr<uint64_t> Job = C.submit(Req);
  ASSERT_TRUE(Job.ok());
  // The in-process server runs one cell per loop rotation, so right after
  // SubmitOk the job cannot be finished yet: the ack must be refused and
  // the job must keep running to completion.
  EXPECT_EQ(C.ack(*Job).code(), ErrorCode::Invariant);
  while (true) {
    StatusOr<JobStatusReply> S = C.status(*Job);
    ASSERT_TRUE(S.ok());
    if (S->State == JobState::Done)
      break;
    ::usleep(2000);
  }
  EXPECT_TRUE(C.fetch(*Job).ok());
  EXPECT_TRUE(C.ack(*Job).ok());
}

TEST_F(ServeInProcTest, ResubmitDedupsOntoTheSameJob) {
  start();
  Client C = connected();
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  Req.Cells.push_back(smallSpec("mcf", "every-br"));
  StatusOr<uint64_t> First = C.submit(Req);
  ASSERT_TRUE(First.ok());
  // Identical request → same request digest → the same job, not a second
  // execution.  This is what makes client resubmission after a torn
  // SubmitOk always safe.
  StatusOr<uint64_t> Again = C.submit(Req);
  ASSERT_TRUE(Again.ok());
  EXPECT_EQ(*Again, *First);
  EXPECT_GE(Srv->counters().JobsDeduped, 1u);
  // A different request is a different job.
  SubmitRequest Other;
  Other.Cells.push_back(smallSpec("gzip"));
  StatusOr<uint64_t> Different = C.submit(Other);
  ASSERT_TRUE(Different.ok());
  EXPECT_NE(*Different, *First);
}

TEST_F(ServeInProcTest, PongCarriesANonzeroEpoch) {
  start();
  Client C = connected();
  StatusOr<uint64_t> Epoch = C.health();
  ASSERT_TRUE(Epoch.ok()) << Epoch.status().toString();
  EXPECT_NE(*Epoch, 0u);
  EXPECT_EQ(*Epoch, Srv->epoch());
  // Stable across calls within one boot.
  StatusOr<uint64_t> Epoch2 = C.health();
  ASSERT_TRUE(Epoch2.ok());
  EXPECT_EQ(*Epoch2, *Epoch);
}

TEST_F(ServeInProcTest, OversizedJobIsResourceExhausted) {
  ServerOptions Opts;
  Opts.MaxCellsPerJob = 2;
  start(Opts);
  Client C = connected();
  SubmitRequest Req;
  for (int I = 0; I < 3; ++I)
    Req.Cells.push_back(smallSpec());
  EXPECT_EQ(C.submit(Req).status().code(), ErrorCode::ResourceExhausted);
  // Rejection is not an error on the connection: a legal submit follows.
  Req.Cells.resize(2);
  EXPECT_TRUE(C.submit(Req).ok());
}

TEST_F(ServeInProcTest, ExpiredDeadlineShedsPendingCells) {
  start();
  Client C = connected();
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  Req.Cells.push_back(smallSpec("gzip"));
  // Already expired by the time the server's loop sees it: every cell is
  // shed before dispatch (expiry runs before the dispatch pass).
  Req.DeadlineSeconds = 1e-9;
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_EQ(Reply->Cells.size(), 2u);
  for (const auto &Cell : Reply->Cells) {
    ASSERT_FALSE(Cell.ok());
    EXPECT_EQ(Cell.status().code(), ErrorCode::ResourceExhausted);
  }
}

TEST_F(ServeInProcTest, MalformedSubmitPayloadKeepsConnectionUsable) {
  start();
  Client C = connected();
  // Well-framed SUBMIT whose payload is garbage: Error(Corrupt), and the
  // same connection then serves a valid request.
  ASSERT_TRUE(
      writeFrame(C.fd(), MsgType::Submit, {0xde, 0xad, 0xbe, 0xef}).ok());
  StatusOr<Frame> Reply = readFrame(C.fd());
  ASSERT_TRUE(Reply.ok());
  ASSERT_EQ(Reply->Type, MsgType::Error);
  Status Carried;
  ASSERT_TRUE(decodeStatusPayload(Reply->Payload, Carried).ok());
  EXPECT_EQ(Carried.code(), ErrorCode::Corrupt);
  EXPECT_TRUE(C.ping().ok());
}

TEST_F(ServeInProcTest, VersionSkewKeepsConnectionUsable) {
  start();
  Client C = connected();
  std::vector<uint8_t> Skewed = encodeFrame(MsgType::Ping, {});
  const uint32_t WrongVersion = kProtocolVersion + 7;
  std::memcpy(Skewed.data() + 4, &WrongVersion, sizeof(WrongVersion));
  ssize_t N = ::send(C.fd(), Skewed.data(), Skewed.size(), MSG_NOSIGNAL);
  ASSERT_EQ(N, static_cast<ssize_t>(Skewed.size()));
  StatusOr<Frame> Reply = readFrame(C.fd());
  ASSERT_TRUE(Reply.ok());
  EXPECT_EQ(Reply->Type, MsgType::Error);
  EXPECT_TRUE(C.ping().ok());
}

TEST_F(ServeInProcTest, GarbageClosesOnlyThatConnection) {
  start();
  Client Bad = connected();
  Client Good = connected();
  const char Garbage[] = "\x01\x02not a frame at all and quite long\x03\x04";
  ASSERT_GT(::send(Bad.fd(), Garbage, sizeof(Garbage), MSG_NOSIGNAL), 0);
  // The server sends a last-words Error frame and closes the bad conn.
  StatusOr<Frame> LastWords = readFrame(Bad.fd());
  if (LastWords.ok()) {
    EXPECT_EQ(LastWords->Type, MsgType::Error);
  }
  StatusOr<Frame> AfterClose = readFrame(Bad.fd());
  EXPECT_FALSE(AfterClose.ok()); // connection is gone
  // The other client is untouched — and the server still works.
  EXPECT_TRUE(Good.ping().ok());
  EXPECT_GE(Srv->counters().ProtocolErrors, 1u);
}

TEST_F(ServeInProcTest, UnexpectedTypeIsRejectedWithoutClosing) {
  start();
  Client C = connected();
  // CellDone is worker-plane traffic; from a client it is a well-framed
  // protocol violation, answered but survivable.
  StatusOr<Frame> Reply = C.roundTrip(MsgType::CellDone, {});
  ASSERT_FALSE(Reply.ok());
  EXPECT_EQ(Reply.status().code(), ErrorCode::Corrupt);
  EXPECT_TRUE(C.ping().ok());
}

TEST_F(ServeInProcTest, CancelledJobReportsCancelledCells) {
  start();
  Client C = connected();
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<uint64_t> Job = C.submit(Req);
  ASSERT_TRUE(Job.ok());
  // The cell may already have run (in-process execution is immediate); both
  // cancel-before-run and cancel-after-run must succeed, and fetch must
  // return either the computed result or the shed status.
  ASSERT_TRUE(C.cancel(*Job).ok());
  while (true) {
    StatusOr<JobStatusReply> S = C.status(*Job);
    ASSERT_TRUE(S.ok());
    if (S->State == JobState::Done || S->State == JobState::Cancelled)
      break;
    ::usleep(5000);
  }
  StatusOr<FetchReplyData> Reply = C.fetch(*Job);
  ASSERT_TRUE(Reply.ok());
  ASSERT_EQ(Reply->Cells.size(), 1u);
  if (!Reply->Cells[0].ok()) {
    EXPECT_EQ(Reply->Cells[0].status().code(), ErrorCode::Cancelled);
  }
}

TEST_F(ServeInProcTest, ConcurrentClientsGetConsistentDigests) {
  start();
  const serialize::Digest Expected = localDigest(smallSpec());
  constexpr int kClients = 4;
  std::vector<std::thread> Threads;
  std::vector<std::string> Digests(kClients);
  std::vector<std::string> Failures(kClients);
  for (int I = 0; I < kClients; ++I)
    Threads.emplace_back([this, I, &Digests, &Failures] {
      Client C;
      if (Status S = C.connect(Socket); !S.ok()) {
        Failures[I] = S.toString();
        return;
      }
      SubmitRequest Req;
      Req.Cells.push_back(smallSpec());
      StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
      if (!Reply.ok()) {
        Failures[I] = Reply.status().toString();
        return;
      }
      if (!Reply->Cells[0].ok()) {
        Failures[I] = Reply->Cells[0].status().toString();
        return;
      }
      Digests[I] = harness::cellResultDigest(*Reply->Cells[0]).hex();
    });
  for (auto &T : Threads)
    T.join();
  for (int I = 0; I < kClients; ++I) {
    EXPECT_EQ(Failures[I], "") << "client " << I;
    EXPECT_EQ(Digests[I], Expected.hex()) << "client " << I;
  }
}

TEST_F(ServeInProcTest, CancelLandsBetweenCellsOfARunningJob) {
  // In-process mode runs one cell per event-loop rotation, so a CANCEL
  // arriving while a multi-cell job is mid-run must shed the still-pending
  // cells instead of waiting for the whole job to finish first.
  start();
  Client C = connected();
  SubmitRequest Req;
  for (int I = 0; I < 16; ++I)
    Req.Cells.push_back(smallSpec("mcf", I % 2 ? "all" : "every-br"));
  StatusOr<uint64_t> Job = C.submit(Req);
  ASSERT_TRUE(Job.ok()) << Job.status().toString();

  // Wait until the job is visibly mid-run: at least one cell finished.
  // The status round-trips themselves prove the loop answers clients
  // between cells.
  while (true) {
    StatusOr<JobStatusReply> S = C.status(*Job);
    ASSERT_TRUE(S.ok()) << S.status().toString();
    if (S->Done + S->Failed >= 1)
      break;
  }
  ASSERT_TRUE(C.cancel(*Job).ok());

  while (true) {
    StatusOr<JobStatusReply> S = C.status(*Job);
    ASSERT_TRUE(S.ok()) << S.status().toString();
    if (S->State == JobState::Cancelled || S->State == JobState::Done)
      break;
    ::usleep(1000);
  }
  StatusOr<FetchReplyData> Reply = C.fetch(*Job);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_EQ(Reply->Cells.size(), Req.Cells.size());
  size_t Ran = 0, Shed = 0;
  for (const StatusOr<harness::CellResult> &Cell : Reply->Cells) {
    if (Cell.ok())
      ++Ran;
    else if (Cell.status().code() == ErrorCode::Cancelled)
      ++Shed;
  }
  EXPECT_GE(Ran, 1u) << "cancel should land after at least one cell ran";
  EXPECT_GE(Shed, 1u) << "cancel mid-job must shed still-pending cells";
  EXPECT_EQ(Ran + Shed, Req.Cells.size());
}

TEST_F(ServeInProcTest, ShutdownFrameDrainsTheServer) {
  start();
  Client C = connected();
  EXPECT_TRUE(C.shutdownServer().ok());
  Loop.join();
  EXPECT_TRUE(RunResult.ok()) << RunResult.toString();
  // A fresh connect must now fail: the socket is gone.
  Client After;
  EXPECT_FALSE(After.connect(Socket).ok());
}

TEST_F(ServeInProcTest, SubmitDuringDrainIsRejected) {
  start();
  Client C = connected();
  ASSERT_TRUE(C.shutdownServer().ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  // The drained server may still flush replies on live conns, but must not
  // accept new work; depending on timing the conn may already be closed.
  StatusOr<uint64_t> Job = C.submit(Req);
  EXPECT_FALSE(Job.ok());
  Loop.join();
  EXPECT_TRUE(RunResult.ok());
}

//===----------------------------------------------------------------------===//
// ServeDurableTest — cache-backed job store, restart recovery (no forks).
//===----------------------------------------------------------------------===//

namespace {

/// A live Workers=0 server whose jobs checkpoint into a per-test cache
/// directory, with helpers to stop one daemon "boot" and start the next
/// against the same socket and store — the in-process analogue of
/// SIGKILL-and-restart (a checkpoint is only ever trusted if it would also
/// survive a kill; the fork-based chaos matrix covers the kill itself).
class ServeDurableTest : public ::testing::Test {
protected:
  void SetUp() override {
    CacheDir = (std::filesystem::temp_directory_path() /
                ("dmp-serve-store-" + std::to_string(::getpid()) + "-" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
    std::filesystem::remove_all(CacheDir);
    Socket = freshSocketPath("durable");
  }

  void TearDown() override {
    stopServer();
    std::error_code EC;
    std::filesystem::remove(Socket, EC);
    std::filesystem::remove_all(CacheDir, EC);
  }

  void startServer(ServerOptions Extra = {}) {
    PoolOpts.Workers = 0;
    PoolOpts.UseCache = true;
    PoolOpts.CacheDir = CacheDir;
    Pool = std::make_unique<WorkerPool>(PoolOpts);
    Extra.SocketPath = Socket;
    Srv = std::make_unique<Server>(std::move(Extra), *Pool, &Token);
    ASSERT_TRUE(Srv->listen().ok());
    Loop = std::thread([this] { RunResult = Srv->run(); });
  }

  void stopServer() {
    if (Loop.joinable()) {
      Srv->requestStop();
      Loop.join();
      EXPECT_TRUE(RunResult.ok()) << RunResult.toString();
    }
    Srv.reset();
    Pool.reset();
  }

  Client connected() {
    Client C;
    EXPECT_TRUE(C.connect(Socket).ok());
    return C;
  }

  WorkerPoolOptions PoolOpts;
  std::unique_ptr<WorkerPool> Pool;
  std::unique_ptr<Server> Srv;
  guard::CancelToken Token;
  std::thread Loop;
  std::string Socket;
  std::string CacheDir;
  Status RunResult;
};

} // namespace

TEST_F(ServeDurableTest, RestartResumesFromCheckpointWithIdenticalDigests) {
  SubmitRequest Req;
  for (const char *Algo : {"all", "freq", "every-br", "short"})
    Req.Cells.push_back(smallSpec("mcf", Algo));

  startServer();
  const uint64_t EpochA = Srv->epoch();
  {
    Client C = connected();
    StatusOr<uint64_t> Job = C.submit(Req);
    ASSERT_TRUE(Job.ok()) << Job.status().toString();
    // Let at least one cell finish (and checkpoint) before the "crash",
    // so the second boot demonstrably resumes rather than restarts.
    while (true) {
      StatusOr<JobStatusReply> S = C.status(*Job);
      ASSERT_TRUE(S.ok()) << S.status().toString();
      if (S->Done >= 1)
        break;
      ::usleep(1000);
    }
  }
  // Boot two: same socket, same store.  The drain in stopServer() finishes
  // in-flight cells but the job is still unfetched — recovery must pick it
  // up from its checkpoint.
  stopServer();
  startServer();
  EXPECT_EQ(Srv->counters().JobsRecovered, 1u);
  EXPECT_GE(Srv->counters().CellsResumed, 1u)
      << "at least the checkpointed cell must be resumed, not re-run";
  EXPECT_NE(Srv->epoch(), EpochA) << "each boot draws a fresh epoch";

  // The client does not know the recovered job's new id; resubmitting the
  // identical request dedups onto it (this is the client's restart ritual).
  Client C = connected();
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_EQ(Reply->Cells.size(), Req.Cells.size());
  for (size_t I = 0; I < Req.Cells.size(); ++I) {
    ASSERT_TRUE(Reply->Cells[I].ok()) << Reply->Cells[I].status().toString();
    EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[I]).hex(),
              localDigest(Req.Cells[I]).hex())
        << "cell " << I << " digest changed across the restart";
  }
  EXPECT_GE(Srv->counters().JobsDeduped, 1u)
      << "the resubmit must dedup onto the recovered job";
}

TEST_F(ServeDurableTest, FinishedUnfetchedJobSurvivesRestart) {
  // The post-completion-pre-fetch window: daemon finishes the job, dies
  // before the client fetches.  The results must still be there.
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  startServer();
  {
    Client C = connected();
    StatusOr<uint64_t> Job = C.submit(Req);
    ASSERT_TRUE(Job.ok());
    while (true) {
      StatusOr<JobStatusReply> S = C.status(*Job);
      ASSERT_TRUE(S.ok());
      if (S->State == JobState::Done)
        break;
      ::usleep(1000);
    }
  }
  stopServer();
  startServer();
  EXPECT_EQ(Srv->counters().JobsRecovered, 1u);
  // Everything was checkpointed: recovery resumes the job with all cells
  // already done, so no cell is ever dispatched again.
  Client C = connected();
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok());
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
  EXPECT_EQ(Srv->counters().CellsDispatched, 0u)
      << "a fully-checkpointed job must not re-run any cell";
}

TEST_F(ServeDurableTest, AckedJobIsNotResumedAfterRestart) {
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  startServer();
  {
    Client C = connected();
    StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
    ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
    ASSERT_TRUE(C.ack(Reply->Job).ok());
  }
  stopServer();
  startServer();
  // The ack wrote a tombstone: the job is complete business, not an
  // orphan to resurrect.
  EXPECT_EQ(Srv->counters().JobsRecovered, 0u);
  // And a resubmit of the same request is a fresh run (served from the
  // artifact cache, so still digest-identical — but a new job).
  Client C = connected();
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
  ASSERT_TRUE(Reply.ok());
  ASSERT_TRUE(Reply->Cells[0].ok());
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
}

TEST_F(ServeDurableTest, NonDurableServerForgetsAcrossRestart) {
  // --no-durable restores the pre-recovery contract: a restart forgets.
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  ServerOptions Opts;
  Opts.DurableJobs = false;
  startServer(Opts);
  {
    Client C = connected();
    StatusOr<uint64_t> Job = C.submit(Req);
    ASSERT_TRUE(Job.ok());
    while (true) {
      StatusOr<JobStatusReply> S = C.status(*Job);
      ASSERT_TRUE(S.ok());
      if (S->State == JobState::Done)
        break;
      ::usleep(1000);
    }
  }
  stopServer();
  ServerOptions Opts2;
  Opts2.DurableJobs = false;
  startServer(Opts2);
  EXPECT_EQ(Srv->counters().JobsRecovered, 0u);
  EXPECT_EQ(Srv->counters().Checkpoints, 0u);
}

//===----------------------------------------------------------------------===//
// ServeWorkerTest — forked worker processes (excluded from the TSan run).
//===----------------------------------------------------------------------===//

namespace {

class ServeWorkerTest : public ::testing::Test {
protected:
  void start(unsigned Workers, ServerOptions Extra = {}) {
    PoolOpts.Workers = Workers;
    PoolOpts.UseCache = false;
    Pool = std::make_unique<WorkerPool>(PoolOpts);
    ASSERT_EQ(Pool->size(), Workers);
    Extra.SocketPath = Socket = freshSocketPath("worker");
    Srv = std::make_unique<Server>(std::move(Extra), *Pool, &Token);
    ASSERT_TRUE(Srv->listen().ok());
    Loop = std::thread([this] { RunResult = Srv->run(); });
  }

  void TearDown() override {
    ::unsetenv("DMP_SERVE_CRASH_TICKET");
    ::unsetenv("DMP_SERVE_EXIT_AFTER_TICKET");
    ::unsetenv("DMP_SERVE_KILL_ON_DISPATCH_TICKET");
    if (Loop.joinable()) {
      Srv->requestStop();
      Loop.join();
      EXPECT_TRUE(RunResult.ok()) << RunResult.toString();
    }
    Srv.reset();
    Pool.reset();
    std::error_code EC;
    std::filesystem::remove(Socket, EC);
  }

  WorkerPoolOptions PoolOpts;
  std::unique_ptr<WorkerPool> Pool;
  std::unique_ptr<Server> Srv;
  guard::CancelToken Token;
  std::thread Loop;
  std::string Socket;
  Status RunResult;
};

} // namespace

TEST_F(ServeWorkerTest, WorkerExecutesCellOverSocketpair) {
  // Drive one worker process directly, without a server: the worker plane
  // of the protocol is testable in isolation.
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  const pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    ::close(Pair[0]);
    WorkerPool::workerMain(Pair[1], "", false);
  }
  ::close(Pair[1]);

  const harness::CellSpec Spec = smallSpec();
  ASSERT_TRUE(
      writeFrame(Pair[0], MsgType::RunCell, encodeRunCell(5, Spec)).ok());
  // The receipt heartbeat precedes any computation: the first frame back
  // is a CELL_PROGRESS beat carrying the dispatched ticket.
  StatusOr<Frame> Beat = readFrame(Pair[0]);
  ASSERT_TRUE(Beat.ok()) << Beat.status().toString();
  ASSERT_EQ(Beat->Type, MsgType::CellProgress);
  uint64_t BeatTicket = 0;
  ASSERT_TRUE(decodeCellProgress(Beat->Payload, BeatTicket).ok());
  EXPECT_EQ(BeatTicket, 5u);
  StatusOr<Frame> Done = readFrameSkippingBeats(Pair[0]);
  ASSERT_TRUE(Done.ok()) << Done.status().toString();
  ASSERT_EQ(Done->Type, MsgType::CellDone);
  uint64_t Ticket = 0;
  StatusOr<harness::CellResult> Outcome;
  ASSERT_TRUE(decodeCellDone(Done->Payload, Ticket, Outcome).ok());
  EXPECT_EQ(Ticket, 5u);
  ASSERT_TRUE(Outcome.ok()) << Outcome.status().toString();
  EXPECT_EQ(harness::cellResultDigest(*Outcome).hex(),
            localDigest(Spec).hex());

  ::close(Pair[0]); // EOF: the worker exits 0
  int WStatus = 0;
  ASSERT_EQ(::waitpid(Pid, &WStatus, 0), Pid);
  EXPECT_TRUE(WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 0);
}

TEST_F(ServeWorkerTest, WorkerRejectsMalformedSpecWithoutDying) {
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  const pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    ::close(Pair[0]);
    WorkerPool::workerMain(Pair[1], "", false);
  }
  ::close(Pair[1]);

  ASSERT_TRUE(writeFrame(Pair[0], MsgType::RunCell, {1, 2, 3}).ok());
  StatusOr<Frame> Done = readFrameSkippingBeats(Pair[0]);
  ASSERT_TRUE(Done.ok());
  uint64_t Ticket = 0;
  StatusOr<harness::CellResult> Outcome;
  ASSERT_TRUE(decodeCellDone(Done->Payload, Ticket, Outcome).ok());
  EXPECT_FALSE(Outcome.ok());
  // Still alive: a valid cell right after completes.
  ASSERT_TRUE(writeFrame(Pair[0], MsgType::RunCell,
                         encodeRunCell(6, smallSpec()))
                  .ok());
  StatusOr<Frame> Second = readFrameSkippingBeats(Pair[0]);
  EXPECT_TRUE(Second.ok());
  ::close(Pair[0]);
  ::waitpid(Pid, nullptr, 0);
}

TEST_F(ServeWorkerTest, SigkilledWorkerIsIsolatedAndRetried) {
  start(2);
  Client C;
  ASSERT_TRUE(C.connect(Socket).ok());
  SubmitRequest Req;
  for (const char *Algo : {"all", "freq", "every-br", "short"})
    Req.Cells.push_back(smallSpec("mcf", Algo));

  StatusOr<uint64_t> Job = C.submit(Req);
  ASSERT_TRUE(Job.ok()) << Job.status().toString();
  // Kill one worker while the campaign runs (or idles — either way the
  // supervisor must absorb the death without the job noticing).
  const std::vector<pid_t> Pids = Pool->pids();
  ASSERT_FALSE(Pids.empty());
  ASSERT_EQ(::kill(Pids[0], SIGKILL), 0);

  while (true) {
    StatusOr<JobStatusReply> S = C.status(*Job);
    ASSERT_TRUE(S.ok()) << S.status().toString();
    if (S->State == JobState::Done)
      break;
    ::usleep(5000);
  }
  StatusOr<FetchReplyData> Reply = C.fetch(*Job);
  ASSERT_TRUE(Reply.ok());
  ASSERT_EQ(Reply->Cells.size(), Req.Cells.size());
  for (size_t I = 0; I < Req.Cells.size(); ++I) {
    ASSERT_TRUE(Reply->Cells[I].ok()) << Reply->Cells[I].status().toString();
    EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[I]).hex(),
              localDigest(Req.Cells[I]).hex())
        << "cell " << I << " digest changed across the worker kill";
  }
  EXPECT_GE(Srv->counters().WorkerCrashes, 1u);
}

TEST_F(ServeWorkerTest, CrashTicketRetryIsDigestIdentical) {
  // Deterministic mid-cell crash: the worker holding ticket 0 dies the
  // moment it receives it; the retry draws a fresh ticket and completes.
  ASSERT_EQ(::setenv("DMP_SERVE_CRASH_TICKET", "0", 1), 0);
  start(2);
  Client C;
  ASSERT_TRUE(C.connect(Socket).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok()) << Reply->Cells[0].status().toString();
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
  const Server::Counters Ctr = Srv->counters();
  EXPECT_GE(Ctr.WorkerCrashes, 1u);
  EXPECT_GE(Ctr.CellsRetried, 1u);
}

TEST_F(ServeWorkerTest, DeathUnderDispatchWriteIsRetriedAndDrainable) {
  // The worker is killed and reaped immediately before the supervisor
  // writes RunCell for ticket 0, so the dispatch write itself fails
  // (EPIPE) and the pool never records the ticket.  The supervisor must
  // undo its own bookkeeping: the cell returns to Pending, is retried on
  // the respawned worker, and the drain in TearDown completes (a cell
  // leaked in Running would make the job unfinishable and hang shutdown).
  ASSERT_EQ(::setenv("DMP_SERVE_KILL_ON_DISPATCH_TICKET", "0", 1), 0);
  start(1);
  Client C;
  ASSERT_TRUE(C.connect(Socket).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_EQ(Reply->Cells.size(), 1u);
  ASSERT_TRUE(Reply->Cells[0].ok()) << Reply->Cells[0].status().toString();
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
  const Server::Counters Ctr = Srv->counters();
  EXPECT_GE(Ctr.WorkerCrashes, 1u);
  EXPECT_GE(Ctr.CellsRetried, 1u);
}

TEST_F(ServeWorkerTest, ResultFlushedBeforeWorkerDeathIsNotRecomputed) {
  // The worker flushes ticket 0's CellDone and then dies: the supervisor
  // may see the result bytes and the EOF in the same readable event, and
  // must parse the buffered frames before reaping the corpse — the
  // finished result counts, nothing is recomputed.
  ASSERT_EQ(::setenv("DMP_SERVE_EXIT_AFTER_TICKET", "0", 1), 0);
  start(1);
  Client C;
  ASSERT_TRUE(C.connect(Socket).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok()) << Reply->Cells[0].status().toString();
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
  // The worker's death is noticed asynchronously; wait for the reap.
  for (int I = 0; I < 2000 && Srv->counters().WorkerCrashes == 0; ++I)
    ::usleep(1000);
  const Server::Counters Ctr = Srv->counters();
  EXPECT_GE(Ctr.WorkerCrashes, 1u);
  EXPECT_EQ(Ctr.CellsRetried, 0u) << "flushed result must not be recomputed";
  EXPECT_EQ(Ctr.CellsCompleted, 1u);
}

TEST_F(ServeWorkerTest, RepeatedCrashExhaustsAttemptsWithoutHanging) {
  // Every attempt redispatches... but the crash hook keys on ticket 0 only,
  // so to exhaust attempts the job must be the sole work item and the env
  // must name each successive ticket.  Instead, bound attempts at 1 and let
  // the single crash consume the budget: the cell must fail cleanly.
  ASSERT_EQ(::setenv("DMP_SERVE_CRASH_TICKET", "0", 1), 0);
  ServerOptions Opts;
  Opts.CellAttempts = 1;
  start(1, Opts);
  Client C;
  ASSERT_TRUE(C.connect(Socket).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_EQ(Reply->Cells.size(), 1u);
  ASSERT_FALSE(Reply->Cells[0].ok());
  EXPECT_EQ(Reply->Cells[0].status().code(), ErrorCode::Transient);
}

//===----------------------------------------------------------------------===//
// ServeSoakTest — env-gated hammer (scripts/check.sh --serve).
//===----------------------------------------------------------------------===//

TEST(ServeSoakTest, MultiClientHammerKeepsDigestsStable) {
  const char *Gate = std::getenv("DMP_SERVE_SOAK");
  if (!Gate || std::string(Gate) != "1")
    GTEST_SKIP() << "set DMP_SERVE_SOAK=1 to run the soak";

  WorkerPoolOptions PoolOpts;
  PoolOpts.Workers = 3;
  PoolOpts.UseCache = false;
  WorkerPool Pool(PoolOpts);
  guard::CancelToken Token;
  ServerOptions Opts;
  Opts.SocketPath = freshSocketPath("soak");
  Server Srv(std::move(Opts), Pool, &Token);
  ASSERT_TRUE(Srv.listen().ok());
  Status RunResult;
  std::thread Loop([&] { RunResult = Srv.run(); });

  const serialize::Digest Expected = localDigest(smallSpec());
  constexpr int kClients = 6, kRounds = 5;
  std::vector<std::thread> Threads;
  std::atomic<int> Mismatches{0}, Errors{0};
  for (int I = 0; I < kClients; ++I)
    Threads.emplace_back([&, I] {
      for (int Round = 0; Round < kRounds; ++Round) {
        Client C;
        if (!C.connect(Srv.options().SocketPath).ok()) {
          ++Errors;
          continue;
        }
        // Odd clients interleave malformed traffic on a throwaway conn
        // to stress the Corrupt paths while campaigns run.
        if (I % 2 == 1) {
          Client Fuzz;
          if (Fuzz.connect(Srv.options().SocketPath).ok()) {
            const char Junk[] = "junk junk junk junk";
            (void)::send(Fuzz.fd(), Junk, sizeof(Junk), MSG_NOSIGNAL);
          }
        }
        SubmitRequest Req;
        Req.Cells.push_back(smallSpec());
        StatusOr<FetchReplyData> Reply = C.runCampaign(Req);
        if (!Reply.ok() || !Reply->Cells[0].ok()) {
          ++Errors;
          continue;
        }
        if (harness::cellResultDigest(*Reply->Cells[0]).hex() !=
            Expected.hex())
          ++Mismatches;
      }
    });
  for (auto &T : Threads)
    T.join();
  Srv.requestStop();
  Loop.join();
  EXPECT_TRUE(RunResult.ok()) << RunResult.toString();
  EXPECT_EQ(Mismatches.load(), 0);
  EXPECT_EQ(Errors.load(), 0);
  std::error_code EC;
  std::filesystem::remove(Srv.options().SocketPath, EC);
}
