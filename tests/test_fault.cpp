//===- tests/test_fault.cpp - Fault-tolerant campaign execution tests ---------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Covers the dmp::Status taxonomy, the deterministic fault::Plan/Injector,
// and the ISSUE acceptance criteria for fault-tolerant campaigns:
//
//   1. A campaign with injected transient cache/store/task faults runs to
//      completion via bounded retry and fall-back-to-recompute, and its
//      result matrix is bit-identical to a fault-free run — for any --jobs
//      value and any fault seed.
//   2. A permanent per-cell fault marks that cell failed without aborting
//      the process or the rest of the campaign.
//   3. A killed-then-resumed campaign restores journaled cells instead of
//      recomputing them (verified through counters and sentinel payloads).
//
//===----------------------------------------------------------------------===//

#include "fault/Fault.h"
#include "harness/Engine.h"
#include "support/Status.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <unistd.h>

using namespace dmp;

//===----------------------------------------------------------------------===//
// Status / StatusOr / StatusError
//===----------------------------------------------------------------------===//

TEST(StatusTest, DefaultIsOk) {
  const Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_TRUE(static_cast<bool>(S));
  EXPECT_EQ(S.code(), ErrorCode::Ok);
  EXPECT_EQ(S.toString(), "ok");
}

TEST(StatusTest, FactoriesCarryCodeMessageOrigin) {
  const Status T = Status::transient("cache write blip", "serialize");
  EXPECT_FALSE(T.ok());
  EXPECT_EQ(T.code(), ErrorCode::Transient);
  EXPECT_EQ(T.message(), "cache write blip");
  EXPECT_EQ(T.origin(), "serialize");
  EXPECT_EQ(T.toString(), "serialize: transient: cache write blip");

  EXPECT_EQ(Status::notFound("m", "o").code(), ErrorCode::NotFound);
  EXPECT_EQ(Status::corrupt("m", "o").code(), ErrorCode::Corrupt);
  EXPECT_EQ(Status::invariant("m", "o").code(), ErrorCode::Invariant);
  EXPECT_EQ(Status::cancelled("m", "o").code(), ErrorCode::Cancelled);
  EXPECT_EQ(Status::resourceExhausted("m", "o").code(),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(Status::make(ErrorCode::Corrupt, "m", "o").code(),
            ErrorCode::Corrupt);
}

TEST(StatusTest, ErrorCodeNames) {
  EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
  EXPECT_STREQ(errorCodeName(ErrorCode::Transient), "transient");
  EXPECT_STREQ(errorCodeName(ErrorCode::NotFound), "not-found");
  EXPECT_STREQ(errorCodeName(ErrorCode::Corrupt), "corrupt");
  EXPECT_STREQ(errorCodeName(ErrorCode::Invariant), "invariant");
  EXPECT_STREQ(errorCodeName(ErrorCode::Cancelled), "cancelled");
  EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhausted),
               "resource-exhausted");
}

TEST(StatusOrTest, DefaultReadsAsNeverWritten) {
  const StatusOr<int> Slot;
  EXPECT_FALSE(Slot.ok());
  EXPECT_EQ(Slot.status().code(), ErrorCode::Cancelled);
  EXPECT_NE(Slot.status().message().find("never written"), std::string::npos);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> V = 42;
  ASSERT_TRUE(V.ok());
  EXPECT_TRUE(V.has_value());
  EXPECT_EQ(*V, 42);
  EXPECT_EQ(V.valueOr(-1), 42);

  const StatusOr<int> E = Status::corrupt("bad bytes", "test");
  EXPECT_FALSE(E.ok());
  EXPECT_EQ(E.status().code(), ErrorCode::Corrupt);
  EXPECT_EQ(E.valueOr(-1), -1);
}

TEST(StatusOrTest, StatusErrorRoundTripsAcrossThrow) {
  try {
    throw StatusError(Status::transient("injected blip", "fault"));
  } catch (const StatusError &E) {
    EXPECT_EQ(E.status().code(), ErrorCode::Transient);
    EXPECT_STREQ(E.what(), "fault: transient: injected blip");
  }
}

//===----------------------------------------------------------------------===//
// fault::Plan / fault::Injector
//===----------------------------------------------------------------------===//

TEST(FaultPlanTest, InactiveByDefault) {
  const fault::Plan Plan;
  EXPECT_FALSE(Plan.active());
  EXPECT_FALSE(Plan.shouldFault(fault::Site::TaskRun, "any", 0));
}

TEST(FaultPlanTest, DecisionIsPureFunctionOfInputs) {
  const fault::Plan Plan =
      fault::Plan::transientEverywhere(/*Seed=*/7, /*Rate=*/0.5);
  const fault::Plan Copy = Plan;
  for (int I = 0; I < 64; ++I) {
    const std::string Key = "op-" + std::to_string(I);
    const bool First = Plan.shouldFault(fault::Site::CacheLoad, Key, 0);
    // Same plan, same inputs: same answer, every time, on any copy.
    EXPECT_EQ(Plan.shouldFault(fault::Site::CacheLoad, Key, 0), First);
    EXPECT_EQ(Copy.shouldFault(fault::Site::CacheLoad, Key, 0), First);
  }
}

TEST(FaultPlanTest, RateSelectsRoughlyThatFractionOfKeys) {
  const fault::Plan Plan =
      fault::Plan::transientEverywhere(/*Seed=*/11, /*Rate=*/0.3);
  int Faulted = 0;
  for (int I = 0; I < 1000; ++I)
    Faulted += Plan.shouldFault(fault::Site::TaskRun,
                                "key-" + std::to_string(I), 0);
  EXPECT_GT(Faulted, 200);
  EXPECT_LT(Faulted, 400);
}

TEST(FaultPlanTest, SitesAndSeedsDecorrelate) {
  const fault::Plan A = fault::Plan::transientEverywhere(1, 0.5);
  const fault::Plan B = fault::Plan::transientEverywhere(2, 0.5);
  bool SiteDiffers = false, SeedDiffers = false;
  for (int I = 0; I < 64; ++I) {
    const std::string Key = "op-" + std::to_string(I);
    SiteDiffers |= A.shouldFault(fault::Site::CacheLoad, Key, 0) !=
                   A.shouldFault(fault::Site::CacheStore, Key, 0);
    SeedDiffers |= A.shouldFault(fault::Site::TaskRun, Key, 0) !=
                   B.shouldFault(fault::Site::TaskRun, Key, 0);
  }
  EXPECT_TRUE(SiteDiffers);
  EXPECT_TRUE(SeedDiffers);
}

TEST(FaultPlanTest, TransientFaultsClearAfterMaxFaultsPerOp) {
  const fault::Plan Plan =
      fault::Plan::transientEverywhere(/*Seed=*/3, /*Rate=*/1.0,
                                       /*MaxFaultsPerOp=*/2);
  EXPECT_TRUE(Plan.shouldFault(fault::Site::TaskRun, "cell", 0));
  EXPECT_TRUE(Plan.shouldFault(fault::Site::TaskRun, "cell", 1));
  // Attempt 2 is past the budget: bounded retry provably terminates.
  EXPECT_FALSE(Plan.shouldFault(fault::Site::TaskRun, "cell", 2));
  EXPECT_FALSE(Plan.shouldFault(fault::Site::TaskRun, "cell", 100));
}

TEST(FaultPlanTest, PermanentFaultNeverClears) {
  fault::Plan Plan = fault::Plan::transientEverywhere(3, 1.0);
  Plan.at(fault::Site::TaskRun).MaxFaultsPerOp = ~0u;
  Plan.at(fault::Site::TaskRun).Code = ErrorCode::Invariant;
  for (unsigned Attempt = 0; Attempt < 50; ++Attempt)
    EXPECT_TRUE(Plan.shouldFault(fault::Site::TaskRun, "cell", Attempt));
}

TEST(FaultInjectorTest, CheckInjectsStatusAndCounts) {
  fault::Plan Plan;
  Plan.Seed = 9;
  Plan.at(fault::Site::CacheStore) = {/*Rate=*/1.0, /*MaxFaultsPerOp=*/1,
                                      ErrorCode::Transient};
  const fault::Injector Inj(Plan);
  EXPECT_TRUE(Inj.active());

  const Status S = Inj.check(fault::Site::CacheStore, "blob-key", 0);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Transient);
  EXPECT_EQ(S.origin(), "fault");
  EXPECT_NE(S.message().find("cache-store"), std::string::npos);
  EXPECT_NE(S.message().find("blob-key"), std::string::npos);

  // Unfaulted sites proceed and do not count.
  EXPECT_TRUE(Inj.check(fault::Site::TaskRun, "blob-key", 0).ok());
  EXPECT_EQ(Inj.injected(fault::Site::CacheStore), 1u);
  EXPECT_EQ(Inj.injected(fault::Site::TaskRun), 0u);
  EXPECT_EQ(Inj.totalInjected(), 1u);
}

TEST(FaultInjectorTest, SiteNamesAreStable) {
  EXPECT_STREQ(fault::siteName(fault::Site::CacheLoad), "cache-load");
  EXPECT_STREQ(fault::siteName(fault::Site::CacheStore), "cache-store");
  EXPECT_STREQ(fault::siteName(fault::Site::TaskRun), "task-run");
  EXPECT_STREQ(fault::siteName(fault::Site::ProfileDecode),
               "profile-decode");
}

//===----------------------------------------------------------------------===//
// Acceptance: fault-tolerant campaigns on the real pipeline
//===----------------------------------------------------------------------===//

namespace {

/// Two small benchmarks keep the pipeline runs test-sized.
std::vector<workloads::BenchmarkSpec> miniSuite() {
  const std::vector<workloads::BenchmarkSpec> &Suite = workloads::specSuite();
  return {Suite.begin(), Suite.begin() + 2};
}

harness::ExperimentOptions miniOptions() {
  harness::ExperimentOptions Options;
  Options.Profile.MaxInstrs = 150'000;
  Options.Sim.MaxInstrs = 60'000;
  return Options;
}

std::filesystem::path freshTempDir(const std::string &Tag) {
  const std::filesystem::path Dir =
      std::filesystem::temp_directory_path() /
      ("dmp-fault-" + Tag + "-" + std::to_string(::getpid()));
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
  return Dir;
}

/// The full result matrix of a 2-bench x 2-config campaign, optionally
/// cached at \p CacheDir and perturbed by \p Faults.
std::vector<std::vector<StatusOr<sim::SimStats>>>
runCampaign(unsigned Jobs, const std::string &CacheDir,
            std::shared_ptr<const fault::Injector> Faults) {
  harness::EngineOptions EngineOpts;
  EngineOpts.Jobs = Jobs;
  EngineOpts.UseCache = !CacheDir.empty();
  EngineOpts.CacheDir = CacheDir;
  harness::ExperimentOptions Options = miniOptions();
  Options.Faults = std::move(Faults);
  harness::ExperimentEngine Engine(Options, EngineOpts);

  const core::SelectionFeatures Configs[] = {
      core::SelectionFeatures::exactOnly(),
      core::SelectionFeatures::allBestHeur(),
  };
  return Engine.runMatrix<sim::SimStats>(
      miniSuite(), std::size(Configs), [&Configs](harness::Cell &C) {
        return C.Bench.runSelection(Configs[C.Config]);
      });
}

bool identical(const std::vector<std::vector<StatusOr<sim::SimStats>>> &A,
               const std::vector<std::vector<StatusOr<sim::SimStats>>> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].size() != B[I].size())
      return false;
    for (size_t J = 0; J < A[I].size(); ++J) {
      if (!A[I][J].ok() || !B[I][J].ok())
        return false;
      if (std::memcmp(&*A[I][J], &*B[I][J], sizeof(sim::SimStats)) != 0)
        return false;
    }
  }
  return true;
}

} // namespace

TEST(FaultCampaignTest, TransientFaultsPreserveResultsAcrossJobsAndSeeds) {
  // Fault-free reference, no cache involved.
  const auto Reference = runCampaign(2, "", nullptr);
  for (const auto &Row : Reference)
    for (const auto &Cell : Row)
      ASSERT_TRUE(Cell.ok()) << Cell.status().toString();

  // Rate 1.0 faults *every* operation once: every cache load fails over to
  // recomputation, every store fails (counter only), and every cell faults
  // on attempt 0 then succeeds on its first retry.
  auto Inj = std::make_shared<fault::Injector>(
      fault::Plan::transientEverywhere(/*Seed=*/101, /*Rate=*/1.0));
  const auto Faulted = runCampaign(2, freshTempDir("seedA").string(), Inj);
  EXPECT_TRUE(identical(Reference, Faulted));
  EXPECT_GT(Inj->injected(fault::Site::TaskRun), 0u);
  EXPECT_GT(Inj->totalInjected(), 0u);

  // Different --jobs and a different fault schedule: still bit-identical.
  const auto FaultedWide = runCampaign(
      5, freshTempDir("seedB").string(),
      std::make_shared<fault::Injector>(
          fault::Plan::transientEverywhere(/*Seed=*/202, /*Rate=*/0.7,
                                           /*MaxFaultsPerOp=*/2)));
  EXPECT_TRUE(identical(Reference, FaultedWide));
}

TEST(FaultCampaignTest, TransientCellFaultsAreRetriedAndCounted) {
  harness::EngineOptions EngineOpts;
  EngineOpts.Jobs = 2;
  EngineOpts.UseCache = false;
  harness::ExperimentOptions Options = miniOptions();
  fault::Plan Plan;
  Plan.Seed = 13;
  Plan.at(fault::Site::TaskRun) = {/*Rate=*/1.0, /*MaxFaultsPerOp=*/1,
                                   ErrorCode::Transient};
  Options.Faults = std::make_shared<fault::Injector>(Plan);
  harness::ExperimentEngine Engine(Options, EngineOpts);

  const auto Matrix = Engine.runMatrix<double>(
      miniSuite(), 2,
      [](harness::Cell &C) { return static_cast<double>(C.Rng.next()); },
      harness::CellNeeds{false, false, false});
  for (const auto &Row : Matrix)
    for (const auto &Cell : Row)
      EXPECT_TRUE(Cell.ok()) << Cell.status().toString();

  const harness::CampaignCounters Counters = Engine.campaign();
  EXPECT_EQ(Counters.CellsComputed, 4u);
  EXPECT_EQ(Counters.CellsFailed, 0u);
  EXPECT_EQ(Counters.TransientRetries, 4u); // one retry per cell
  EXPECT_NE(Engine.statsLine().find("retries=4"), std::string::npos);
}

TEST(FaultCampaignTest, PermanentCellFaultIsIsolatedNotFatal) {
  harness::EngineOptions EngineOpts;
  EngineOpts.Jobs = 3;
  EngineOpts.UseCache = false;
  harness::ExperimentEngine Engine(miniOptions(), EngineOpts);

  const std::vector<workloads::BenchmarkSpec> Suite = miniSuite();
  const std::string BadBench = Suite[0].Name;
  const auto Matrix = Engine.runMatrix<double>(
      Suite, 2,
      [&BadBench](harness::Cell &C) -> double {
        if (C.Bench.spec().Name == BadBench && C.Config == 1)
          throw StatusError(
              Status::invariant("simulated permanent defect", "test"));
        return static_cast<double>(C.Rng.next());
      },
      harness::CellNeeds{false, false, false});

  // Exactly the faulted cell failed; everything else completed.
  ASSERT_EQ(Matrix.size(), 2u);
  EXPECT_FALSE(Matrix[0][1].ok());
  EXPECT_EQ(Matrix[0][1].status().code(), ErrorCode::Invariant);
  EXPECT_TRUE(Matrix[0][0].ok());
  EXPECT_TRUE(Matrix[1][0].ok());
  EXPECT_TRUE(Matrix[1][1].ok());

  const harness::CampaignCounters Counters = Engine.campaign();
  EXPECT_EQ(Counters.CellsFailed, 1u);
  EXPECT_EQ(Counters.CellsComputed, 3u);
  // Invariant failures are never retried.
  EXPECT_EQ(Counters.TransientRetries, 0u);
  ASSERT_EQ(Counters.Failures.size(), 1u);
  EXPECT_NE(Counters.Failures[0].find(BadBench + "/1"), std::string::npos);
  EXPECT_NE(Engine.failureLines().find("simulated permanent defect"),
            std::string::npos);
}

TEST(FaultCampaignTest, InterruptedCampaignResumesJournaledCells) {
  const std::filesystem::path Dir = freshTempDir("resume");
  const std::vector<workloads::BenchmarkSpec> Suite = miniSuite();
  const serialize::Digest ParamsKey =
      harness::paramsDigest({"cfg-a", "cfg-b"});
  const harness::CellCodec<double> &Codec = harness::doubleCellCodec();

  // A prior campaign that was killed after journaling three of four cells.
  // Sentinel values no cell function produces prove resume vs recompute.
  {
    auto Cache = std::make_shared<serialize::ArtifactCache>(Dir.string());
    harness::CampaignJournal Journal(Cache, "camp/matrix", ParamsKey,
                                     Suite.size(), 2);
    Journal.record(0, 0, Codec.Encode(-100.5));
    Journal.record(0, 1, Codec.Encode(-101.5));
    Journal.record(1, 0, Codec.Encode(-110.5));
    ASSERT_TRUE(Journal.lastCheckpointStatus().ok());
  }

  harness::EngineOptions EngineOpts;
  EngineOpts.Jobs = 2;
  EngineOpts.CacheDir = Dir.string();
  EngineOpts.Journal = "camp";
  harness::ExperimentEngine Engine(miniOptions(), EngineOpts);
  harness::CampaignJournal *Journal =
      Engine.journalFor("matrix", ParamsKey, Suite.size(), 2);
  ASSERT_NE(Journal, nullptr);
  EXPECT_EQ(Journal->entries(), 3u);

  std::atomic<unsigned> CellRuns{0};
  const auto Matrix = Engine.runMatrix<double>(
      Suite, 2,
      [&CellRuns](harness::Cell &C) -> double {
        ++CellRuns;
        return static_cast<double>(C.Config) + 1.0;
      },
      harness::CellNeeds{false, false, false}, Journal, &Codec);

  // Only the unfinished cell recomputed; journaled cells kept their
  // sentinel payloads untouched.
  EXPECT_EQ(CellRuns.load(), 1u);
  ASSERT_TRUE(Matrix[0][0].ok());
  EXPECT_DOUBLE_EQ(*Matrix[0][0], -100.5);
  ASSERT_TRUE(Matrix[0][1].ok());
  EXPECT_DOUBLE_EQ(*Matrix[0][1], -101.5);
  ASSERT_TRUE(Matrix[1][0].ok());
  EXPECT_DOUBLE_EQ(*Matrix[1][0], -110.5);
  ASSERT_TRUE(Matrix[1][1].ok());
  EXPECT_DOUBLE_EQ(*Matrix[1][1], 2.0);

  const harness::CampaignCounters Counters = Engine.campaign();
  EXPECT_EQ(Counters.CellsResumed, 3u);
  EXPECT_EQ(Counters.CellsComputed, 1u);
  EXPECT_EQ(Counters.CellsFailed, 0u);
  EXPECT_EQ(Journal->entries(), 4u);
  EXPECT_NE(Engine.statsLine().find("resumed=3"), std::string::npos);

  // The finished journal replays fully: a rerun recomputes nothing.
  auto Cache = std::make_shared<serialize::ArtifactCache>(Dir.string());
  harness::CampaignJournal Replay(Cache, "camp/matrix", ParamsKey,
                                  Suite.size(), 2);
  EXPECT_EQ(Replay.entries(), 4u);

  // A retuned campaign (different params digest) must not resume.
  harness::CampaignJournal Retuned(
      Cache, "camp/matrix", harness::paramsDigest({"cfg-a", "cfg-c"}),
      Suite.size(), 2);
  EXPECT_EQ(Retuned.entries(), 0u);

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}
