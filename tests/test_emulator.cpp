//===- tests/test_emulator.cpp - Functional emulator unit tests ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "profile/Emulator.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::ir;
using namespace dmp::profile;

namespace {

/// Builds a straight-line program from a callback and runs it to halt.
template <typename BuildFn>
Emulator runProgram(std::unique_ptr<Program> &Hold, BuildFn Build,
                    std::vector<int64_t> Memory = {}) {
  Hold = std::make_unique<Program>("t");
  Function *F = Hold->createFunction("main");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(*Hold);
  B.setInsertPoint(Entry);
  Build(B, F);
  B.halt();
  Hold->finalize();
  test::requireClean(*Hold);
  Emulator Emu(*Hold, Memory);
  DynInstr D;
  while (Emu.step(D)) {
  }
  return Emu;
}

} // namespace

TEST(EmulatorTest, AluSemantics) {
  std::unique_ptr<Program> P;
  Emulator Emu = runProgram(P, [](IRBuilder &B, Function *) {
    B.loadImm(1, 7);
    B.loadImm(2, 3);
    B.add(3, 1, 2);   // 10
    B.sub(4, 1, 2);   // 4
    B.mul(5, 1, 2);   // 21
    B.div(6, 1, 2);   // 2
    B.and_(7, 1, 2);  // 3
    B.or_(8, 1, 2);   // 7
    B.xor_(9, 1, 2);  // 4
    B.shl(10, 1, 2);  // 56
    B.shr(11, 1, 2);  // 0
    B.slt(12, 2, 1);  // 1
    B.addI(13, 1, 5); // 12
    B.mulI(14, 1, 4); // 28
    B.andI(15, 1, 6); // 6
    B.sltI(16, 1, 8); // 1
  });
  EXPECT_EQ(Emu.reg(3), 10);
  EXPECT_EQ(Emu.reg(4), 4);
  EXPECT_EQ(Emu.reg(5), 21);
  EXPECT_EQ(Emu.reg(6), 2);
  EXPECT_EQ(Emu.reg(7), 3);
  EXPECT_EQ(Emu.reg(8), 7);
  EXPECT_EQ(Emu.reg(9), 4);
  EXPECT_EQ(Emu.reg(10), 56);
  EXPECT_EQ(Emu.reg(11), 0);
  EXPECT_EQ(Emu.reg(12), 1);
  EXPECT_EQ(Emu.reg(13), 12);
  EXPECT_EQ(Emu.reg(14), 28);
  EXPECT_EQ(Emu.reg(15), 6);
  EXPECT_EQ(Emu.reg(16), 1);
}

TEST(EmulatorTest, DivideByZeroYieldsZero) {
  std::unique_ptr<Program> P;
  Emulator Emu = runProgram(P, [](IRBuilder &B, Function *) {
    B.loadImm(1, 42);
    B.div(2, 1, 0); // r0 == 0
  });
  EXPECT_EQ(Emu.reg(2), 0);
}

TEST(EmulatorTest, RegZeroStaysZero) {
  std::unique_ptr<Program> P;
  Emulator Emu = runProgram(P, [](IRBuilder &B, Function *) {
    B.loadImm(1, 5);
    B.add(2, 0, 1); // r0 reads as 0
  });
  EXPECT_EQ(Emu.reg(0), 0);
  EXPECT_EQ(Emu.reg(2), 5);
}

TEST(EmulatorTest, LoadStoreRoundTrip) {
  std::unique_ptr<Program> P;
  Emulator Emu = runProgram(
      P,
      [](IRBuilder &B, Function *) {
        B.loadImm(1, 100);
        B.loadImm(2, 77);
        B.store(2, 1, 8);  // mem[108] = 77
        B.load(3, 1, 8);   // r3 = mem[108]
        B.load(4, 0, 5);   // r4 = initial image word 5
      },
      {0, 0, 0, 0, 0, 123});
  EXPECT_EQ(Emu.reg(3), 77);
  EXPECT_EQ(Emu.reg(4), 123);
  EXPECT_EQ(Emu.memWord(108), 77);
}

TEST(EmulatorTest, BranchTakenAndNotTaken) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/2, /*Iters=*/8);
  // Data: taken on every even index (period 2).
  Emulator Emu(*H.Prog, test::alternatingImage(64, 2));
  DynInstr D;
  unsigned TakenCount = 0, BranchCount = 0;
  while (Emu.step(D)) {
    if (D.I->Op == Opcode::CondBr && D.Addr == H.BranchAddr) {
      ++BranchCount;
      TakenCount += D.Taken;
    }
  }
  EXPECT_TRUE(Emu.isHalted());
  EXPECT_EQ(BranchCount, 8u);
  EXPECT_EQ(TakenCount, 4u);
  // Accumulator saw +1 four times and -1 four times.
  EXPECT_EQ(Emu.reg(4), 0);
}

TEST(EmulatorTest, CallAndReturn) {
  auto H = test::buildRetFuncLoop(/*Iters=*/4);
  Emulator Emu(*H.Prog, test::alternatingImage(64, 2));
  DynInstr D;
  unsigned Calls = 0, Rets = 0;
  size_t MaxDepth = 0;
  while (Emu.step(D)) {
    if (D.I->Op == Opcode::Call)
      ++Calls;
    if (D.I->Op == Opcode::Ret)
      ++Rets;
    MaxDepth = std::max(MaxDepth, Emu.callDepth());
  }
  EXPECT_EQ(Calls, 4u);
  EXPECT_EQ(Rets, 4u);
  EXPECT_EQ(MaxDepth, 1u);
  EXPECT_TRUE(Emu.isHalted());
}

TEST(EmulatorTest, NextAddrMatchesControlFlow) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/2, /*Iters=*/4);
  Emulator Emu(*H.Prog, test::alternatingImage(64, 2));
  DynInstr D;
  uint32_t Expected = H.Prog->getMain()->getEntryAddr();
  while (Emu.step(D)) {
    EXPECT_EQ(D.Addr, Expected);
    Expected = D.NextAddr;
  }
}

TEST(EmulatorTest, DeterministicAcrossRuns) {
  auto H = test::buildFreqHammockLoop();
  const auto Image = test::alternatingImage(8192, 3);
  uint64_t Counts[2];
  int64_t Sums[2];
  for (int Run = 0; Run < 2; ++Run) {
    Emulator Emu(*H.Prog, Image);
    DynInstr D;
    int64_t Sum = 0;
    while (Emu.step(D))
      Sum += static_cast<int64_t>(D.Addr);
    Counts[Run] = Emu.executedCount();
    Sums[Run] = Sum;
  }
  EXPECT_EQ(Counts[0], Counts[1]);
  EXPECT_EQ(Sums[0], Sums[1]);
}

TEST(EmulatorTest, HaltStopsExecution) {
  std::unique_ptr<Program> P;
  Emulator Emu = runProgram(P, [](IRBuilder &B, Function *) {
    B.loadImm(1, 1);
  });
  EXPECT_TRUE(Emu.isHalted());
  DynInstr D;
  EXPECT_FALSE(Emu.step(D));
  EXPECT_EQ(Emu.executedCount(), 2u); // loadImm + halt
}

// -- Edge semantics pinned for the fast paths --------------------------------
// The predecoded step()/run() paths must preserve these exactly; each is a
// contract clients (profiler, simulator, oracle) rely on.

// Memory is padded to the next power of two, at least 64K words, and
// effective addresses are masked to that size — so every program is
// memory-safe by construction and address wraparound is defined behavior.
TEST(EmulatorTest, MemoryWordsPadding) {
  std::unique_ptr<Program> P;
  // Empty image: the 64K-word floor.
  EXPECT_EQ(runProgram(P, [](IRBuilder &, Function *) {}).memoryWords(),
            64u * 1024);
  // Below the floor: still the floor.
  EXPECT_EQ(runProgram(P, [](IRBuilder &, Function *) {},
                       std::vector<int64_t>(1000, 7))
                .memoryWords(),
            64u * 1024);
  // Above the floor: next power of two.
  EXPECT_EQ(runProgram(P, [](IRBuilder &, Function *) {},
                       std::vector<int64_t>(100'000, 7))
                .memoryWords(),
            128u * 1024);
  // Exactly a power of two: unchanged.
  EXPECT_EQ(runProgram(P, [](IRBuilder &, Function *) {},
                       std::vector<int64_t>(128 * 1024, 7))
                .memoryWords(),
            128u * 1024);
}

TEST(EmulatorTest, AddressWraparound) {
  std::unique_ptr<Program> P;
  Emulator Emu = runProgram(P, [](IRBuilder &B, Function *) {
    // Store past the end: 64K + 3 wraps to word 3.
    B.loadImm(1, 64 * 1024 + 3);
    B.loadImm(2, 42);
    B.store(2, 1, 0);
    B.load(3, 1, 0); // Reads back through the same wrap.
    // A negative effective address wraps to the top of memory.
    B.loadImm(4, -1);
    B.loadImm(5, 99);
    B.store(5, 4, 0);
  });
  EXPECT_EQ(Emu.memWord(3), 42);
  EXPECT_EQ(Emu.reg(3), 42);
  EXPECT_EQ(Emu.memWord(64 * 1024 - 1), 99);
  // memWord itself masks, so the unwrapped addresses read the same cells.
  EXPECT_EQ(Emu.memWord(64 * 1024 + 3), 42);
}

TEST(EmulatorTest, RegZeroIsHardwired) {
  // Deliberately NOT linted: IR06 flags r0 writes as invalid IR, but the
  // emulator's defense is that such writes are *dropped* — r0 reads as zero
  // no matter what ran — and the decoded fast path must preserve exactly
  // that (its unconditional register reads rely on Regs[0] staying 0).
  auto P = std::make_unique<Program>("t");
  Function *F = P->createFunction("main");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(*P);
  B.setInsertPoint(Entry);
  B.loadImm(0, 123); // Write to r0 is dropped.
  B.addI(1, 0, 5);   // r1 = r0 + 5 = 5.
  B.add(2, 0, 0);    // r2 = 0.
  B.loadImm(3, 7);
  B.add(0, 3, 3); // Another dropped write.
  B.or_(4, 0, 3); // r4 = 0 | 7.
  B.halt();
  P->finalize();
  Emulator Emu(*P, {});
  DynInstr D;
  while (Emu.step(D)) {
  }
  EXPECT_EQ(Emu.reg(0), 0);
  EXPECT_EQ(Emu.reg(1), 5);
  EXPECT_EQ(Emu.reg(2), 0);
  EXPECT_EQ(Emu.reg(4), 7);
}

// After halt, step() returns false and leaves the DynInstr untouched — the
// profiler and simulator loops read Out only on a true return, and the
// batched run() path must not change that.
TEST(EmulatorTest, HaltLeavesDynInstrUntouched) {
  std::unique_ptr<Program> P;
  Emulator Emu = runProgram(P, [](IRBuilder &B, Function *) {
    B.loadImm(1, 1);
  });
  ASSERT_TRUE(Emu.isHalted());
  DynInstr D;
  D.I = reinterpret_cast<const Instruction *>(0x1234);
  D.Addr = 0xAAAA;
  D.NextAddr = 0xBBBB;
  D.Taken = true;
  D.MemAddr = 0xCCCC;
  EXPECT_FALSE(Emu.step(D));
  EXPECT_FALSE(Emu.stepReference(D));
  EXPECT_EQ(D.I, reinterpret_cast<const Instruction *>(0x1234));
  EXPECT_EQ(D.Addr, 0xAAAAu);
  EXPECT_EQ(D.NextAddr, 0xBBBBu);
  EXPECT_TRUE(D.Taken);
  EXPECT_EQ(D.MemAddr, 0xCCCCu);
  // And the PC parks on the halting instruction.
  const uint32_t Pc = Emu.pc();
  EXPECT_FALSE(Emu.step(D));
  EXPECT_EQ(Emu.pc(), Pc);
  EXPECT_EQ(Emu.executedCount(), 2u);
}

// Ret with an empty call stack (return from main) halts exactly like Halt.
// Not linted — IR13 requires main to end in halt — but the emulator's
// defensive semantic for it must hold on both stepping paths.
TEST(EmulatorTest, RetInMainHalts) {
  auto P = std::make_unique<Program>("t");
  Function *F = P->createFunction("main");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(*P);
  B.setInsertPoint(Entry);
  B.loadImm(1, 9);
  B.ret();
  P->finalize();
  Emulator Emu(*P, {});
  DynInstr D;
  while (Emu.step(D)) {
  }
  EXPECT_TRUE(Emu.isHalted());
  EXPECT_EQ(Emu.reg(1), 9);
  EXPECT_EQ(Emu.callDepth(), 0u);
}
