#!/bin/sh
# End-to-end CLI contract of the campaign service, driven by ctest:
#
#   serve_cli_test.sh digest      DMP_SERVED DMPC
#       `dmpc --remote` must print a stats digest bit-identical to the
#       local `dmpc --simulate` run of the same spec, and the daemon must
#       exit 143 (exitcode::Terminated) on SIGTERM after draining.
#
#   serve_cli_test.sh worker-kill DMP_SERVED DMPC
#       Same digest contract, but with DMP_SERVE_CRASH_TICKET=0 the worker
#       handling the first dispatched cell dies mid-campaign; the retry
#       must leave both the digest and the client exit code unchanged.
#
#   serve_cli_test.sh sigint      DMP_SERVED DMPC
#       SIGINT drains and exits 130 (exitcode::Interrupted).
set -eu

MODE=$1
SERVED=$2
DMPC=$3

DIR=$(mktemp -d "${TMPDIR:-/tmp}/dmp-serve-cli.XXXXXX")
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

SOCK="$DIR/served.sock"
LOG="$DIR/served.log"
BENCH=mcf
SIM=--sim-instrs=100000

if [ "$MODE" = worker-kill ]; then
  DMP_SERVE_CRASH_TICKET=0
  export DMP_SERVE_CRASH_TICKET
fi

"$SERVED" --socket="$SOCK" --workers=2 --cache-dir="$DIR/cache" \
  >"$LOG" 2>&1 &
PID=$!

i=0
until grep -q listening "$LOG" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: daemon never reported listening"
    cat "$LOG"
    exit 1
  fi
  sleep 0.1
done

if [ "$MODE" = sigint ]; then
  kill -INT "$PID"
  wait "$PID" && CODE=0 || CODE=$?
  PID=""
  if [ "$CODE" -ne 130 ]; then
    echo "FAIL: expected exit 130 after SIGINT, got $CODE"
    cat "$LOG"
    exit 1
  fi
  exit 0
fi

LOCAL=$("$DMPC" "$BENCH" --simulate "$SIM" --cache-dir="$DIR/cache" \
  2>/dev/null | grep '^digest')
REMOTE=$("$DMPC" "$BENCH" --remote="$SOCK" "$SIM" 2>/dev/null | grep '^digest')

if [ -z "$LOCAL" ]; then
  echo "FAIL: local run printed no digest"
  exit 1
fi
if [ "$LOCAL" != "$REMOTE" ]; then
  echo "FAIL: digest mismatch"
  echo "  local : $LOCAL"
  echo "  remote: $REMOTE"
  exit 1
fi

if [ "$MODE" = worker-kill ]; then
  if ! grep -q "died holding ticket 0" "$LOG"; then
    echo "FAIL: the armed worker crash never happened"
    cat "$LOG"
    exit 1
  fi
fi

kill -TERM "$PID"
wait "$PID" && CODE=0 || CODE=$?
PID=""
if [ "$CODE" -ne 143 ]; then
  echo "FAIL: expected exit 143 after SIGTERM, got $CODE"
  cat "$LOG"
  exit 1
fi
exit 0
