#!/bin/sh
# End-to-end CLI contract of the campaign service, driven by ctest:
#
#   serve_cli_test.sh digest      DMP_SERVED DMPC
#       `dmpc --remote` must print a stats digest bit-identical to the
#       local `dmpc --simulate` run of the same spec, and the daemon must
#       exit 143 (exitcode::Terminated) on SIGTERM after draining.
#
#   serve_cli_test.sh worker-kill DMP_SERVED DMPC
#       Same digest contract, but with DMP_SERVE_CRASH_TICKET=0 the worker
#       handling the first dispatched cell dies mid-campaign; the retry
#       must leave both the digest and the client exit code unchanged.
#
#   serve_cli_test.sh sigint      DMP_SERVED DMPC
#       SIGINT drains and exits 130 (exitcode::Interrupted).
#
#   serve_cli_test.sh restart     DMP_SERVED DMPC
#       The daemon is SIGKILLed mid-campaign and restarted on the same
#       socket and job store; the riding `dmpc --remote` must finish with
#       the local digest (DESIGN.md "Recovery & idempotency").
#
#   serve_cli_test.sh sun-path    DMP_SERVED DMPC
#       A socket path beyond the AF_UNIX sun_path limit must be rejected
#       cleanly (nonzero exit, "too long" diagnostic) by daemon and client.
#
#   serve_cli_test.sh hung-worker DMP_SERVED DMPC
#       With DMP_SERVE_HANG_ON_TICKET=0 the worker handling the first
#       dispatched cell wedges silently; the --cell-wall-ms watchdog must
#       SIGKILL it and the retried campaign must finish with the local
#       digest and an unchanged client exit code.
set -eu

MODE=$1
SERVED=$2
DMPC=$3

DIR=$(mktemp -d "${TMPDIR:-/tmp}/dmp-serve-cli.XXXXXX")
PID=""
cleanup() {
  [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

SOCK="$DIR/served.sock"
LOG="$DIR/served.log"
BENCH=mcf
SIM=--sim-instrs=100000

if [ "$MODE" = sun-path ]; then
  # 200 path bytes inside $DIR: past sun_path on every platform we build.
  LONGSOCK="$DIR/$(printf '%0200d' 0).sock"
  if "$SERVED" --socket="$LONGSOCK" --workers=0 >"$LOG" 2>&1; then
    echo "FAIL: daemon accepted an overlong socket path"
    exit 1
  fi
  if ! grep -q "too long" "$LOG"; then
    echo "FAIL: daemon diagnostic does not explain the overlong path"
    cat "$LOG"
    exit 1
  fi
  if "$DMPC" "$BENCH" --remote="$LONGSOCK" "$SIM" >"$LOG" 2>&1; then
    echo "FAIL: dmpc accepted an overlong socket path"
    exit 1
  fi
  if ! grep -q "too long" "$LOG"; then
    echo "FAIL: dmpc diagnostic does not explain the overlong path"
    cat "$LOG"
    exit 1
  fi
  exit 0
fi

if [ "$MODE" = worker-kill ]; then
  DMP_SERVE_CRASH_TICKET=0
  export DMP_SERVE_CRASH_TICKET
fi

WALL=""
if [ "$MODE" = hung-worker ]; then
  DMP_SERVE_HANG_ON_TICKET=0
  export DMP_SERVE_HANG_ON_TICKET
  WALL=--cell-wall-ms=500
fi

# In restart mode the daemon gets its own store: the local digest run must
# not pre-warm the daemon's cache, or the remote campaign would finish
# before the kill ever lands mid-flight.
CACHE="$DIR/cache"
[ "$MODE" = restart ] && CACHE="$DIR/cache-daemon"

"$SERVED" --socket="$SOCK" --workers=2 --cache-dir="$CACHE" $WALL \
  >"$LOG" 2>&1 &
PID=$!

i=0
until grep -q listening "$LOG" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: daemon never reported listening"
    cat "$LOG"
    exit 1
  fi
  sleep 0.1
done

if [ "$MODE" = sigint ]; then
  kill -INT "$PID"
  wait "$PID" && CODE=0 || CODE=$?
  PID=""
  if [ "$CODE" -ne 130 ]; then
    echo "FAIL: expected exit 130 after SIGINT, got $CODE"
    cat "$LOG"
    exit 1
  fi
  exit 0
fi

LOCAL=$("$DMPC" "$BENCH" --simulate "$SIM" --cache-dir="$DIR/cache" \
  2>/dev/null | grep '^digest')

if [ "$MODE" = restart ]; then
  # Launch the remote campaign in the background, SIGKILL the daemon while
  # it may still be mid-flight, and restart it on the same socket and job
  # store.  The client rides the restart (reconnect, epoch check,
  # idempotent resubmit) and must land on the local digest.
  "$DMPC" "$BENCH" --remote="$SOCK" "$SIM" >"$DIR/remote.out" 2>&1 &
  CPID=$!
  sleep 0.2
  kill -9 "$PID" 2>/dev/null
  wait "$PID" 2>/dev/null || true
  "$SERVED" --socket="$SOCK" --workers=2 --cache-dir="$CACHE" \
    >>"$LOG" 2>&1 &
  PID=$!
  wait "$CPID" && RC=0 || RC=$?
  if [ "$RC" -ne 0 ]; then
    echo "FAIL: dmpc --remote exited $RC across the daemon restart"
    cat "$DIR/remote.out"
    cat "$LOG"
    exit 1
  fi
  REMOTE=$(grep '^digest' "$DIR/remote.out")
else
  REMOTE=$("$DMPC" "$BENCH" --remote="$SOCK" "$SIM" 2>/dev/null | grep '^digest')
fi

if [ -z "$LOCAL" ]; then
  echo "FAIL: local run printed no digest"
  exit 1
fi
if [ "$LOCAL" != "$REMOTE" ]; then
  echo "FAIL: digest mismatch"
  echo "  local : $LOCAL"
  echo "  remote: $REMOTE"
  exit 1
fi

if [ "$MODE" = worker-kill ]; then
  if ! grep -q "died holding ticket 0" "$LOG"; then
    echo "FAIL: the armed worker crash never happened"
    cat "$LOG"
    exit 1
  fi
fi

if [ "$MODE" = hung-worker ]; then
  if ! grep -q "hung: no heartbeat" "$LOG"; then
    echo "FAIL: the watchdog never detected the wedged worker"
    cat "$LOG"
    exit 1
  fi
fi

kill -TERM "$PID"
wait "$PID" && CODE=0 || CODE=$?
PID=""
if [ "$CODE" -ne 143 ]; then
  echo "FAIL: expected exit 143 after SIGTERM, got $CODE"
  cat "$LOG"
  exit 1
fi
exit 0
