//===- tests/test_cfg.cpp - CFG analysis unit tests ----------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "cfg/Analysis.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::cfg;

TEST(CFGViewTest, SuccessorsAndPredecessors) {
  auto H = test::buildSimpleHammockLoop();
  CFGView View(*H.Prog->getMain());
  const unsigned HeaderId = H.BranchBlock->getId();
  EXPECT_EQ(View.successors(HeaderId).size(), 2u);
  // Header preds: entry fallthrough + merge back edge.
  EXPECT_EQ(View.predecessors(HeaderId).size(), 2u);
  // Merge preds: fall (jmp) + taken (fallthrough).
  EXPECT_EQ(View.predecessors(H.Merge->getId()).size(), 2u);
}

TEST(CFGViewTest, ReversePostorderStartsAtEntry) {
  auto H = test::buildFreqHammockLoop();
  CFGView View(*H.Prog->getMain());
  const auto &RPO = View.reversePostorder();
  ASSERT_FALSE(RPO.empty());
  EXPECT_EQ(RPO.front(), H.Prog->getMain()->getEntry());
  // Every reachable block appears exactly once.
  EXPECT_EQ(RPO.size(), H.Prog->getMain()->blockCount());
}

TEST(CFGViewTest, AllBlocksReachableInTestPrograms) {
  auto H = test::buildRetFuncLoop();
  for (const auto &F : H.Prog->functions()) {
    CFGView View(*F);
    for (const auto &Block : F->blocks())
      EXPECT_TRUE(View.isReachable(Block.get()))
          << F->getName() << "/" << Block->getName();
  }
}

TEST(DominatorTest, EntryDominatesEverything) {
  auto H = test::buildFreqHammockLoop();
  const ir::Function &F = *H.Prog->getMain();
  CFGView View(F);
  DominatorTree DT(View);
  for (const auto &Block : F.blocks())
    EXPECT_TRUE(DT.dominates(F.getEntry(), Block.get()));
}

TEST(DominatorTest, DiamondIdoms) {
  auto H = test::buildSimpleHammockLoop();
  const ir::Function &F = *H.Prog->getMain();
  CFGView View(F);
  DominatorTree DT(View);
  EXPECT_EQ(DT.idom(H.TakenSide), H.BranchBlock);
  EXPECT_EQ(DT.idom(H.FallSide), H.BranchBlock);
  EXPECT_EQ(DT.idom(H.Merge), H.BranchBlock);
  EXPECT_TRUE(DT.dominates(H.BranchBlock, H.Merge));
  EXPECT_FALSE(DT.dominates(H.TakenSide, H.Merge));
}

TEST(PostDominatorTest, MergePostDominatesHammock) {
  auto H = test::buildSimpleHammockLoop();
  const ir::Function &F = *H.Prog->getMain();
  CFGView View(F);
  PostDominatorTree PDT(View);
  // The IPOSDOM of the branch block is the merge block: the paper's
  // "exact CFM point" (Section 3.1).
  EXPECT_EQ(PDT.ipostdom(H.BranchBlock), H.Merge);
  EXPECT_TRUE(PDT.postDominates(H.Merge, H.TakenSide));
  EXPECT_TRUE(PDT.postDominates(H.Merge, H.FallSide));
  EXPECT_FALSE(PDT.postDominates(H.TakenSide, H.BranchBlock));
}

TEST(PostDominatorTest, FreqHammockIposdomIsEnd) {
  auto H = test::buildFreqHammockLoop();
  const ir::Function &F = *H.Prog->getMain();
  CFGView View(F);
  PostDominatorTree PDT(View);
  // The rare path bypasses the frequent merge, so the IPOSDOM is End, not
  // Merge — the structural signature of a frequently-hammock.
  EXPECT_EQ(PDT.ipostdom(H.BranchBlock), H.End);
  EXPECT_FALSE(PDT.postDominates(H.Merge, H.BranchBlock));
}

TEST(PostDominatorTest, DifferentReturnsHaveNoIposdom) {
  auto H = test::buildRetFuncLoop();
  const ir::Function *Callee = H.Prog->findFunction("f");
  ASSERT_NE(Callee, nullptr);
  CFGView View(*Callee);
  PostDominatorTree PDT(View);
  // Both paths end in different returns: control only rejoins at the
  // virtual exit, so there is no IPOSDOM (the return-CFM case, 3.5).
  EXPECT_EQ(PDT.ipostdom(H.BranchBlock), nullptr);
}

TEST(LoopInfoTest, FindsSelfLoop) {
  auto H = test::buildDataLoop();
  const ir::Function &F = *H.Prog->getMain();
  CFGView View(F);
  DominatorTree DT(View);
  LoopInfo LI(View, DT);
  // Two loops: the inner self-loop and the outer loop.
  ASSERT_EQ(LI.loops().size(), 2u);
  const Loop *Inner = LI.loopFor(H.BranchBlock);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->getHeader(), H.BranchBlock);
  EXPECT_EQ(Inner->blocks().size(), 1u);
  EXPECT_EQ(Inner->getDepth(), 2u);
  EXPECT_NE(Inner->getParent(), nullptr);
}

TEST(LoopInfoTest, ExitBranches) {
  auto H = test::buildDataLoop();
  const ir::Function &F = *H.Prog->getMain();
  CFGView View(F);
  DominatorTree DT(View);
  LoopInfo LI(View, DT);
  const Loop *Inner = LI.loopWithHeader(H.BranchBlock);
  ASSERT_NE(Inner, nullptr);
  auto Exits = Inner->exitBranches();
  ASSERT_EQ(Exits.size(), 1u);
  EXPECT_EQ(Exits[0]->Addr, H.BranchAddr);
}

TEST(LoopInfoTest, BodySizeAndWrittenRegs) {
  auto H = test::buildDataLoop(/*BodyLen=*/4);
  const ir::Function &F = *H.Prog->getMain();
  CFGView View(F);
  DominatorTree DT(View);
  LoopInfo LI(View, DT);
  const Loop *Inner = LI.loopWithHeader(H.BranchBlock);
  ASSERT_NE(Inner, nullptr);
  // 4 filler + addi + condbr.
  EXPECT_EQ(Inner->bodyInstrCount(), 6u);
  // Filler writes r8..r11 (window of 4) plus the counter r6.
  EXPECT_EQ(Inner->writtenRegCount(), 5u);
}

TEST(LoopInfoTest, NoLoopsInStraightLineHammock) {
  auto H = test::buildSimpleHammockLoop();
  const ir::Function &F = *H.Prog->getMain();
  CFGView View(F);
  DominatorTree DT(View);
  LoopInfo LI(View, DT);
  // Only the outer header loop exists.
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_TRUE(LI.loops()[0]->contains(H.Merge));
  EXPECT_TRUE(LI.loops()[0]->contains(H.TakenSide));
}

TEST(ProgramAnalysisTest, CachesPerFunction) {
  auto H = test::buildRetFuncLoop();
  ProgramAnalysis PA(*H.Prog);
  const FunctionAnalysis &MainFA = PA.forFunction(*H.Prog->getMain());
  const FunctionAnalysis &MainFA2 = PA.forFunction(*H.Prog->getMain());
  EXPECT_EQ(&MainFA, &MainFA2);
  EXPECT_EQ(&PA.atAddr(0), &MainFA);
  const ir::Function *Callee = H.Prog->findFunction("f");
  EXPECT_EQ(&PA.atAddr(Callee->getEntryAddr()), &PA.forFunction(*Callee));
}

TEST(ProgramAnalysisTest, InnermostLoopAt) {
  auto H = test::buildDataLoop();
  ProgramAnalysis PA(*H.Prog);
  const Loop *L = PA.innermostLoopAt(H.BranchAddr);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->getHeader(), H.BranchBlock);
  EXPECT_EQ(PA.innermostLoopAt(0), nullptr); // entry block
}
