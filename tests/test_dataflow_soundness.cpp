//===- tests/test_dataflow_soundness.cpp - Dataflow vs emulator ground truth -===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// The dynamic half of the dataflow tier: every retired instruction of the
// reference emulator is checked against the ProgramDataflow claims
// (definite assignment and liveness, with the call-site live-after
// substitution) over the full 17-workload suite and ~200 fuzz recipes.  A
// single retired contradiction of either claim family fails the run.
//
// The canary tests close the loop on the harness itself: a deliberately
// corrupted claim table must be *caught* — without them, an accidentally
// empty claim table (which is vacuously sound) would pass silently.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "check/ProgramGen.h"
#include "dataflow/Soundness.h"
#include "profile/Emulator.h"
#include "workloads/SpecSuite.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace dmp;
using dataflow::AllRegs;
using dataflow::RegSet;
using dataflow::regBit;
using dataflow::ZeroRegBit;

//===----------------------------------------------------------------------===//
// The 17-workload suite
//===----------------------------------------------------------------------===//

TEST(DataflowSoundnessTest, AllWorkloadsRetireNoContradiction) {
  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
    const workloads::Workload W = workloads::buildBenchmark(Spec);
    const dataflow::ProgramDataflow PD(*W.Prog);
    const dataflow::SoundnessResult R = dataflow::checkSoundness(
        *W.Prog, PD, W.buildImage(workloads::InputSetKind::Run),
        /*MaxInstrs=*/200'000);
    EXPECT_TRUE(R.sound()) << Spec.Name << ": " << R.FirstViolation;
    EXPECT_GT(R.Retired, 0u) << Spec.Name;
    EXPECT_GT(R.ClaimsChecked, 0u) << Spec.Name;
  }
}

TEST(DataflowSoundnessTest, TrainInputSetAlsoSound) {
  // Different input set, different executed paths: the static claims must
  // hold on both (they quantify over *all* paths).
  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
    const workloads::Workload W = workloads::buildBenchmark(Spec);
    const dataflow::ProgramDataflow PD(*W.Prog);
    const dataflow::SoundnessResult R = dataflow::checkSoundness(
        *W.Prog, PD, W.buildImage(workloads::InputSetKind::Train),
        /*MaxInstrs=*/100'000);
    EXPECT_TRUE(R.sound()) << Spec.Name << ": " << R.FirstViolation;
  }
}

//===----------------------------------------------------------------------===//
// Fuzz recipes
//===----------------------------------------------------------------------===//

TEST(DataflowSoundnessTest, TwoHundredFuzzRecipesSound) {
  uint64_t TotalRetired = 0;
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    const check::GenProgram G = check::materialize(check::randomRecipe(Seed));
    ASSERT_TRUE(G.VerifyErrors.empty()) << "seed " << Seed;
    const dataflow::ProgramDataflow PD(*G.Prog);
    const dataflow::SoundnessResult R =
        dataflow::checkSoundness(*G.Prog, PD, G.Image, /*MaxInstrs=*/50'000);
    ASSERT_TRUE(R.sound()) << "seed " << Seed << ": " << R.FirstViolation;
    TotalRetired += R.Retired;
  }
  // The campaign must have exercised real execution, not 200 early halts.
  // (Generated recipes average ~2k retired instructions each.)
  EXPECT_GT(TotalRetired, 100'000u);
}

TEST(DataflowSoundnessTest, HandBuiltShapesSound) {
  struct Case {
    const char *Name;
    test::ProgramHandles H;
  };
  std::vector<Case> Cases;
  Cases.push_back({"simple-hammock", test::buildSimpleHammockLoop()});
  Cases.push_back({"freq-hammock", test::buildFreqHammockLoop()});
  Cases.push_back({"data-loop", test::buildDataLoop()});
  Cases.push_back({"ret-func", test::buildRetFuncLoop()});
  const std::vector<int64_t> Image = test::alternatingImage(4096, 3);
  for (const Case &C : Cases) {
    const dataflow::ProgramDataflow PD(*C.H.Prog);
    const dataflow::SoundnessResult R =
        dataflow::checkSoundness(*C.H.Prog, PD, Image, /*MaxInstrs=*/100'000);
    EXPECT_TRUE(R.sound()) << C.Name << ": " << R.FirstViolation;
    EXPECT_GT(R.Retired, 0u) << C.Name;
  }
}

//===----------------------------------------------------------------------===//
// Canaries: corrupted claims must be detected
//===----------------------------------------------------------------------===//

namespace {

/// Feeds the whole execution of \p P on \p Image through \p Checker.
dataflow::SoundnessResult drive(const ir::Program &P,
                                dataflow::SoundnessChecker &Checker,
                                const std::vector<int64_t> &Image,
                                uint64_t MaxInstrs) {
  profile::Emulator Emu(P, Image);
  profile::DynInstr D;
  for (uint64_t I = 0; I < MaxInstrs && Emu.step(D); ++I)
    Checker.retire(D);
  return Checker.result();
}

/// All-permissive claim tables: claim nothing assigned (beyond r0) and
/// nothing dead.  Vacuously sound on any execution.
struct PermissiveClaims {
  std::vector<RegSet> Assigned;
  std::vector<RegSet> Live;

  explicit PermissiveClaims(const ir::Program &P)
      : Assigned(P.instrCount(), ZeroRegBit), Live(P.instrCount(), AllRegs) {}
};

} // namespace

TEST(DataflowSoundnessCanaryTest, PermissiveClaimsAreVacuouslySound) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  const PermissiveClaims C(*H.Prog);
  dataflow::SoundnessChecker Checker(*H.Prog, C.Assigned, C.Live);
  const dataflow::SoundnessResult R =
      drive(*H.Prog, Checker, test::alternatingImage(4096, 3), 50'000);
  EXPECT_TRUE(R.sound()) << R.FirstViolation;
  EXPECT_GT(R.Retired, 0u);
}

TEST(DataflowSoundnessCanaryTest, FabricatedAssignedClaimIsCaught) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  PermissiveClaims C(*H.Prog);
  // The very first retired instruction is main's entry instruction; at
  // that point only r0 has ever been written, so claiming r7 assigned
  // there is a lie the trace must expose immediately.
  const uint32_t EntryAddr =
      H.Prog->functions().front()->getEntry()->getStartAddr();
  C.Assigned[EntryAddr] |= regBit(7);
  dataflow::SoundnessChecker Checker(*H.Prog, C.Assigned, C.Live);
  const dataflow::SoundnessResult R =
      drive(*H.Prog, Checker, test::alternatingImage(4096, 3), 50'000);
  EXPECT_FALSE(R.sound());
  EXPECT_NE(R.FirstViolation.find("definite-assignment"), std::string::npos)
      << R.FirstViolation;
  EXPECT_NE(R.FirstViolation.find("r7"), std::string::npos)
      << R.FirstViolation;
}

TEST(DataflowSoundnessCanaryTest, FabricatedDeadClaimIsCaught) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  PermissiveClaims C(*H.Prog);
  // The header's load writes r3 and the header branch then reads it:
  // claiming r3 dead right after the load must be exposed by that read.
  const ir::Instruction &Load = H.BranchBlock->instructions().front();
  ASSERT_EQ(Load.Op, ir::Opcode::Load);
  ASSERT_EQ(Load.Dst, 3u);
  C.Live[Load.Addr] &= ~regBit(3);
  dataflow::SoundnessChecker Checker(*H.Prog, C.Assigned, C.Live);
  const dataflow::SoundnessResult R =
      drive(*H.Prog, Checker, test::alternatingImage(4096, 3), 50'000);
  EXPECT_FALSE(R.sound());
  EXPECT_NE(R.FirstViolation.find("liveness"), std::string::npos)
      << R.FirstViolation;
  EXPECT_NE(R.FirstViolation.find("r3"), std::string::npos)
      << R.FirstViolation;
}

TEST(DataflowSoundnessCanaryTest, CheckerStopsAtFirstViolationButCounts) {
  const test::ProgramHandles H = test::buildSimpleHammockLoop();
  PermissiveClaims C(*H.Prog);
  const uint32_t EntryAddr =
      H.Prog->functions().front()->getEntry()->getStartAddr();
  C.Assigned[EntryAddr] |= regBit(7);
  dataflow::SoundnessChecker Checker(*H.Prog, C.Assigned, C.Live);

  profile::Emulator Emu(*H.Prog, test::alternatingImage(4096, 3));
  profile::DynInstr D;
  ASSERT_TRUE(Emu.step(D));
  EXPECT_FALSE(Checker.retire(D)); // First retirement trips the canary.
  // Feeding more retirements stays valid and keeps counting.
  ASSERT_TRUE(Emu.step(D));
  Checker.retire(D);
  EXPECT_GE(Checker.result().Retired, 2u);
  EXPECT_GE(Checker.result().Violations, 1u);
}
