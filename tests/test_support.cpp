//===- tests/test_support.cpp - Support library unit tests --------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"
#include "support/MathExtras.h"
#include "support/RNG.h"
#include "support/Saturating.h"
#include "support/Statistic.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace dmp;

TEST(RNGTest, DeterministicForSeed) {
  RNG A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNGTest, DifferentSeedsDiffer) {
  RNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 2);
}

TEST(RNGTest, NextBelowInRange) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(RNGTest, NextInRangeInclusive) {
  RNG R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    const int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= (V == -3);
    SawHi |= (V == 3);
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNGTest, NextDoubleUnitInterval) {
  RNG R(11);
  double Sum = 0.0;
  for (int I = 0; I < 10000; ++I) {
    const double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(RNGTest, NextBoolMatchesProbability) {
  RNG R(13);
  int True70 = 0;
  for (int I = 0; I < 10000; ++I)
    True70 += R.nextBool(0.7);
  EXPECT_NEAR(True70 / 10000.0, 0.7, 0.03);
  EXPECT_FALSE(R.nextBool(0.0));
  EXPECT_TRUE(R.nextBool(1.0));
}

TEST(RNGTest, ForkIndependentStreams) {
  RNG Parent(99);
  RNG Child = Parent.fork();
  EXPECT_NE(Parent.next(), Child.next());
}

TEST(SaturatingCounterTest, SaturatesAtBounds) {
  SaturatingCounter<2> C;
  EXPECT_EQ(C.get(), 0);
  C.decrement();
  EXPECT_EQ(C.get(), 0);
  for (int I = 0; I < 10; ++I)
    C.increment();
  EXPECT_EQ(C.get(), 3);
  EXPECT_TRUE(C.isSaturated());
  C.decrement();
  EXPECT_EQ(C.get(), 2);
  EXPECT_TRUE(C.isWeaklySet());
  C.decrement();
  EXPECT_EQ(C.get(), 1);
  EXPECT_FALSE(C.isWeaklySet());
}

TEST(SaturatingWeightTest, ClampsToRange) {
  SaturatingWeight<-8, 7> W;
  for (int I = 0; I < 100; ++I)
    W.add(1);
  EXPECT_EQ(W.get(), 7);
  for (int I = 0; I < 100; ++I)
    W.add(-1);
  EXPECT_EQ(W.get(), -8);
}

TEST(MathExtrasTest, PowerOfTwo) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(1024));
  EXPECT_FALSE(isPowerOf2(1023));
}

TEST(MathExtrasTest, Log2) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(4096), 12u);
  EXPECT_EQ(log2Floor(4097), 12u);
  EXPECT_EQ(log2Ceil(4096), 12u);
  EXPECT_EQ(log2Ceil(4097), 13u);
}

TEST(MathExtrasTest, GeomeanAndMean) {
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(safeDiv(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safeDiv(6.0, 3.0), 2.0);
}

TEST(StatisticTest, CountersAccumulateAndIterateInOrder) {
  StatisticSet Stats;
  Stats.counter("fetch.cycles") += 10;
  Stats.add("retired", 5);
  Stats.counter("fetch.cycles") += 1;
  EXPECT_EQ(Stats.get("fetch.cycles"), 11u);
  EXPECT_EQ(Stats.get("retired"), 5u);
  EXPECT_EQ(Stats.get("missing"), 0u);
  ASSERT_EQ(Stats.entries().size(), 2u);
  EXPECT_EQ(Stats.entries()[0].first, "fetch.cycles");
  Stats.clear();
  EXPECT_EQ(Stats.get("fetch.cycles"), 0u);
  EXPECT_EQ(Stats.entries().size(), 2u);
}

TEST(StatisticTest, ConcurrentIncrementsAndRegistrations) {
  // Parallel experiment tasks bump counters on a shared set while new
  // counters register; no increment may be lost and no reference may dangle
  // (the seed's vector storage invalidated references on growth).
  StatisticSet Stats;
  std::atomic<uint64_t> &Shared = Stats.counter("shared");
  constexpr int NumThreads = 8;
  constexpr uint64_t PerThread = 10'000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&Stats, &Shared, T] {
      const std::string Mine = "thread." + std::to_string(T);
      for (uint64_t I = 0; I < PerThread; ++I) {
        Shared.fetch_add(1, std::memory_order_relaxed);
        Stats.add(Mine, 1);
        // Register fresh names mid-flight to force registry growth.
        if (I % 1000 == 0)
          Stats.counter(Mine + "." + std::to_string(I));
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Stats.get("shared"), NumThreads * PerThread);
  for (int T = 0; T < NumThreads; ++T)
    EXPECT_EQ(Stats.get("thread." + std::to_string(T)), PerThread);
}

TEST(HistogramTest, BasicMoments) {
  Histogram H;
  EXPECT_EQ(H.average(), 0.0);
  H.addSample(1);
  H.addSample(3);
  H.addSample(3);
  H.addSample(5);
  EXPECT_EQ(H.sampleCount(), 4u);
  EXPECT_DOUBLE_EQ(H.average(), 3.0);
  EXPECT_EQ(H.minValue(), 1u);
  EXPECT_EQ(H.maxValue(), 5u);
  EXPECT_DOUBLE_EQ(H.fractionAbove(3), 0.25);
  EXPECT_EQ(H.percentile(0.5), 3u);
}

TEST(StringUtilsTest, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatPercent(0.204), "+20.4%");
  EXPECT_EQ(formatPercent(-0.005), "-0.5%");
  EXPECT_EQ(formatDouble(3.14159, 3), "3.142");
}

TEST(StringUtilsTest, SplitString) {
  const auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(TableTest, RendersAlignedColumns) {
  Table T({"bench", "ipc"});
  T.addRow({"gzip", "2.10"});
  T.addSeparator();
  T.addRow({"mcf", "0.45"});
  const std::string Out = T.render();
  EXPECT_NE(Out.find("bench"), std::string::npos);
  EXPECT_NE(Out.find("2.10"), std::string::npos);
  EXPECT_NE(Out.find("-+-"), std::string::npos);
  EXPECT_EQ(T.rowCount(), 3u);
}
