//===- tests/test_uarch.cpp - Microarchitecture component tests ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/RNG.h"
#include "uarch/BTB.h"
#include "uarch/BranchPredictor.h"
#include "uarch/Cache.h"
#include "uarch/ConfidenceEstimator.h"
#include "uarch/ReturnAddressStack.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::uarch;

namespace {

/// Feeds a predictor a stream from a generator; returns the accuracy over
/// the final half of the stream (after warmup).
template <typename Gen>
double trainedAccuracy(BranchPredictor &P, uint32_t Addr, unsigned N,
                       Gen NextOutcome) {
  unsigned Correct = 0, Measured = 0;
  for (unsigned I = 0; I < N; ++I) {
    const bool Outcome = NextOutcome(I);
    const bool Predicted = P.predict(Addr);
    if (I >= N / 2) {
      ++Measured;
      Correct += (Predicted == Outcome);
    }
    P.update(Addr, Outcome);
  }
  return static_cast<double>(Correct) / Measured;
}

} // namespace

TEST(PerceptronTest, LearnsBiasedBranch) {
  PerceptronPredictor P;
  EXPECT_GT(trainedAccuracy(P, 100, 2000, [](unsigned) { return true; }),
            0.99);
  PerceptronPredictor Q;
  EXPECT_GT(trainedAccuracy(Q, 100, 2000, [](unsigned) { return false; }),
            0.99);
}

TEST(PerceptronTest, LearnsAlternatingViaHistory) {
  PerceptronPredictor P;
  EXPECT_GT(
      trainedAccuracy(P, 5, 4000, [](unsigned I) { return (I % 2) == 0; }),
      0.95);
}

TEST(PerceptronTest, RandomStreamNearChance) {
  PerceptronPredictor P;
  RNG Rng(3);
  const double Acc = trainedAccuracy(
      P, 9, 4000, [&Rng](unsigned) { return Rng.nextBool(0.5); });
  EXPECT_LT(Acc, 0.65);
  EXPECT_GT(Acc, 0.35);
}

TEST(PerceptronTest, HistoryAdvances) {
  PerceptronPredictor P;
  EXPECT_EQ(P.history(), 0u);
  P.update(1, true);
  P.update(1, false);
  P.update(1, true);
  EXPECT_EQ(P.history() & 0x7, 0b101u);
}

TEST(GShareTest, LearnsBiasedBranch) {
  GSharePredictor P;
  EXPECT_GT(trainedAccuracy(P, 42, 2000, [](unsigned) { return true; }),
            0.99);
}

TEST(GShareTest, ResetClearsState) {
  GSharePredictor P;
  for (int I = 0; I < 100; ++I)
    P.update(7, false);
  EXPECT_FALSE(P.predict(7));
  P.reset();
  EXPECT_TRUE(P.predict(7)); // weakly-taken initial state
  EXPECT_EQ(P.history(), 0u);
}

TEST(ConfidenceTest, StartsHighConfidence) {
  ConfidenceEstimator C;
  EXPECT_FALSE(C.isLowConfidence(123));
}

TEST(ConfidenceTest, MispredictionDropsConfidence) {
  ConfidenceEstimator C(/*IndexBits=*/12, /*HistoryBits=*/0,
                        /*Threshold=*/14);
  C.update(50, /*PredictedCorrectly=*/false, /*Taken=*/true);
  EXPECT_TRUE(C.isLowConfidence(50));
  // 13 correct predictions: still below threshold 14.
  for (int I = 0; I < 13; ++I)
    C.update(50, true, true);
  EXPECT_TRUE(C.isLowConfidence(50));
  C.update(50, true, true);
  EXPECT_FALSE(C.isLowConfidence(50));
}

TEST(ConfidenceTest, MeasuresPVN) {
  ConfidenceEstimator C(/*IndexBits=*/12, /*HistoryBits=*/0,
                        /*Threshold=*/14);
  // Make branch low-confidence, then resolve 1 misprediction and 3 correct
  // while low confidence.
  C.update(9, false, true);
  C.update(9, false, true);
  C.update(9, true, true);
  C.update(9, true, true);
  // Low-conf events: the second misp + 2 correct + ... verify PVN in (0,1).
  EXPECT_GT(C.measuredAccConf(), 0.0);
  EXPECT_LT(C.measuredAccConf(), 1.0);
  EXPECT_GT(C.lowConfidenceCount(), 0u);
}

TEST(BTBTest, HitAfterUpdate) {
  BTB T(256);
  uint32_t Target = 0;
  EXPECT_FALSE(T.lookup(10, Target));
  T.update(10, 999);
  EXPECT_TRUE(T.lookup(10, Target));
  EXPECT_EQ(Target, 999u);
  EXPECT_EQ(T.hitCount(), 1u);
  EXPECT_EQ(T.missCount(), 1u);
}

TEST(BTBTest, ConflictEviction) {
  BTB T(256);
  T.update(5, 100);
  T.update(5 + 256, 200); // same set, different tag
  uint32_t Target = 0;
  EXPECT_FALSE(T.lookup(5, Target));
  EXPECT_TRUE(T.lookup(5 + 256, Target));
  EXPECT_EQ(Target, 200u);
}

TEST(RASTest, LifoOrder) {
  ReturnAddressStack R(8);
  R.push(1);
  R.push(2);
  R.push(3);
  EXPECT_EQ(R.top(), 3u);
  EXPECT_EQ(R.pop(), 3u);
  EXPECT_EQ(R.pop(), 2u);
  EXPECT_EQ(R.pop(), 1u);
  EXPECT_EQ(R.pop(), 0u); // underflow
}

TEST(RASTest, OverflowWrapsOldest) {
  ReturnAddressStack R(4);
  for (uint32_t I = 1; I <= 6; ++I)
    R.push(I);
  // Only the last 4 survive: 6,5,4,3.
  EXPECT_EQ(R.pop(), 6u);
  EXPECT_EQ(R.pop(), 5u);
  EXPECT_EQ(R.pop(), 4u);
  EXPECT_EQ(R.pop(), 3u);
  EXPECT_EQ(R.pop(), 0u);
}

TEST(CacheTest, HitAfterFill) {
  Cache C(/*SizeBytes=*/1024, /*Assoc=*/2, /*LineBytes=*/64,
          /*HitLatency=*/2);
  EXPECT_FALSE(C.access(0));
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(63)); // same line
  EXPECT_FALSE(C.access(64));
  EXPECT_EQ(C.missCount(), 2u);
  EXPECT_EQ(C.accessCount(), 4u);
}

TEST(CacheTest, LruEviction) {
  // 2-way, 64B lines, 2 sets (256B total).
  Cache C(256, 2, 64, 2);
  // Set 0 lines: 0, 128, 256 ... fill two ways then touch a third.
  C.access(0);
  C.access(128);
  C.access(0);   // 0 is now MRU
  C.access(256); // evicts 128
  EXPECT_TRUE(C.access(0));
  EXPECT_FALSE(C.access(128));
}

TEST(MemoryHierarchyTest, LatencyLevels) {
  MemoryConfig Config;
  MemoryHierarchy M(Config);
  const unsigned Cold = M.loadLatency(0);
  EXPECT_EQ(Cold, Config.DL1Latency + Config.L2Latency +
                      Config.MemoryLatency);
  const unsigned Warm = M.loadLatency(0);
  EXPECT_EQ(Warm, Config.DL1Latency);
  // L2 hit: evict from DL1 by touching many lines mapping to one set.
  const unsigned ColdFetch = M.fetchLatency(1 << 20);
  EXPECT_EQ(ColdFetch,
            Config.IL1Latency + Config.L2Latency + Config.MemoryLatency);
  EXPECT_EQ(M.fetchLatency(1 << 20), Config.IL1Latency);
}
