//===- tests/test_dotexport.cpp - Graphviz export tests -----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "cfg/DotExport.h"
#include "core/DivergeSelector.h"
#include "profile/Profiler.h"
#include "support/RNG.h"
#include "workloads/SpecSuite.h"

#include <algorithm>

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::cfg;

TEST(DotExportTest, PlainGraphStructure) {
  auto H = test::buildSimpleHammockLoop();
  const std::string Dot = exportFunctionDot(*H.Prog->getMain());
  EXPECT_NE(Dot.find("digraph \"main\""), std::string::npos);
  // One node per block.
  for (const auto &Block : H.Prog->getMain()->blocks())
    EXPECT_NE(Dot.find(Block->getName()), std::string::npos);
  // The hammock branch has T and NT edges.
  EXPECT_NE(Dot.find("label=\"T"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"NT"), std::string::npos);
  EXPECT_NE(Dot.find("}\n"), std::string::npos);
}

TEST(DotExportTest, EdgeProbabilitiesAndSelection) {
  auto H = test::buildSimpleHammockLoop();
  cfg::ProgramAnalysis PA(*H.Prog);
  std::vector<int64_t> Image(8192, 0);
  RNG Rng(3);
  for (auto &W : Image)
    W = Rng.nextBool(0.5);
  auto Prof = profile::collectProfile(*H.Prog, PA, Image);
  core::SelectionConfig Config;
  const core::DivergeMap Map = core::selectDivergeBranches(
      PA, Prof, Config, core::SelectionFeatures::allBestHeur());
  ASSERT_TRUE(Map.contains(H.BranchAddr));

  DotOptions Options;
  Options.Edges = &Prof.Edges;
  Options.Diverge = &Map;
  const std::string Dot = exportFunctionDot(*H.Prog->getMain(), Options);
  // The diverge branch block is highlighted and the CFM block filled.
  EXPECT_NE(Dot.find("peripheries=2"), std::string::npos);
  EXPECT_NE(Dot.find("fillcolor=lightblue"), std::string::npos);
  // Probabilities rendered on branch edges (two decimals).
  EXPECT_NE(Dot.find("label=\"T 0."), std::string::npos);
}

TEST(DotExportTest, BalancedBracesForWholeSuiteFunctions) {
  const workloads::Workload W = workloads::buildByName("go");
  for (const auto &F : W.Prog->functions()) {
    const std::string Dot = exportFunctionDot(*F);
    const size_t Open = std::count(Dot.begin(), Dot.end(), '{');
    const size_t Close = std::count(Dot.begin(), Dot.end(), '}');
    EXPECT_EQ(Open, Close) << F->getName();
    EXPECT_EQ(Dot.rfind("}\n"), Dot.size() - 2) << F->getName();
  }
}
