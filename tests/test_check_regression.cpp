//===- tests/test_check_regression.cpp - Checked-in minimized fuzz repros -----===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Minimized repro cases found (or proven detectable) by the fuzz_dmp
// differential oracle, checked in so they can never regress silently.
//
// Campaign log: ~5500 seeds across budgets (300k default, 50k, and a 777-
// instruction truncation run that forces mid-episode termination) produced
// zero genuine retired-state divergences — the simulator derives its
// correct-path stream from the same reference emulator, so architectural
// divergence can only come from state-extraction or accounting bugs.  The
// oracle's sensitivity is therefore pinned by the injected-fault canary
// below: the minimized recipe (reduced by check::reduceRecipe from seed 0,
// 2000-check budget) must be flagged under each fault and pass clean
// without one.
//
//===----------------------------------------------------------------------===//

#include "cfg/Analysis.h"
#include "check/Oracle.h"
#include "check/ProgramGen.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::check;

namespace {

/// Minimized dmp::check fuzz repro: seed=0x0 iters=1 ops=[]
/// (emitted by `fuzz_dmp --fault=2 --expect-divergence --reduce`).
/// The smallest generated program: outer-loop skeleton only — one latch
/// store plus the exit store — which is already enough retired state for
/// both canary faults to be observable.
inline dmp::check::GenRecipe buildReproCanarySeed0() {
  dmp::check::GenRecipe R;
  R.Seed = 0x0ULL;
  R.OuterIters = 1;
  return R;
}

OracleReport runRepro(unsigned Fault) {
  const GenProgram G = materialize(buildReproCanarySeed0());
  EXPECT_TRUE(G.VerifyErrors.empty());
  const cfg::ProgramAnalysis PA(*G.Prog);
  OracleOptions Opts;
  Opts.MaxInstrs = 60'000;
  Opts.InjectFault = Fault;
  return runOracle(*G.Prog, PA, G.Image, Opts);
}

} // namespace

TEST(CheckRegressionTest, MinimizedReproPassesCleanOracle) {
  const OracleReport Report = runRepro(/*Fault=*/0);
  EXPECT_TRUE(Report.ok()) << Report.summary();
}

TEST(CheckRegressionTest, MinimizedReproTripsDroppedStoreCanary) {
  const OracleReport Report = runRepro(/*Fault=*/1);
  EXPECT_FALSE(Report.ok());
  EXPECT_NE(Report.summary().find("store"), std::string::npos)
      << Report.summary();
}

TEST(CheckRegressionTest, MinimizedReproTripsRegisterFlipCanary) {
  const OracleReport Report = runRepro(/*Fault=*/2);
  EXPECT_FALSE(Report.ok());
  EXPECT_NE(Report.summary().find("r1"), std::string::npos)
      << Report.summary();
}
