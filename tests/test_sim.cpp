//===- tests/test_sim.cpp - Cycle simulator tests ------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "core/DivergeSelector.h"
#include "profile/Profiler.h"
#include "sim/Simulator.h"
#include "sim/WrongPathWalker.h"
#include "profile/Emulator.h"
#include "workloads/SpecSuite.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::sim;

namespace {

std::vector<int64_t> randomImage(size_t Words, double P, uint64_t Seed = 21) {
  std::vector<int64_t> Image(Words, 0);
  RNG Rng(Seed);
  for (auto &W : Image)
    W = Rng.nextBool(P);
  return Image;
}

core::DivergeMap selectAll(const test::ProgramHandles &H,
                           const std::vector<int64_t> &Image) {
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profile::collectProfile(*H.Prog, PA, Image);
  core::SelectionConfig Config;
  return core::selectDivergeBranches(PA, Prof, Config,
                                     core::SelectionFeatures::allBestHeur());
}

} // namespace

TEST(SimTest, RetiresEveryInstruction) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/4, /*Iters=*/128);
  const auto Image = randomImage(8192, 0.5);
  const SimStats Stats = simulateBaseline(*H.Prog, Image);
  profile::Emulator Emu(*H.Prog, Image);
  profile::DynInstr D;
  while (Emu.step(D)) {
  }
  EXPECT_EQ(Stats.RetiredInstrs, Emu.executedCount());
  EXPECT_GT(Stats.Cycles, 0u);
  EXPECT_GT(Stats.ipc(), 0.1);
  EXPECT_LT(Stats.ipc(), 8.0);
}

TEST(SimTest, MispredictionsCostCycles) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/4, /*Iters=*/1024);
  const SimStats Easy =
      simulateBaseline(*H.Prog, std::vector<int64_t>(8192, 0));
  const SimStats Hard = simulateBaseline(*H.Prog, randomImage(8192, 0.5));
  EXPECT_GT(Hard.Mispredictions, Easy.Mispredictions);
  EXPECT_LT(Hard.ipc(), Easy.ipc());
  // A misprediction costs at least the front-end depth worth of cycles.
  const double ExtraCycles =
      static_cast<double>(Hard.Cycles) - static_cast<double>(Easy.Cycles);
  EXPECT_GT(ExtraCycles / Hard.Mispredictions, 15.0);
}

TEST(SimTest, BaselineNeverEntersDpred) {
  auto H = test::buildSimpleHammockLoop();
  const SimStats Stats =
      simulateBaseline(*H.Prog, randomImage(8192, 0.5));
  EXPECT_EQ(Stats.DpredEntries, 0u);
  EXPECT_EQ(Stats.Flushes, Stats.Mispredictions + Stats.RasMispredicts);
}

TEST(SimTest, DmpSavesFlushesOnHardHammock) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/4, /*Iters=*/2048);
  const auto Image = randomImage(8192, 0.5);
  const core::DivergeMap Map = selectAll(H, Image);
  ASSERT_TRUE(Map.contains(H.BranchAddr));

  const SimStats Base = simulateBaseline(*H.Prog, Image);
  const SimStats Dmp = simulateDmp(*H.Prog, Map, Image);
  EXPECT_GT(Dmp.DpredEntries, 0u);
  EXPECT_GT(Dmp.DpredSavedFlushes, 0u);
  EXPECT_LT(Dmp.Flushes, Base.Flushes);
  EXPECT_GT(Dmp.ipc(), Base.ipc());
  EXPECT_GT(Dmp.DpredMerged, Dmp.DpredNoMerge);
  EXPECT_GT(Dmp.SelectUops, 0u);
}

TEST(SimTest, AlwaysPredicateBypassesConfidence) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/2, /*Iters=*/1024);
  const auto Image = randomImage(8192, 0.5);
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profile::collectProfile(*H.Prog, PA, Image);
  core::SelectionConfig Config;
  const core::DivergeMap Short = core::selectDivergeBranches(
      PA, Prof, Config, core::SelectionFeatures::exactFreqShort());
  ASSERT_TRUE(Short.contains(H.BranchAddr));
  ASSERT_TRUE(Short.find(H.BranchAddr)->AlwaysPredicate);

  const SimStats Stats = simulateDmp(*H.Prog, Short, Image);
  // Every execution of the branch enters dpred-mode (always-predicate).
  EXPECT_GT(Stats.DpredEntriesAlways, 0u);
  EXPECT_GE(Stats.DpredEntries, 1000u);
}

TEST(SimTest, LoopDpredOutcomeTaxonomy) {
  auto H = test::buildDataLoop(/*BodyLen=*/4, /*Outer=*/1024);
  std::vector<int64_t> Image(8192, 0);
  RNG Rng(5);
  for (auto &W : Image)
    W = Rng.nextInRange(1, 6); // unpredictable exits
  const core::DivergeMap Map = selectAll(H, Image);
  ASSERT_TRUE(Map.contains(H.BranchAddr));
  ASSERT_EQ(Map.find(H.BranchAddr)->Kind, core::DivergeKind::Loop);

  const SimStats Base = simulateBaseline(*H.Prog, Image);
  const SimStats Dmp = simulateDmp(*H.Prog, Map, Image);
  EXPECT_GT(Dmp.DpredEntriesLoop, 0u);
  // All three misprediction outcomes of Section 5.1 occur with
  // unpredictable trip counts, plus correctly-predicted episodes.
  EXPECT_GT(Dmp.LoopLateExit, 0u);
  EXPECT_GT(Dmp.LoopCorrect + Dmp.LoopEarlyExit + Dmp.LoopNoExit, 0u);
  // Late exits avoid flushes: DMP flushes fewer times.
  EXPECT_LT(Dmp.Flushes, Base.Flushes);
  EXPECT_GT(Dmp.ipc(), Base.ipc());
}

TEST(SimTest, ReturnCfmMerges) {
  auto H = test::buildRetFuncLoop(/*Iters=*/1024);
  const auto Image = randomImage(8192, 0.5);
  cfg::ProgramAnalysis PA(*H.Prog);
  auto Prof = profile::collectProfile(*H.Prog, PA, Image);
  core::SelectionConfig Config;
  const core::DivergeMap Map = core::selectDivergeBranches(
      PA, Prof, Config, core::SelectionFeatures::allBestHeur());
  ASSERT_TRUE(Map.contains(H.BranchAddr));
  ASSERT_EQ(Map.find(H.BranchAddr)->Cfms[0].PointKind,
            core::CfmPoint::Kind::Return);

  const SimStats Base = simulateBaseline(*H.Prog, Image);
  const SimStats Dmp = simulateDmp(*H.Prog, Map, Image);
  EXPECT_GT(Dmp.DpredMerged, 0u);
  EXPECT_GT(Dmp.ipc(), Base.ipc());
}

TEST(SimTest, DeterministicStats) {
  workloads::Workload W = workloads::buildByName("vpr");
  const auto Image = W.buildImage(workloads::InputSetKind::Run);
  SimConfig Config;
  Config.MaxInstrs = 200000;
  const SimStats A = simulateBaseline(*W.Prog, Image, Config);
  const SimStats B = simulateBaseline(*W.Prog, Image, Config);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Mispredictions, B.Mispredictions);
  EXPECT_EQ(A.Flushes, B.Flushes);
}

TEST(SimTest, MaxInstrsBudget) {
  workloads::Workload W = workloads::buildByName("gzip");
  const auto Image = W.buildImage(workloads::InputSetKind::Run);
  SimConfig Config;
  Config.MaxInstrs = 50000;
  const SimStats Stats = simulateBaseline(*W.Prog, Image, Config);
  EXPECT_LE(Stats.RetiredInstrs, 50000u);
}

TEST(SimTest, ConfidenceEstimatorInPaperRange) {
  // On a mixed workload the measured Acc_Conf (PVN) should be in a sane
  // band; the paper quotes 15%-50% and assumes 40% in the model.
  workloads::Workload W = workloads::buildByName("go");
  const auto Image = W.buildImage(workloads::InputSetKind::Run);
  SimConfig Config;
  Config.MaxInstrs = 400000;
  const SimStats Stats = simulateBaseline(*W.Prog, Image, Config);
  EXPECT_GT(Stats.accConf(), 0.10);
  EXPECT_LT(Stats.accConf(), 0.60);
}

TEST(WrongPathWalkerTest, StopsAtCfm) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/4);
  core::DivergeAnnotation Ann;
  Ann.Cfms.push_back(
      core::CfmPoint::atAddress(H.Merge->getStartAddr(), 1.0));
  uarch::PerceptronPredictor Pred;
  const WrongPathResult R =
      walkWrongPath(*H.Prog, Pred, Ann, H.FallSide->getStartAddr(), 400);
  EXPECT_TRUE(R.ReachedCfm);
  EXPECT_EQ(R.ReachedCfmAddr, H.Merge->getStartAddr());
  EXPECT_EQ(R.InstrsFetched, 6u); // 4 filler + addi + jmp
  EXPECT_FALSE(R.WrittenRegs.empty());
}

TEST(WrongPathWalkerTest, BudgetLimitsWalk) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/100);
  core::DivergeAnnotation Ann;
  Ann.Cfms.push_back(
      core::CfmPoint::atAddress(H.Merge->getStartAddr(), 1.0));
  uarch::PerceptronPredictor Pred;
  const WrongPathResult R =
      walkWrongPath(*H.Prog, Pred, Ann, H.FallSide->getStartAddr(), 20);
  EXPECT_FALSE(R.ReachedCfm);
  EXPECT_EQ(R.InstrsFetched, 20u);
}

TEST(WrongPathWalkerTest, ReturnCfmStopsAtTopLevelRet) {
  auto H = test::buildRetFuncLoop();
  core::DivergeAnnotation Ann;
  Ann.Cfms.push_back(core::CfmPoint::atReturn(1.0));
  uarch::PerceptronPredictor Pred;
  const WrongPathResult R =
      walkWrongPath(*H.Prog, Pred, Ann, H.FallSide->getStartAddr(), 400);
  EXPECT_TRUE(R.ReachedCfm);
}

TEST(WrongPathWalkerTest, ExtraIterationsUntilPredictedExit) {
  auto H = test::buildDataLoop(/*BodyLen=*/4);
  uarch::PerceptronPredictor Pred;
  // Train the loop branch to predict "stay" twice then exit.
  for (int Round = 0; Round < 200; ++Round) {
    Pred.update(H.BranchAddr, true);
    Pred.update(H.BranchAddr, true);
    Pred.update(H.BranchAddr, false);
  }
  const ExtraIterResult R = walkExtraIterations(
      *H.Prog, Pred, H.BranchBlock->getStartAddr(), H.BranchAddr,
      /*StayTaken=*/true, /*MaxIters=*/16, /*MaxInstrs=*/400);
  EXPECT_GT(R.InstrsFetched, 0u);
  EXPECT_LE(R.Iterations, 16u);
}

TEST(SimConfigTest, Table1Defaults) {
  SimConfig Config;
  EXPECT_EQ(Config.FetchWidth, 8u);
  EXPECT_EQ(Config.RobSize, 512u);
  EXPECT_EQ(Config.BtbEntries, 4096u);
  EXPECT_EQ(Config.RasEntries, 64u);
  EXPECT_EQ(Config.ConfThreshold, 14u);
  EXPECT_EQ(Config.Memory.MemoryLatency, 300u);
  // Minimum misprediction penalty ~25 cycles.
  EXPECT_GE(Config.FrontEndDepth + Config.latencyFor(ir::Opcode::CondBr),
            25u);
  const std::string Text = Config.toString();
  EXPECT_NE(Text.find("perceptron"), std::string::npos);
}
