//===- tests/test_costmodel.cpp - Cost-benefit model unit tests ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Verifies the paper's equations numerically: Eq. 1-4 (dpred_cost), Eq. 14
// (simple/nested overhead), Eq. 16 (frequently-hammock), Eq. 17 (multiple
// CFM points), and Eq. 18-20 (loops), plus the model's monotonicity
// properties.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "core/CostModel.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::core;

namespace {

/// Builds a BranchCandidate for the simple-hammock program with the data
/// distribution implied by \p TakenProb.
BranchCandidate simpleCandidate(const test::ProgramHandles &H,
                                const cfg::ProgramAnalysis &PA,
                                double TakenProb,
                                const SelectionConfig &Config) {
  cfg::EdgeProfile Prof;
  const auto Taken = static_cast<uint64_t>(TakenProb * 1000);
  for (uint64_t I = 0; I < Taken; ++I)
    Prof.recordBranch(H.BranchAddr, true);
  for (uint64_t I = 0; I < 1000 - Taken; ++I)
    Prof.recordBranch(H.BranchAddr, false);
  // Loop back branch, mostly taken.
  for (uint32_t Addr : H.Prog->condBranchAddrs()) {
    if (Addr == H.BranchAddr)
      continue;
    for (int I = 0; I < 99; ++I)
      Prof.recordBranch(Addr, true);
    Prof.recordBranch(Addr, false);
  }
  return analyzeBranch(PA, Prof, H.BranchAddr, Config, Config.MaxInstr,
                       Config.MaxCondBr);
}

} // namespace

TEST(CostModelTest, SimpleHammockEq14) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/4);
  cfg::ProgramAnalysis PA(*H.Prog);
  SelectionConfig Config;
  const BranchCandidate Cand = simpleCandidate(H, PA, 0.5, Config);

  CfmCandidate Exact;
  Exact.Block = Cand.Iposdom;
  Exact.MergeProb = 1.0;
  const HammockCost Cost = evaluateHammockCost(
      Cand, {Exact}, Config, OverheadMethod::EdgeProfile);

  // Fall side: 4 filler + addi + jmp = 6; taken side falls through: 5.
  // useful = 0.5*5 + 0.5*6 = 5.5; useless = 11 - 5.5 = 5.5.
  ASSERT_EQ(Cost.DpredInstsPerCfm.size(), 1u);
  EXPECT_NEAR(Cost.DpredInstsPerCfm[0], 11.0, 1e-9);
  EXPECT_NEAR(Cost.UselessInstsPerCfm[0], 5.5, 1e-9);
  // Eq. 14: overhead = useless / fw = 5.5/8.
  EXPECT_NEAR(Cost.OverheadCycles, 5.5 / 8.0, 1e-9);
  // Eq. 1: overhead*(1-Acc) + (overhead - penalty)*Acc.
  const double Ovh = 5.5 / 8.0;
  EXPECT_NEAR(Cost.CostCycles, Ovh * 0.6 + (Ovh - 25.0) * 0.4, 1e-9);
  EXPECT_TRUE(Cost.Selected);
}

TEST(CostModelTest, BiasedBranchHasAsymmetricUseless) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/4);
  cfg::ProgramAnalysis PA(*H.Prog);
  SelectionConfig Config;
  const BranchCandidate Cand = simpleCandidate(H, PA, 0.9, Config);
  EXPECT_NEAR(Cand.TakenProb, 0.9, 1e-9);

  CfmCandidate Exact;
  Exact.Block = Cand.Iposdom;
  Exact.MergeProb = 1.0;
  const HammockCost Cost = evaluateHammockCost(
      Cand, {Exact}, Config, OverheadMethod::EdgeProfile);
  // Useful = 0.9*5 (taken side) + 0.1*6 = 5.1; useless = 11 - 5.1 = 5.9:
  // with a biased branch the *longer* side is usually the useless one.
  EXPECT_NEAR(Cost.UselessInstsPerCfm[0], 5.9, 1e-9);
}

TEST(CostModelTest, FreqHammockEq16MergeProbMatters) {
  auto H = test::buildFreqHammockLoop(/*RareLen=*/60);
  cfg::ProgramAnalysis PA(*H.Prog);
  SelectionConfig Config;

  cfg::EdgeProfile Prof;
  for (int I = 0; I < 500; ++I) {
    Prof.recordBranch(H.BranchAddr, true);
    Prof.recordBranch(H.BranchAddr, false);
  }
  const uint32_t RareAddr = H.TakenSide->instructions().back().Addr;
  for (int I = 0; I < 30; ++I)
    Prof.recordBranch(RareAddr, true);
  for (int I = 0; I < 970; ++I)
    Prof.recordBranch(RareAddr, false);
  const uint32_t LoopAddr = H.End->instructions().back().Addr;
  for (int I = 0; I < 99; ++I)
    Prof.recordBranch(LoopAddr, true);
  Prof.recordBranch(LoopAddr, false);

  const BranchCandidate Cand = analyzeBranch(
      PA, Prof, H.BranchAddr, Config, Config.MaxInstr, Config.MaxCondBr);
  ASSERT_EQ(Cand.StructKind, DivergeKind::FreqHammock);
  ASSERT_FALSE(Cand.Cfms.empty());
  EXPECT_EQ(Cand.Cfms[0].Block, H.Merge);

  // High merge probability: selected.
  std::vector<CfmCandidate> High = {Cand.Cfms[0]};
  const HammockCost HighCost =
      evaluateHammockCost(Cand, High, Config, OverheadMethod::EdgeProfile);
  EXPECT_TRUE(HighCost.Selected);

  // Same candidate with artificially tiny merge probability: the
  // (1-P(merge)) * penalty/2 term dominates and the branch is rejected.
  std::vector<CfmCandidate> Low = High;
  Low[0].MergeProb = 0.05;
  const HammockCost LowCost =
      evaluateHammockCost(Cand, Low, Config, OverheadMethod::EdgeProfile);
  EXPECT_GT(LowCost.OverheadCycles, HighCost.OverheadCycles);
  EXPECT_FALSE(LowCost.Selected);
}

TEST(CostModelTest, Eq17MultipleCfmsSumMergeProbs) {
  auto H = test::buildSimpleHammockLoop();
  cfg::ProgramAnalysis PA(*H.Prog);
  SelectionConfig Config;
  const BranchCandidate Cand = simpleCandidate(H, PA, 0.5, Config);

  CfmCandidate A, B;
  A.Block = Cand.Iposdom;
  A.MergeProb = 0.4;
  B.Block = Cand.Iposdom;
  B.MergeProb = 0.35;
  const HammockCost Cost = evaluateHammockCost(
      Cand, {A, B}, Config, OverheadMethod::EdgeProfile);
  EXPECT_NEAR(Cost.TotalMergeProb, 0.75, 1e-9);
  // Overhead includes the (1 - 0.75) * penalty/2 non-merge term.
  EXPECT_GT(Cost.OverheadCycles, (1.0 - 0.75) * 12.5 - 1e-9);
}

TEST(CostModelTest, LongestPathAtLeastEdgeProfile) {
  auto H = test::buildFreqHammockLoop(/*RareLen=*/40);
  cfg::ProgramAnalysis PA(*H.Prog);
  SelectionConfig Config;
  const BranchCandidate Cand = simpleCandidate(H, PA, 0.5, Config);
  if (Cand.Cfms.empty())
    GTEST_SKIP();
  std::vector<CfmCandidate> Set = {Cand.Cfms[0]};
  const HammockCost Long =
      evaluateHammockCost(Cand, Set, Config, OverheadMethod::LongestPath);
  const HammockCost Edge =
      evaluateHammockCost(Cand, Set, Config, OverheadMethod::EdgeProfile);
  EXPECT_GE(Long.DpredInstsPerCfm[0], Edge.DpredInstsPerCfm[0] - 1e-9);
}

TEST(CostModelTest, CostDecreasesWithAccConf) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/4);
  cfg::ProgramAnalysis PA(*H.Prog);
  SelectionConfig Config;
  const BranchCandidate Cand = simpleCandidate(H, PA, 0.5, Config);
  CfmCandidate Exact;
  Exact.Block = Cand.Iposdom;
  Exact.MergeProb = 1.0;

  double Last = 1e9;
  for (double Acc : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    SelectionConfig C = Config;
    C.AccConf = Acc;
    const HammockCost Cost =
        evaluateHammockCost(Cand, {Exact}, C, OverheadMethod::EdgeProfile);
    // A more accurate confidence estimator makes predication cheaper.
    EXPECT_LT(Cost.CostCycles, Last);
    Last = Cost.CostCycles;
  }
}

TEST(CostModelTest, BigHammockRejected) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/120);
  cfg::ProgramAnalysis PA(*H.Prog);
  SelectionConfig Config;
  const BranchCandidate Cand = simpleCandidate(
      H, PA, 0.5, Config);
  // Analyze at the cost-model scope so the paths are fully explored.
  cfg::EdgeProfile Prof;
  for (int I = 0; I < 500; ++I) {
    Prof.recordBranch(H.BranchAddr, true);
    Prof.recordBranch(H.BranchAddr, false);
  }
  for (uint32_t Addr : H.Prog->condBranchAddrs()) {
    if (Addr == H.BranchAddr)
      continue;
    for (int I = 0; I < 99; ++I)
      Prof.recordBranch(Addr, true);
    Prof.recordBranch(Addr, false);
  }
  const BranchCandidate Wide =
      analyzeBranch(PA, Prof, H.BranchAddr, Config,
                    Config.CostScopeMaxInstr, Config.CostScopeMaxCondBr);
  ASSERT_NE(Wide.Iposdom, nullptr);
  CfmCandidate Exact;
  Exact.Block = Wide.Iposdom;
  Exact.MergeProb = 1.0;
  const HammockCost Cost = evaluateHammockCost(
      Wide, {Exact}, Config, OverheadMethod::EdgeProfile);
  // ~122 useless instructions: 15+ cycles of fetch overhead vs a 10-cycle
  // expected benefit -> rejected (the Figure 7 "MAX_INSTR too large" story).
  EXPECT_FALSE(Cost.Selected);
  (void)Cand;
}

TEST(LoopCostTest, Eq18SelectOverheadOnly) {
  SelectionConfig Config;
  LoopCostInputs In;
  In.BodyInstrs = 10;
  In.SelectUops = 4;
  In.DpredIter = 6;
  In.PCorrect = 1.0;
  const LoopCost Cost = evaluateLoopCost(In, Config);
  // Eq. 18: 4*6/8 = 3 cycles, no benefit anywhere.
  EXPECT_NEAR(Cost.OverheadCorrect, 3.0, 1e-9);
  EXPECT_NEAR(Cost.CostCycles, 3.0, 1e-9);
  EXPECT_FALSE(Cost.Selected);
}

TEST(LoopCostTest, Eq19LateExitBenefit) {
  SelectionConfig Config;
  LoopCostInputs In;
  In.BodyInstrs = 8;
  In.SelectUops = 3;
  In.DpredIter = 4;
  In.DpredExtraIter = 2;
  In.PLateExit = 1.0;
  const LoopCost Cost = evaluateLoopCost(In, Config);
  // Eq. 19: 8*2/8 + 3*4/8 = 2 + 1.5 = 3.5; cost = 3.5 - 25 < 0.
  EXPECT_NEAR(Cost.OverheadLate, 3.5, 1e-9);
  EXPECT_NEAR(Cost.CostCycles, 3.5 - 25.0, 1e-9);
  EXPECT_TRUE(Cost.Selected);
}

TEST(LoopCostTest, Eq20MixesCases) {
  SelectionConfig Config;
  LoopCostInputs In;
  In.BodyInstrs = 8;
  In.SelectUops = 4;
  In.DpredIter = 4;
  In.DpredExtraIter = 2;
  In.PCorrect = 0.5;
  In.PEarlyExit = 0.1;
  In.PLateExit = 0.3;
  In.PNoExit = 0.1;
  const LoopCost Cost = evaluateLoopCost(In, Config);
  const double Selects = 4.0 * 4.0 / 8.0;
  const double Late = 8.0 * 2.0 / 8.0 + Selects;
  const double Expected =
      0.5 * Selects + 0.1 * Selects + 0.3 * (Late - 25.0) + 0.1 * Selects;
  EXPECT_NEAR(Cost.CostCycles, Expected, 1e-9);
}

TEST(LoopCostTest, MoreLateExitMoreBenefit) {
  SelectionConfig Config;
  double Last = 1e9;
  for (double PLate : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    LoopCostInputs In;
    In.BodyInstrs = 10;
    In.SelectUops = 4;
    In.DpredIter = 5;
    In.DpredExtraIter = 2;
    In.PLateExit = PLate;
    In.PCorrect = 1.0 - PLate;
    const LoopCost Cost = evaluateLoopCost(In, Config);
    EXPECT_LT(Cost.CostCycles, Last);
    Last = Cost.CostCycles;
  }
}
