//===- tests/test_determinism.cpp - Engine determinism tests ------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// The hard requirement of the parallel experiment engine: results are
// bit-identical for any --jobs value, and a cache replay is bit-identical
// to recomputation.  Budgets are reduced so the matrix stays test-sized;
// identity is what is under test, not the numbers themselves.
//
//===----------------------------------------------------------------------===//

#include "harness/Engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>

using namespace dmp;

namespace {

/// Three small benchmarks cover hammock-, loop-, and call-heavy shapes.
std::vector<workloads::BenchmarkSpec> miniSuite() {
  const std::vector<workloads::BenchmarkSpec> &Suite = workloads::specSuite();
  std::vector<workloads::BenchmarkSpec> Mini(Suite.begin(),
                                             Suite.begin() + 3);
  return Mini;
}

harness::ExperimentOptions miniOptions() {
  harness::ExperimentOptions Options;
  Options.Profile.MaxInstrs = 200'000;
  Options.Sim.MaxInstrs = 100'000;
  return Options;
}

/// The full SimStats of every (benchmark, config) cell under \p Jobs.
std::vector<std::vector<StatusOr<sim::SimStats>>>
runCells(unsigned Jobs,
         const std::shared_ptr<serialize::ArtifactCache> &Cache) {
  harness::EngineOptions EngineOpts;
  EngineOpts.Jobs = Jobs;
  // An explicit cache (or none) is injected below; keep the engine from
  // creating or clearing one on its own.
  EngineOpts.UseCache = Cache != nullptr;
  harness::ExperimentOptions Options = miniOptions();
  Options.Cache = Cache;
  harness::ExperimentEngine Engine(Options, EngineOpts);

  const core::SelectionFeatures Configs[] = {
      core::SelectionFeatures::exactOnly(),
      core::SelectionFeatures::allBestHeur(),
      core::SelectionFeatures::allBestCost(),
  };
  return Engine.runMatrix<sim::SimStats>(
      miniSuite(), std::size(Configs), [&Configs](harness::Cell &C) {
        return C.Bench.runSelection(Configs[C.Config]);
      });
}

bool identical(const std::vector<std::vector<StatusOr<sim::SimStats>>> &A,
               const std::vector<std::vector<StatusOr<sim::SimStats>>> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    if (A[I].size() != B[I].size())
      return false;
    for (size_t J = 0; J < A[I].size(); ++J) {
      if (!A[I][J].ok() || !B[I][J].ok())
        return false;
      if (std::memcmp(&*A[I][J], &*B[I][J], sizeof(sim::SimStats)) != 0)
        return false;
    }
  }
  return true;
}

} // namespace

TEST(DeterminismTest, SameResultsForAnyJobCount) {
  const auto Serial = runCells(1, nullptr);
  const auto Parallel = runCells(8, nullptr);
  EXPECT_TRUE(identical(Serial, Parallel));
  const auto Parallel3 = runCells(3, nullptr);
  EXPECT_TRUE(identical(Serial, Parallel3));
}

TEST(DeterminismTest, CacheReplayIsBitIdentical) {
  const std::filesystem::path Dir =
      std::filesystem::temp_directory_path() /
      ("dmp-determinism-" + std::to_string(::getpid()));
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);

  const auto Uncached = runCells(2, nullptr);
  auto Cache = std::make_shared<serialize::ArtifactCache>(Dir.string());
  const auto Cold = runCells(2, Cache);
  EXPECT_TRUE(identical(Uncached, Cold));
  EXPECT_GT(Cache->stores(), 0u);

  auto Warm = std::make_shared<serialize::ArtifactCache>(Dir.string());
  const auto Replayed = runCells(4, Warm);
  EXPECT_TRUE(identical(Uncached, Replayed));
  EXPECT_GT(Warm->hits(), 0u);

  std::filesystem::remove_all(Dir, EC);
}

TEST(DeterminismTest, CellRngIndependentOfSchedule) {
  const workloads::BenchmarkSpec &Spec = workloads::specSuite().front();
  RNG A = harness::ExperimentEngine::cellRng(Spec, 5);
  RNG B = harness::ExperimentEngine::cellRng(Spec, 5);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(A.next(), B.next());
  // Distinct cells get decorrelated streams.
  RNG C = harness::ExperimentEngine::cellRng(Spec, 6);
  RNG D = harness::ExperimentEngine::cellRng(Spec, 5);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += (C.next() == D.next());
  EXPECT_LT(Same, 2);
}
