//===- tests/test_benchjson.cpp - Perf-snapshot schema tests ------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// The committed BENCH_*.json perf snapshots are machine-readable artifacts
// other tooling (the perf gate, trend scripts) parses — so their schema is
// tested like any other serialization format: the committed files must
// parse, carry the uniform schema header, have the documented keys with the
// documented types, and agree on the campaign digest — with each other and
// with a fresh recomputation of the same 17-cell campaign.  Plus unit tests
// for the support/Json reader and a BenchJson -> Json round-trip, so both
// halves of the snapshot pipeline are pinned.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "harness/CellRun.h"
#include "serialize/Hash.h"
#include "support/Json.h"
#include "workloads/SpecSuite.h"

#include <gtest/gtest.h>

using namespace dmp;

#ifndef DMP_TEST_REPO_ROOT
#error "DMP_TEST_REPO_ROOT must point at the repository root"
#endif

namespace {

std::string repoPath(const char *Name) {
  return std::string(DMP_TEST_REPO_ROOT) + "/" + Name;
}

bool isHexDigest(const std::string &S) {
  if (S.size() != 64)
    return false;
  for (char C : S)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')))
      return false;
  return true;
}

/// The campaign both snapshots pin: one cell per suite benchmark with the
/// bench_serve budgets, digested in suite order.
std::string recomputeCampaignDigest() {
  serialize::Hasher H;
  for (const workloads::BenchmarkSpec &B : workloads::specSuite()) {
    harness::CellSpec Spec;
    Spec.Benchmark = B.Name;
    Spec.SimInstrs = 100'000;
    Spec.ProfileInstrs = 400'000;
    StatusOr<harness::CellResult> R =
        harness::runCellSpec(Spec, /*Cache=*/nullptr);
    if (!R.ok()) {
      ADD_FAILURE() << "cell " << B.Name << ": " << R.status().toString();
      return "";
    }
    const std::vector<uint8_t> Blob = harness::encodeCellResult(*R);
    H.update(Blob.data(), Blob.size());
  }
  return H.finish().hex();
}

/// Loads a committed snapshot and checks the uniform header.
json::Value loadSnapshot(const char *File, const char *BenchName) {
  StatusOr<json::Value> Parsed = json::parseFile(repoPath(File));
  EXPECT_TRUE(Parsed.ok()) << Parsed.status().toString();
  if (!Parsed.ok())
    return json::Value();
  const json::Value &Root = *Parsed;
  if (!Root.isObject() || Root.asObject().size() < 2) {
    ADD_FAILURE() << File << " is not a snapshot object";
    return json::Value();
  }
  // The uniform header: schema first, bench second (BenchJson writes them
  // in that order for every snapshot).
  EXPECT_EQ(Root.asObject()[0].first, "schema");
  EXPECT_EQ(Root.asObject()[1].first, "bench");
  const json::Value *Schema = Root.findString("schema");
  const json::Value *Bench = Root.findString("bench");
  if (!Schema || !Bench) {
    ADD_FAILURE() << File << " lacks the schema/bench header";
    return json::Value();
  }
  EXPECT_EQ(Schema->asString(), bench::kBenchSchema) << File;
  EXPECT_EQ(Bench->asString(), BenchName) << File;
  return *Parsed;
}

void expectPercentiles(const json::Value &Root, const char *Key) {
  const json::Value *P = Root.findObject(Key);
  ASSERT_NE(P, nullptr) << Key;
  const json::Value *P50 = P->findNumber("p50");
  const json::Value *P90 = P->findNumber("p90");
  const json::Value *P99 = P->findNumber("p99");
  ASSERT_TRUE(P50 && P90 && P99) << Key;
  EXPECT_LE(P50->asNumber(), P90->asNumber()) << Key;
  EXPECT_LE(P90->asNumber(), P99->asNumber()) << Key;
}

} // namespace

TEST(BenchSnapshotTest, ServeSchema) {
  const json::Value Root = loadSnapshot("BENCH_serve.json", "serve");
  if (!Root.isObject())
    return;
  for (const char *Key :
       {"workers", "cells_per_campaign", "warm_campaigns",
        "measured_campaigns", "throughput_cells_per_sec"}) {
    const json::Value *V = Root.findNumber(Key);
    ASSERT_NE(V, nullptr) << Key;
    EXPECT_GT(V->asNumber(), 0.0) << Key;
  }
  expectPercentiles(Root, "campaign_latency_ms");
  expectPercentiles(Root, "ping_rtt_us");
  const json::Value *Digest = Root.findString("campaign_digest");
  ASSERT_NE(Digest, nullptr);
  EXPECT_TRUE(isHexDigest(Digest->asString())) << Digest->asString();
}

TEST(BenchSnapshotTest, ThroughputSchema) {
  const json::Value Root = loadSnapshot("BENCH_throughput.json", "throughput");
  if (!Root.isObject())
    return;
  const json::Value *Mode = Root.findString("mode");
  ASSERT_NE(Mode, nullptr);
  EXPECT_EQ(Mode->asString(), "full"); // The committed baseline is full mode.
  ASSERT_NE(Root.findNumber("reps"), nullptr);

  const json::Value *Budgets = Root.findObject("budgets");
  ASSERT_NE(Budgets, nullptr);
  for (const char *Key : {"emu_instrs", "ref_instrs", "sim_instrs"}) {
    const json::Value *V = Budgets->findNumber(Key);
    ASSERT_NE(V, nullptr) << Key;
    EXPECT_GT(V->asNumber(), 0.0) << Key;
  }

  const json::Value *Agg = Root.findObject("aggregate");
  ASSERT_NE(Agg, nullptr);
  for (const char *Key : {"emu_run_mips", "emu_step_mips", "emu_ref_mips",
                          "sim_mips", "emu_speedup_vs_ref"}) {
    const json::Value *V = Agg->findNumber(Key);
    ASSERT_NE(V, nullptr) << Key;
    EXPECT_GT(V->asNumber(), 0.0) << Key;
  }

  // Per-workload table: the 17 suite benchmarks plus the synthetic longrun,
  // in order, each with the full metric set.
  const json::Value *Table = Root.find("workloads");
  ASSERT_NE(Table, nullptr);
  ASSERT_TRUE(Table->isArray());
  const auto &Suite = workloads::specSuite();
  ASSERT_EQ(Table->asArray().size(), Suite.size() + 1);
  for (size_t I = 0; I < Table->asArray().size(); ++I) {
    const json::Value &Row = Table->asArray()[I];
    ASSERT_TRUE(Row.isObject()) << "row " << I;
    const json::Value *Name = Row.findString("name");
    ASSERT_NE(Name, nullptr) << "row " << I;
    EXPECT_EQ(Name->asString(),
              I < Suite.size() ? Suite[I].Name : "longrun");
    for (const char *Key : {"emu_run_mips", "emu_step_mips", "emu_ref_mips",
                            "sim_mips", "sim_ipc"}) {
      const json::Value *V = Row.findNumber(Key);
      ASSERT_NE(V, nullptr) << Name->asString() << "." << Key;
      EXPECT_GT(V->asNumber(), 0.0) << Name->asString() << "." << Key;
    }
  }

  const json::Value *Digest = Root.findString("campaign_digest");
  ASSERT_NE(Digest, nullptr);
  EXPECT_TRUE(isHexDigest(Digest->asString()));
}

// The identity anchor: both committed snapshots and a fresh run of the
// 17-cell campaign must agree on one digest.  A perf-motivated change that
// silently alters results fails here, not just in a snapshot diff.
TEST(BenchSnapshotTest, CampaignDigestsAgree) {
  const json::Value Serve = loadSnapshot("BENCH_serve.json", "serve");
  const json::Value Tput = loadSnapshot("BENCH_throughput.json", "throughput");
  if (!Serve.isObject() || !Tput.isObject())
    return;
  const json::Value *A = Serve.findString("campaign_digest");
  const json::Value *B = Tput.findString("campaign_digest");
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->asString(), B->asString());
  const std::string Fresh = recomputeCampaignDigest();
  ASSERT_FALSE(Fresh.empty());
  EXPECT_EQ(A->asString(), Fresh)
      << "the committed snapshots no longer match what the engine computes";
}

// -- BenchJson writer round-trips through the reader -------------------------

TEST(BenchJsonTest, RoundTrip) {
  bench::BenchJson J("unit");
  J.integer("count", 42);
  J.number("rate", 12.5, 1);
  J.boolean("enabled", true);
  J.string("quoted", "a \"b\"\\c\n");
  J.beginObject("nested");
  J.number("p50", 1.25, 2);
  J.endObject();
  J.beginArray("rows");
  for (int I = 0; I < 2; ++I) {
    J.beginElement();
    J.integer("idx", static_cast<uint64_t>(I));
    J.endElement();
  }
  J.endArray();

  StatusOr<json::Value> Parsed = json::parse(J.render());
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();
  const json::Value &Root = *Parsed;
  ASSERT_TRUE(Root.isObject());
  // Insertion order preserved, uniform header first.
  EXPECT_EQ(Root.asObject()[0].first, "schema");
  EXPECT_EQ(Root.asObject()[0].second.asString(), bench::kBenchSchema);
  EXPECT_EQ(Root.asObject()[1].first, "bench");
  EXPECT_EQ(Root.asObject()[1].second.asString(), "unit");
  EXPECT_EQ(Root.findNumber("count")->asNumber(), 42.0);
  EXPECT_EQ(Root.findNumber("rate")->asNumber(), 12.5);
  ASSERT_NE(Root.find("enabled"), nullptr);
  EXPECT_TRUE(Root.find("enabled")->asBool());
  EXPECT_EQ(Root.findString("quoted")->asString(), "a \"b\"\\c\n");
  EXPECT_EQ(Root.findObject("nested")->findNumber("p50")->asNumber(), 1.25);
  const json::Value *Rows = Root.find("rows");
  ASSERT_TRUE(Rows && Rows->isArray());
  ASSERT_EQ(Rows->asArray().size(), 2u);
  EXPECT_EQ(Rows->asArray()[1].findNumber("idx")->asNumber(), 1.0);
}

// -- support/Json reader unit tests -------------------------------------------

TEST(JsonParserTest, Scalars) {
  EXPECT_TRUE(json::parse("null")->isNull());
  EXPECT_TRUE(json::parse("true")->asBool());
  EXPECT_FALSE(json::parse("false")->asBool());
  EXPECT_EQ(json::parse("0")->asNumber(), 0.0);
  EXPECT_EQ(json::parse("-17")->asNumber(), -17.0);
  EXPECT_EQ(json::parse("2.5e2")->asNumber(), 250.0);
  EXPECT_EQ(json::parse("\"hi\"")->asString(), "hi");
  EXPECT_EQ(json::parse("\"a\\u0041\\t\"")->asString(), "aA\t");
}

TEST(JsonParserTest, NestedStructure) {
  StatusOr<json::Value> V =
      json::parse("  {\"a\": [1, 2, {\"b\": null}], \"c\": {} } ");
  ASSERT_TRUE(V.ok());
  const json::Value *A = V->find("a");
  ASSERT_TRUE(A && A->isArray());
  ASSERT_EQ(A->asArray().size(), 3u);
  EXPECT_EQ(A->asArray()[1].asNumber(), 2.0);
  EXPECT_TRUE(A->asArray()[2].find("b")->isNull());
  EXPECT_TRUE(V->findObject("c")->asObject().empty());
}

TEST(JsonParserTest, Errors) {
  EXPECT_FALSE(json::parse("").ok());
  EXPECT_FALSE(json::parse("{").ok());
  EXPECT_FALSE(json::parse("[1,]").ok());
  EXPECT_FALSE(json::parse("{\"a\" 1}").ok());
  EXPECT_FALSE(json::parse("\"unterminated").ok());
  EXPECT_FALSE(json::parse("\"bad\\q\"").ok());
  EXPECT_FALSE(json::parse("1 2").ok());       // Trailing garbage.
  EXPECT_FALSE(json::parse("nul").ok());
  EXPECT_FALSE(json::parse("01x").ok());
  EXPECT_FALSE(json::parse("{}{}").ok());
}

TEST(JsonParserTest, MissingFileIsNotFound) {
  StatusOr<json::Value> V = json::parseFile("/nonexistent/path.json");
  EXPECT_FALSE(V.ok());
}
