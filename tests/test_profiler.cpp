//===- tests/test_profiler.cpp - Profiler unit tests ---------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "profile/Profiler.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::profile;

TEST(ProfilerTest, EdgeCountsMatchKnownOutcomes) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/2, /*Iters=*/32);
  cfg::ProgramAnalysis PA(*H.Prog);
  // Period 4: taken on every 4th index -> 8 taken, 24 not-taken.
  ProfileData Data =
      collectProfile(*H.Prog, PA, test::alternatingImage(64, 4));
  const cfg::BranchCounts Counts = Data.Edges.branchCounts(H.BranchAddr);
  EXPECT_EQ(Counts.Taken, 8u);
  EXPECT_EQ(Counts.NotTaken, 24u);
  EXPECT_NEAR(Counts.takenProb(), 0.25, 1e-12);
  EXPECT_TRUE(Data.Edges.wasExecuted(H.BranchAddr));
  EXPECT_TRUE(Data.Completed);
}

TEST(ProfilerTest, BlockExecCounts) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/2, /*Iters=*/32);
  cfg::ProgramAnalysis PA(*H.Prog);
  ProfileData Data =
      collectProfile(*H.Prog, PA, test::alternatingImage(64, 4));
  EXPECT_EQ(Data.Edges.blockExecCount(H.BranchBlock->getStartAddr()), 32u);
  EXPECT_EQ(Data.Edges.blockExecCount(H.TakenSide->getStartAddr()), 8u);
  EXPECT_EQ(Data.Edges.blockExecCount(H.FallSide->getStartAddr()), 24u);
  EXPECT_EQ(Data.Edges.blockExecCount(H.Merge->getStartAddr()), 32u);
}

TEST(ProfilerTest, MispredictionProfileTracksHardness) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/2, /*Iters=*/512);
  cfg::ProgramAnalysis PA(*H.Prog);

  // Strongly biased data: very few mispredictions.
  std::vector<int64_t> Easy(8192, 0);
  ProfileData EasyData = collectProfile(*H.Prog, PA, Easy);
  EXPECT_LT(EasyData.Branches.mispRate(H.BranchAddr), 0.05);

  // Pseudo-random data: many mispredictions.
  std::vector<int64_t> Hard(8192, 0);
  RNG Rng(7);
  for (auto &W : Hard)
    W = Rng.nextBool(0.5);
  ProfileData HardData = collectProfile(*H.Prog, PA, Hard);
  EXPECT_GT(HardData.Branches.mispRate(H.BranchAddr), 0.25);
  EXPECT_GT(HardData.profileMPKI(), EasyData.profileMPKI());
}

TEST(ProfilerTest, LoopIterationProfile) {
  auto H = test::buildDataLoop(/*BodyLen=*/2, /*Outer=*/16);
  cfg::ProgramAnalysis PA(*H.Prog);
  // Trip counts: constant 5.
  std::vector<int64_t> Image(64, 5);
  ProfileData Data = collectProfile(*H.Prog, PA, Image);
  const LoopStats *Stats =
      Data.Loops.find(H.BranchBlock->getStartAddr());
  ASSERT_NE(Stats, nullptr);
  EXPECT_EQ(Stats->Invocations, 16u);
  EXPECT_NEAR(Stats->avgIterations(), 5.0, 1e-9);
  // Dynamic size: 5 iterations x (2 filler + addi + br) = 20 per entry.
  EXPECT_NEAR(Stats->avgDynamicSize(), 20.0, 1e-9);
}

TEST(ProfilerTest, LoopProfileVariableTrips) {
  auto H = test::buildDataLoop(/*BodyLen=*/2, /*Outer=*/32);
  cfg::ProgramAnalysis PA(*H.Prog);
  std::vector<int64_t> Image(64, 0);
  for (size_t I = 0; I < 32; ++I)
    Image[I] = 1 + static_cast<int64_t>(I % 4); // trips 1..4
  ProfileData Data = collectProfile(*H.Prog, PA, Image);
  const LoopStats *Stats =
      Data.Loops.find(H.BranchBlock->getStartAddr());
  ASSERT_NE(Stats, nullptr);
  EXPECT_NEAR(Stats->avgIterations(), 2.5, 1e-9);
  EXPECT_EQ(Stats->Iterations.minValue(), 1u);
  EXPECT_EQ(Stats->Iterations.maxValue(), 4u);
}

TEST(ProfilerTest, MaxInstrsBudgetRespected) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/2, /*Iters=*/100000);
  cfg::ProgramAnalysis PA(*H.Prog);
  ProfileOptions Options;
  Options.MaxInstrs = 5000;
  ProfileData Data =
      collectProfile(*H.Prog, PA, test::alternatingImage(8192, 2), Options);
  EXPECT_LE(Data.DynamicInstrs, 5000u);
  EXPECT_FALSE(Data.Completed);
}

TEST(ProfilerTest, CalleeLoopsAttributedSeparately) {
  auto H = test::buildRetFuncLoop(/*Iters=*/16);
  cfg::ProgramAnalysis PA(*H.Prog);
  ProfileData Data =
      collectProfile(*H.Prog, PA, test::alternatingImage(64, 2));
  // The outer loop in main exists and iterated 16 times once.
  bool FoundOuter = false;
  for (const auto &Entry : Data.Loops.all()) {
    if (Entry.second.Invocations == 1 &&
        Entry.second.avgIterations() == 16.0)
      FoundOuter = true;
  }
  EXPECT_TRUE(FoundOuter);
}

TEST(ProfilerTest, DeterministicProfiles) {
  auto H = test::buildFreqHammockLoop();
  cfg::ProgramAnalysis PA(*H.Prog);
  const auto Image = test::alternatingImage(8192, 3);
  ProfileData A = collectProfile(*H.Prog, PA, Image);
  ProfileData B = collectProfile(*H.Prog, PA, Image);
  EXPECT_EQ(A.DynamicInstrs, B.DynamicInstrs);
  EXPECT_EQ(A.Branches.totalMispredictions(),
            B.Branches.totalMispredictions());
  EXPECT_EQ(A.Edges.branchCounts(H.BranchAddr).Taken,
            B.Edges.branchCounts(H.BranchAddr).Taken);
}
