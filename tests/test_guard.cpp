//===- tests/test_guard.cpp - Shutdown, deadline, and cancellation tests ------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Covers the dmp::guard cancellation layer and its integration points:
//
//   1. CancelToken trip semantics (first trip wins, origin "guard").
//   2. Deadline / DeadlineWatchdog: expiry trips the token; destruction
//      disarms without tripping.
//   3. TaskGraph::runAll drains on the cancel check: un-started tasks
//      uniformly carry the guard-origin Status instead of running.
//   4. The deterministic per-cell instruction watchdog: a budget-exceeded
//      cell yields ResourceExhausted (a "--" gap), never a hang, with
//      bit-identical statuses for any --jobs value.
//   5. Engine draining on an external token: shed cells are counted as
//      CellsCancelled, not failures.
//   6. Crash-consistent cache maintenance: orphan-temp recovery sweep,
//      size-budget eviction that never evicts a protected (journal) blob,
//      and deterministic advisory-lock contention accounting.
//   7. CampaignJournal corrupt-checkpoint handling: cold start with a
//      one-line warning, never a propagated decode error.
//
// The fork-based crashpoint matrix lives in tests/test_crash.cpp.
//
//===----------------------------------------------------------------------===//

#include "guard/Guard.h"
#include "harness/Engine.h"
#include "serialize/ArtifactCache.h"
#include "support/ExitCodes.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sys/file.h>
#include <fcntl.h>
#include <thread>
#include <unistd.h>

using namespace dmp;

//===----------------------------------------------------------------------===//
// CancelToken
//===----------------------------------------------------------------------===//

TEST(CancelTokenTest, LiveByDefault) {
  guard::CancelToken Tok;
  EXPECT_FALSE(Tok.cancelled());
  EXPECT_TRUE(Tok.status().ok());
  EXPECT_TRUE(Tok.check("anywhere").ok());
}

TEST(CancelTokenTest, TripCarriesCodeReasonAndGuardOrigin) {
  guard::CancelToken Tok;
  Tok.cancel(ErrorCode::Cancelled, "interrupted by signal");
  EXPECT_TRUE(Tok.cancelled());
  const Status S = Tok.status();
  EXPECT_EQ(S.code(), ErrorCode::Cancelled);
  EXPECT_EQ(S.message(), "interrupted by signal");
  EXPECT_EQ(S.origin(), "guard");
}

TEST(CancelTokenTest, FirstTripWins) {
  guard::CancelToken Tok;
  Tok.cancel(ErrorCode::ResourceExhausted, "deadline exceeded");
  Tok.cancel(ErrorCode::Cancelled, "interrupted by signal");
  const Status S = Tok.status();
  EXPECT_EQ(S.code(), ErrorCode::ResourceExhausted);
  EXPECT_EQ(S.message(), "deadline exceeded");
}

TEST(CancelTokenTest, CheckFoldsInTheCallSite) {
  guard::CancelToken Tok;
  Tok.cancel(ErrorCode::Cancelled, "draining");
  const Status S = Tok.check("sim::DmpCore");
  EXPECT_EQ(S.code(), ErrorCode::Cancelled);
  EXPECT_NE(S.message().find("draining"), std::string::npos);
  EXPECT_NE(S.message().find("sim::DmpCore"), std::string::npos);
  EXPECT_EQ(S.origin(), "guard");
}

TEST(CancelTokenTest, ResetReArms) {
  guard::CancelToken Tok;
  Tok.cancel();
  ASSERT_TRUE(Tok.cancelled());
  Tok.reset();
  EXPECT_FALSE(Tok.cancelled());
  EXPECT_TRUE(Tok.status().ok());
}

//===----------------------------------------------------------------------===//
// Deadline / DeadlineWatchdog
//===----------------------------------------------------------------------===//

TEST(DeadlineTest, DefaultNeverExpires) {
  const guard::Deadline D;
  EXPECT_TRUE(D.never());
  EXPECT_FALSE(D.expired());
  EXPECT_GT(D.remainingSeconds(), 1e6);
}

TEST(DeadlineTest, ZeroBudgetIsAlreadyExpired) {
  const guard::Deadline D(0.0);
  EXPECT_FALSE(D.never());
  EXPECT_TRUE(D.expired());
  EXPECT_EQ(D.remainingSeconds(), 0.0);
}

TEST(DeadlineTest, FutureBudgetHasRemainingTime) {
  const guard::Deadline D(3600.0);
  EXPECT_FALSE(D.expired());
  EXPECT_GT(D.remainingSeconds(), 3000.0);
}

TEST(DeadlineWatchdogTest, ExpiryTripsTheToken) {
  guard::CancelToken Tok;
  guard::DeadlineWatchdog Dog(guard::Deadline(0.005), Tok);
  // The watchdog thread trips the token shortly after 5ms; poll with a
  // generous timeout so the test is robust under load.
  const auto Until =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!Tok.cancelled() && std::chrono::steady_clock::now() < Until)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(Tok.cancelled());
  const Status S = Tok.status();
  EXPECT_EQ(S.code(), ErrorCode::ResourceExhausted);
  EXPECT_EQ(S.message(), "deadline exceeded");
  EXPECT_EQ(S.origin(), "guard");
}

TEST(DeadlineWatchdogTest, DestructionDisarmsWithoutTripping) {
  guard::CancelToken Tok;
  {
    guard::DeadlineWatchdog Dog(guard::Deadline(3600.0), Tok);
  }
  EXPECT_FALSE(Tok.cancelled());
}

TEST(DeadlineWatchdogTest, NeverDeadlineSpawnsNothingAndNeverTrips) {
  guard::CancelToken Tok;
  {
    guard::DeadlineWatchdog Dog(guard::Deadline(), Tok);
  }
  EXPECT_FALSE(Tok.cancelled());
}

//===----------------------------------------------------------------------===//
// TaskGraph drain
//===----------------------------------------------------------------------===//

TEST(TaskGraphDrainTest, TrippedCheckDrainsEveryUnstartedTask) {
  guard::CancelToken Tok;
  Tok.cancel(ErrorCode::Cancelled, "interrupted by signal");
  exec::ThreadPool Pool(2);
  exec::TaskGraph Graph;
  std::atomic<unsigned> Ran{0};
  for (int I = 0; I < 8; ++I)
    Graph.add([&Ran] { ++Ran; });
  const std::vector<Status> Statuses =
      Graph.runAll(Pool, [&Tok] { return Tok.status(); });
  EXPECT_EQ(Ran.load(), 0u);
  ASSERT_EQ(Statuses.size(), 8u);
  for (const Status &S : Statuses) {
    EXPECT_EQ(S.code(), ErrorCode::Cancelled);
    EXPECT_EQ(S.origin(), "guard");
  }
}

TEST(TaskGraphDrainTest, MidRunTripStopsLaunchingButFinishesInFlight) {
  guard::CancelToken Tok;
  exec::ThreadPool Pool(1);
  exec::TaskGraph Graph;
  std::atomic<unsigned> Ran{0};
  // A dependency chain pins the execution order (pool scheduling order is
  // an implementation detail): the first task trips the token, so every
  // downstream task must drain with the guard-origin Status.
  exec::TaskGraph::TaskId Prev = Graph.add([&Tok, &Ran] {
    ++Ran;
    Tok.cancel(ErrorCode::Cancelled, "test drain");
  });
  for (int I = 0; I < 4; ++I)
    Prev = Graph.add([&Ran] { ++Ran; }, {Prev});
  const std::vector<Status> Statuses =
      Graph.runAll(Pool, [&Tok] { return Tok.status(); });
  EXPECT_EQ(Ran.load(), 1u);
  unsigned Drained = 0;
  for (const Status &S : Statuses)
    if (!S.ok() && S.origin() == "guard")
      ++Drained;
  EXPECT_EQ(Drained, 4u);
}

TEST(TaskGraphDrainTest, DepFailureStillBlamesTheDependency) {
  // Without a drain, dependency-cancellation keeps its distinct origin so
  // callers can tell shed work from broken work.
  exec::ThreadPool Pool(2);
  exec::TaskGraph Graph;
  const auto Bad = Graph.add(
      [] { throw StatusError(Status::invariant("boom", "test")); });
  const auto Child = Graph.add([] {}, {Bad});
  const std::vector<Status> Statuses = Graph.runAll(Pool, {});
  EXPECT_EQ(Statuses[Bad].code(), ErrorCode::Invariant);
  EXPECT_EQ(Statuses[Child].code(), ErrorCode::Cancelled);
  EXPECT_EQ(Statuses[Child].origin(), "exec::TaskGraph");
}

//===----------------------------------------------------------------------===//
// Engine integration: instruction watchdog, drain, deadline
//===----------------------------------------------------------------------===//

namespace {

std::vector<workloads::BenchmarkSpec> miniSuite() {
  const std::vector<workloads::BenchmarkSpec> &Suite = workloads::specSuite();
  return {Suite.begin(), Suite.begin() + 2};
}

harness::ExperimentOptions miniOptions() {
  harness::ExperimentOptions Options;
  Options.Profile.MaxInstrs = 150'000;
  Options.Sim.MaxInstrs = 60'000;
  return Options;
}

std::filesystem::path freshTempDir(const std::string &Tag) {
  const std::filesystem::path Dir =
      std::filesystem::temp_directory_path() /
      ("dmp-guard-" + Tag + "-" + std::to_string(::getpid()));
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
  return Dir;
}

/// Runs the 2x2 mini campaign with a tiny per-cell instruction budget and
/// returns the [bench][config] statuses of every cell.
std::vector<std::vector<Status>> watchdogCampaign(unsigned Jobs) {
  harness::EngineOptions EngineOpts;
  EngineOpts.Jobs = Jobs;
  EngineOpts.UseCache = false;
  // Far below what the baseline simulation retires: every cell must hit
  // the deterministic watchdog.
  EngineOpts.CellInstrBudget = 500;
  harness::ExperimentEngine Engine(miniOptions(), EngineOpts);
  const auto Matrix = Engine.runMatrix<double>(
      miniSuite(), 2,
      [](harness::Cell &C) {
        // The baseline simulation runs inside the cell, under the budget.
        C.Bench.baseline();
        return 1.0;
      },
      harness::CellNeeds{false, false, false});
  std::vector<std::vector<Status>> Statuses;
  for (const auto &Row : Matrix) {
    Statuses.emplace_back();
    for (const auto &Cell : Row)
      Statuses.back().push_back(Cell.status());
  }
  return Statuses;
}

} // namespace

TEST(EngineWatchdogTest, InstrBudgetYieldsResourceExhaustedDeterministically) {
  const auto Serial = watchdogCampaign(1);
  for (const auto &Row : Serial)
    for (const Status &S : Row) {
      EXPECT_EQ(S.code(), ErrorCode::ResourceExhausted);
      EXPECT_EQ(S.origin(), "sim::DmpCore");
      EXPECT_NE(S.message().find("watchdog"), std::string::npos);
    }
  // Bit-identical statuses for any --jobs value: the budget counts retired
  // instructions, not wall-clock.
  const auto Wide = watchdogCampaign(4);
  ASSERT_EQ(Serial.size(), Wide.size());
  for (size_t B = 0; B < Serial.size(); ++B)
    for (size_t C = 0; C < Serial[B].size(); ++C) {
      EXPECT_EQ(Serial[B][C].code(), Wide[B][C].code());
      EXPECT_EQ(Serial[B][C].message(), Wide[B][C].message());
    }
}

TEST(EngineWatchdogTest, BudgetExceededCellIsAGapNotAHang) {
  harness::EngineOptions EngineOpts;
  EngineOpts.Jobs = 2;
  EngineOpts.UseCache = false;
  EngineOpts.CellInstrBudget = 500;
  harness::ExperimentEngine Engine(miniOptions(), EngineOpts);
  const auto Matrix = Engine.runMatrix<double>(
      miniSuite(), 1,
      [](harness::Cell &C) {
        C.Bench.baseline();
        return 1.0;
      },
      harness::CellNeeds{false, false, false});
  const harness::CampaignCounters Counters = Engine.campaign();
  EXPECT_EQ(Counters.CellsFailed, 2u);
  EXPECT_EQ(Counters.CellsComputed, 0u);
  // ResourceExhausted is not Transient: no retry storm.
  EXPECT_EQ(Counters.TransientRetries, 0u);
  EXPECT_FALSE(Matrix[0][0].ok());
  EXPECT_FALSE(Matrix[1][0].ok());
}

TEST(EngineDrainTest, ExternalTokenShedsCellsAsCancelledNotFailed) {
  guard::CancelToken Drain;
  Drain.cancel(ErrorCode::Cancelled, "interrupted by signal");
  harness::EngineOptions EngineOpts;
  EngineOpts.Jobs = 2;
  EngineOpts.UseCache = false;
  EngineOpts.DrainToken = &Drain;
  harness::ExperimentEngine Engine(miniOptions(), EngineOpts);
  EXPECT_TRUE(Engine.draining());

  const auto Matrix = Engine.runMatrix<double>(
      miniSuite(), 2,
      [](harness::Cell &C) { return static_cast<double>(C.Rng.next()); },
      harness::CellNeeds{false, false, false});
  for (const auto &Row : Matrix)
    for (const auto &Cell : Row) {
      EXPECT_FALSE(Cell.ok());
      EXPECT_EQ(Cell.status().origin(), "guard");
    }
  const harness::CampaignCounters Counters = Engine.campaign();
  EXPECT_EQ(Counters.CellsCancelled, 4u);
  EXPECT_EQ(Counters.CellsFailed, 0u);
  EXPECT_EQ(Counters.CellsComputed, 0u);
  EXPECT_TRUE(Counters.Failures.empty());
  EXPECT_NE(Engine.statsLine().find("cancelled=4"), std::string::npos);
  EXPECT_EQ(Engine.failureLines(), "");
}

TEST(EngineDrainTest, ExpiredDeadlineDrainsTheCampaign) {
  harness::EngineOptions EngineOpts;
  EngineOpts.Jobs = 2;
  EngineOpts.UseCache = false;
  EngineOpts.DeadlineSeconds = 0.001;
  harness::ExperimentEngine Engine(miniOptions(), EngineOpts);
  // Let the watchdog fire before launching, so the drain is deterministic.
  const auto Until =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!Engine.draining() && std::chrono::steady_clock::now() < Until)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(Engine.draining());
  EXPECT_EQ(Engine.cancelStatus().code(), ErrorCode::ResourceExhausted);

  const auto Matrix = Engine.runMatrix<double>(
      miniSuite(), 2,
      [](harness::Cell &C) { return static_cast<double>(C.Rng.next()); },
      harness::CellNeeds{false, false, false});
  for (const auto &Row : Matrix)
    for (const auto &Cell : Row)
      EXPECT_EQ(Cell.status().origin(), "guard");
  EXPECT_EQ(Engine.campaign().CellsCancelled, 4u);
}

//===----------------------------------------------------------------------===//
// Crash-consistent cache maintenance
//===----------------------------------------------------------------------===//

namespace {

serialize::Digest digestOf(const std::string &Text) {
  serialize::Hasher H;
  H.update(Text);
  return H.finish();
}

std::vector<uint8_t> payloadOf(const std::string &Text, size_t Pad = 0) {
  std::vector<uint8_t> P(Text.begin(), Text.end());
  P.resize(P.size() + Pad, 0xAB);
  return P;
}

} // namespace

TEST(CacheRecoveryTest, SweepReapsOrphanedTempFiles) {
  const std::filesystem::path Dir = freshTempDir("sweep");
  serialize::ArtifactCache Cache(Dir.string());
  ASSERT_TRUE(Cache.store(digestOf("k1"), payloadOf("v1")).ok());

  // Debris of a process killed between temp write and rename.
  const std::filesystem::path Orphan =
      Dir / "ab" / "deadbeef.blob.tmp.42.1234";
  std::filesystem::create_directories(Orphan.parent_path());
  { std::ofstream(Orphan) << "torn write"; }
  ASSERT_TRUE(std::filesystem::exists(Orphan));

  serialize::ArtifactCache Fresh(Dir.string());
  Fresh.sweepNow();
  EXPECT_EQ(Fresh.orphansReaped(), 1u);
  EXPECT_FALSE(std::filesystem::exists(Orphan));
  // Real blobs survive the sweep.
  const auto Loaded = Fresh.load(digestOf("k1"));
  ASSERT_TRUE(Loaded.ok()) << Loaded.status().toString();
  EXPECT_EQ(*Loaded, payloadOf("v1"));
  // Idempotent: nothing left to reap.
  Fresh.sweepNow();
  EXPECT_EQ(Fresh.orphansReaped(), 1u);

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

TEST(CacheRecoveryTest, EvictionRespectsBudgetAndProtectsJournalBlobs) {
  const std::filesystem::path Dir = freshTempDir("evict");
  serialize::ArtifactCache Cache(Dir.string());
  const serialize::Digest Journal = digestOf("journal");
  ASSERT_TRUE(Cache.store(Journal, payloadOf("journal", 4096)).ok());
  for (int I = 0; I < 6; ++I)
    ASSERT_TRUE(Cache
                    .store(digestOf("bulk" + std::to_string(I)),
                           payloadOf("bulk", 4096))
                    .ok());

  // A budget only the journal blob fits: everything else must go, and the
  // protected journal must survive even though it alone busts nothing.
  const uint64_t Evicted = Cache.evictToBudget(6000, {Journal});
  EXPECT_EQ(Evicted, 6u);
  EXPECT_EQ(Cache.evictions(), 6u);
  const auto Kept = Cache.load(Journal);
  ASSERT_TRUE(Kept.ok()) << Kept.status().toString();
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(Cache.load(digestOf("bulk" + std::to_string(I))).status().code(),
              ErrorCode::NotFound);

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

TEST(CacheRecoveryTest, ContendedLockSkipsMaintenanceAndCounts) {
  const std::filesystem::path Dir = freshTempDir("lock");
  serialize::ArtifactCache Cache(Dir.string());
  ASSERT_TRUE(Cache.store(digestOf("k"), payloadOf("v")).ok());

  // Simulate another active process: an outside shared flock on the lock
  // file blocks the exclusive maintenance lock.
  const int Fd =
      ::open((Dir / ".lock").string().c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::flock(Fd, LOCK_SH), 0);
  const uint64_t Before = Cache.lockContention();
  Cache.sweepNow();
  EXPECT_EQ(Cache.lockContention(), Before + 1);
  EXPECT_EQ(Cache.evictToBudget(1), 0u);
  EXPECT_EQ(Cache.lockContention(), Before + 2);
  // Routine traffic still proceeds: the advisory lock only gates
  // maintenance, and readers share it.
  EXPECT_TRUE(Cache.load(digestOf("k")).ok());

  ::flock(Fd, LOCK_UN);
  ::close(Fd);
  // Quiescent again: maintenance goes through.
  Cache.sweepNow();
  EXPECT_GT(Cache.evictToBudget(1), 0u);

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

//===----------------------------------------------------------------------===//
// Journal corrupt-checkpoint cold start
//===----------------------------------------------------------------------===//

TEST(JournalRecoveryTest, CorruptCheckpointColdStartsWithWarning) {
  const std::filesystem::path Dir = freshTempDir("journal");
  auto Cache = std::make_shared<serialize::ArtifactCache>(Dir.string());
  const serialize::Digest Params = harness::paramsDigest({"a", "b"});
  const harness::CellCodec<double> &Codec = harness::doubleCellCodec();

  serialize::Digest Key;
  {
    harness::CampaignJournal Journal(Cache, "camp/matrix", Params, 2, 2);
    Journal.record(0, 0, Codec.Encode(1.5));
    Key = Journal.key();
    // First open of an empty cache: a clean cold start, not corruption.
    EXPECT_EQ(Journal.loadStatus().code(), ErrorCode::NotFound);
  }
  // Overwrite the checkpoint with a valid cache blob whose payload is not
  // a journal (simulating torn/garbage bytes from outside the atomic
  // store protocol).
  ASSERT_TRUE(Cache->store(Key, payloadOf("not a journal")).ok());

  ::testing::internal::CaptureStderr();
  harness::CampaignJournal Reopened(Cache, "camp/matrix", Params, 2, 2);
  const std::string Err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("[journal] corrupt checkpoint"), std::string::npos);
  EXPECT_EQ(Reopened.entries(), 0u);
  EXPECT_EQ(Reopened.loadStatus().code(), ErrorCode::Corrupt);

  // The cold start is fully functional: record() heals the checkpoint.
  Reopened.record(1, 1, Codec.Encode(2.5));
  EXPECT_TRUE(Reopened.lastCheckpointStatus().ok());
  harness::CampaignJournal Healed(Cache, "camp/matrix", Params, 2, 2);
  EXPECT_EQ(Healed.entries(), 1u);
  EXPECT_TRUE(Healed.loadStatus().ok());

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

TEST(JournalRecoveryTest, TruncatedBlobColdStartsToo) {
  const std::filesystem::path Dir = freshTempDir("journal-trunc");
  auto Cache = std::make_shared<serialize::ArtifactCache>(Dir.string());
  const serialize::Digest Params = harness::paramsDigest({"a"});
  const harness::CellCodec<double> &Codec = harness::doubleCellCodec();

  std::vector<uint8_t> Checkpoint;
  serialize::Digest Key;
  {
    harness::CampaignJournal Journal(Cache, "camp/m", Params, 1, 2);
    Journal.record(0, 0, Codec.Encode(1.0));
    Journal.record(0, 1, Codec.Encode(2.0));
    Key = Journal.key();
    const auto Blob = Cache->load(Key);
    ASSERT_TRUE(Blob.ok());
    Checkpoint = *Blob;
  }
  // Store a truncated prefix of the real checkpoint payload.
  ASSERT_GT(Checkpoint.size(), 8u);
  Checkpoint.resize(Checkpoint.size() / 2);
  ASSERT_TRUE(Cache->store(Key, Checkpoint).ok());

  ::testing::internal::CaptureStderr();
  harness::CampaignJournal Reopened(Cache, "camp/m", Params, 1, 2);
  const std::string Err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("[journal] corrupt checkpoint"), std::string::npos);
  EXPECT_EQ(Reopened.entries(), 0u);
  EXPECT_EQ(Reopened.loadStatus().code(), ErrorCode::Corrupt);

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

//===----------------------------------------------------------------------===//
// Exit codes
//===----------------------------------------------------------------------===//

TEST(ExitCodeTest, ContractIsStable) {
  EXPECT_EQ(exitcode::Ok, 0);
  EXPECT_EQ(exitcode::Failure, 1);
  EXPECT_EQ(exitcode::Usage, 2);
  EXPECT_EQ(exitcode::Interrupted, 130);
  EXPECT_EQ(exitcode::CrashChild, 137);
}
