//===- tests/test_model_properties.cpp - Model invariant sweeps ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Parameterized invariant sweeps over the analytical machinery:
// probability conservation in path enumeration, and the cost model's
// behavior under machine-parameter changes (Eq. 14's 1/fw scaling, penalty
// monotonicity).
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "core/CostModel.h"
#include "core/HammockAnalysis.h"
#include "core/LoopSelect.h"
#include "profile/Profiler.h"
#include "workloads/SpecSuite.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::core;

//===----------------------------------------------------------------------===//
// Path enumeration: probability conservation over real benchmarks
//===----------------------------------------------------------------------===//

class PathProbabilityProperty
    : public ::testing::TestWithParam<const char *> {};

TEST_P(PathProbabilityProperty, MassIsConservedOrAccounted) {
  workloads::Workload W = workloads::buildByName(GetParam());
  cfg::ProgramAnalysis PA(*W.Prog);
  auto Prof = profile::collectProfile(
      *W.Prog, PA, W.buildImage(workloads::InputSetKind::Run));
  SelectionConfig Config;

  for (uint32_t Addr : W.Prog->condBranchAddrs()) {
    if (!Prof.Edges.wasExecuted(Addr))
      continue;
    if (isLoopExitBranch(PA, Addr))
      continue;
    const BranchCandidate Cand =
        analyzeBranch(PA, Prof.Edges, Addr, Config, Config.MaxInstr,
                      Config.MaxCondBr);
    for (const cfg::PathSet *Set : {&Cand.TakenPaths, &Cand.FallPaths}) {
      // Materialized probability plus pruned mass accounts for all mass
      // (up to the MaxPaths overflow, which is flagged).
      const double Accounted = Set->totalProb() + Set->LostProbMass;
      if (!Set->Overflowed) {
        EXPECT_GT(Accounted, 0.98) << GetParam() << " @" << Addr;
        EXPECT_LT(Accounted, 1.02) << GetParam() << " @" << Addr;
      }
      // Per-path sanity.
      for (const cfg::Path &P : Set->Paths) {
        EXPECT_GT(P.Prob, 0.0);
        EXPECT_LE(P.Prob, 1.0 + 1e-12);
      }
      // Merge probabilities are probabilities.
      for (const CfmCandidate &Cfm : Cand.Cfms) {
        EXPECT_GE(Cfm.MergeProb, 0.0);
        EXPECT_LE(Cfm.MergeProb, 1.0 + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, PathProbabilityProperty,
                         ::testing::Values("gzip", "gcc", "twolf", "go",
                                           "parser", "crafty"));

//===----------------------------------------------------------------------===//
// Cost model: machine-parameter monotonicity (Eq. 14 / Eq. 1)
//===----------------------------------------------------------------------===//

class CostModelParamProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(CostModelParamProperty, OverheadScalesInverselyWithFetchWidth) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/8);
  cfg::ProgramAnalysis PA(*H.Prog);
  cfg::EdgeProfile Prof;
  for (int I = 0; I < 500; ++I) {
    Prof.recordBranch(H.BranchAddr, true);
    Prof.recordBranch(H.BranchAddr, false);
  }
  for (uint32_t Addr : H.Prog->condBranchAddrs()) {
    if (Addr == H.BranchAddr)
      continue;
    for (int I = 0; I < 99; ++I)
      Prof.recordBranch(Addr, true);
    Prof.recordBranch(Addr, false);
  }
  SelectionConfig Config;
  const BranchCandidate Cand = analyzeBranch(
      PA, Prof, H.BranchAddr, Config, Config.MaxInstr, Config.MaxCondBr);
  CfmCandidate Exact;
  Exact.Block = Cand.Iposdom;
  Exact.MergeProb = 1.0;

  const unsigned FW = GetParam();
  SelectionConfig Narrow = Config;
  Narrow.FetchWidth = FW;
  SelectionConfig Wide = Config;
  Wide.FetchWidth = FW * 2;
  const HammockCost NarrowCost =
      evaluateHammockCost(Cand, {Exact}, Narrow, OverheadMethod::EdgeProfile);
  const HammockCost WideCost =
      evaluateHammockCost(Cand, {Exact}, Wide, OverheadMethod::EdgeProfile);
  // Eq. 14: overhead = useless/fw, so doubling fw halves the overhead.
  EXPECT_NEAR(NarrowCost.OverheadCycles, 2.0 * WideCost.OverheadCycles,
              1e-9);
}

TEST_P(CostModelParamProperty, CostDecreasesWithMispPenalty) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/8);
  cfg::ProgramAnalysis PA(*H.Prog);
  cfg::EdgeProfile Prof;
  for (int I = 0; I < 500; ++I) {
    Prof.recordBranch(H.BranchAddr, true);
    Prof.recordBranch(H.BranchAddr, false);
  }
  for (uint32_t Addr : H.Prog->condBranchAddrs()) {
    if (Addr == H.BranchAddr)
      continue;
    for (int I = 0; I < 99; ++I)
      Prof.recordBranch(Addr, true);
    Prof.recordBranch(Addr, false);
  }
  SelectionConfig Config;
  const BranchCandidate Cand = analyzeBranch(
      PA, Prof, H.BranchAddr, Config, Config.MaxInstr, Config.MaxCondBr);
  CfmCandidate Exact;
  Exact.Block = Cand.Iposdom;
  Exact.MergeProb = 1.0;

  SelectionConfig Low = Config;
  Low.MispPenaltyCycles = GetParam();
  SelectionConfig High = Config;
  High.MispPenaltyCycles = GetParam() + 10;
  const HammockCost LowCost =
      evaluateHammockCost(Cand, {Exact}, Low, OverheadMethod::EdgeProfile);
  const HammockCost HighCost =
      evaluateHammockCost(Cand, {Exact}, High, OverheadMethod::EdgeProfile);
  // A larger flush penalty makes predication strictly more attractive
  // (Eq. 1's benefit term grows).
  EXPECT_LT(HighCost.CostCycles, LowCost.CostCycles);
}

INSTANTIATE_TEST_SUITE_P(Widths, CostModelParamProperty,
                         ::testing::Values(2u, 4u, 8u, 16u));

//===----------------------------------------------------------------------===//
// Loop cost model: probability-mix edge cases
//===----------------------------------------------------------------------===//

TEST(LoopCostEdgeCases, ZeroEverythingIsZeroCost) {
  SelectionConfig Config;
  LoopCostInputs In; // all zeros
  const LoopCost Cost = evaluateLoopCost(In, Config);
  EXPECT_DOUBLE_EQ(Cost.CostCycles, 0.0);
  EXPECT_FALSE(Cost.Selected);
}

TEST(LoopCostEdgeCases, PureNoExitNeverSelected) {
  SelectionConfig Config;
  LoopCostInputs In;
  In.BodyInstrs = 10;
  In.SelectUops = 4;
  In.DpredIter = 8;
  In.PNoExit = 1.0;
  EXPECT_FALSE(evaluateLoopCost(In, Config).Selected);
}

TEST(LoopCostEdgeCases, LateExitDominatesEvenWithBigBody) {
  SelectionConfig Config;
  LoopCostInputs In;
  In.BodyInstrs = 30; // STATIC_LOOP_SIZE boundary
  In.SelectUops = 8;
  In.DpredIter = 10;
  In.DpredExtraIter = 3;
  In.PLateExit = 1.0;
  // Overhead: 30*3/8 + 8*10/8 = 11.25 + 10 = 21.25 < 25 penalty.
  const LoopCost Cost = evaluateLoopCost(In, Config);
  EXPECT_NEAR(Cost.OverheadLate, 21.25, 1e-9);
  EXPECT_TRUE(Cost.Selected);
}
