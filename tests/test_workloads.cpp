//===- tests/test_workloads.cpp - Synthetic suite tests -----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"
#include "workloads/Patterns.h"
#include "workloads/SpecSuite.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <set>

using namespace dmp;
using namespace dmp::workloads;

TEST(SpecSuiteTest, HasSeventeenBenchmarks) {
  const auto &Suite = specSuite();
  EXPECT_EQ(Suite.size(), 17u);
  std::set<std::string> Names;
  for (const BenchmarkSpec &Spec : Suite)
    Names.insert(Spec.Name);
  EXPECT_EQ(Names.size(), 17u);
  EXPECT_TRUE(Names.count("gzip"));
  EXPECT_TRUE(Names.count("go"));
  EXPECT_TRUE(Names.count("m88ksim"));
}

TEST(SpecSuiteTest, AllBenchmarksBuildAndVerify) {
  for (const BenchmarkSpec &Spec : specSuite()) {
    const Workload W = buildBenchmark(Spec);
    const Status LintStatus = analyze::lintProgram(*W.Prog);
    EXPECT_TRUE(LintStatus.ok()) << Spec.Name << ": " << LintStatus.toString();
    EXPECT_GT(W.Prog->instrCount(), 100u) << Spec.Name;
    EXPECT_FALSE(W.Slots.empty()) << Spec.Name;
    EXPECT_GT(W.MemoryWords, 0u) << Spec.Name;
  }
}

TEST(SpecSuiteTest, ImagesAreDeterministic) {
  const Workload W = buildByName("crafty");
  const auto A = W.buildImage(InputSetKind::Run);
  const auto B = W.buildImage(InputSetKind::Run);
  EXPECT_EQ(A, B);
}

TEST(SpecSuiteTest, RunAndTrainImagesDiffer) {
  const Workload W = buildByName("crafty");
  const auto Run = W.buildImage(InputSetKind::Run);
  const auto Train = W.buildImage(InputSetKind::Train);
  ASSERT_EQ(Run.size(), Train.size());
  size_t Different = 0;
  for (size_t I = 0; I < Run.size(); ++I)
    Different += (Run[I] != Train[I]);
  // Distributions are shifted, not scrambled: many words differ but the
  // images are clearly related (same slots, same kinds of content).
  EXPECT_GT(Different, Run.size() / 100);
}

TEST(SpecSuiteTest, SlotBasesAreDisjointRegions) {
  const Workload W = buildByName("go");
  std::set<uint64_t> Bases;
  for (const PatternSlot &Slot : W.Slots) {
    EXPECT_EQ(Slot.Base % ComponentBuilder::RegionWords, 0u);
    EXPECT_TRUE(Bases.insert(Slot.Base).second) << "duplicate region";
  }
}

TEST(SpecSuiteTest, BenchmarksAreDistinctPrograms) {
  const Workload A = buildByName("gzip");
  const Workload B = buildByName("go");
  EXPECT_NE(A.Prog->instrCount(), B.Prog->instrCount());
  EXPECT_NE(A.Prog->condBranchAddrs().size(),
            B.Prog->condBranchAddrs().size());
}

TEST(SpecSuiteTest, ProgramsAreDeterministic) {
  const Workload A = buildByName("parser");
  const Workload B = buildByName("parser");
  ASSERT_EQ(A.Prog->instrCount(), B.Prog->instrCount());
  for (uint32_t Addr = 0; Addr < A.Prog->instrCount(); ++Addr) {
    EXPECT_EQ(A.Prog->instrAt(Addr).Op, B.Prog->instrAt(Addr).Op);
    EXPECT_EQ(A.Prog->instrAt(Addr).Imm, B.Prog->instrAt(Addr).Imm);
  }
}

TEST(PatternsTest, BernoulliRespectsProbability) {
  std::vector<int64_t> Image;
  RNG Rng(3);
  fillBernoulli(Image, 0, 10000, 0.3, Rng);
  int64_t Ones = 0;
  for (int64_t W : Image)
    Ones += W;
  EXPECT_NEAR(static_cast<double>(Ones) / 10000.0, 0.3, 0.03);
}

TEST(PatternsTest, PeriodicPattern) {
  std::vector<int64_t> Image;
  fillPeriodic(Image, 0, 12, 3);
  for (size_t I = 0; I < 12; ++I)
    EXPECT_EQ(Image[I], (I % 3 == 0) ? 1 : 0);
}

TEST(PatternsTest, TripCountsInRange) {
  std::vector<int64_t> Image;
  RNG Rng(9);
  fillTripCounts(Image, 0, 1000, 2, 9, Rng);
  for (int64_t W : Image) {
    EXPECT_GE(W, 2);
    EXPECT_LE(W, 9);
  }
}

TEST(PatternsTest, MarkovHasRuns) {
  std::vector<int64_t> Image;
  RNG Rng(17);
  fillMarkov(Image, 0, 10000, 0.02, Rng);
  // Expected switches ~ 200; far fewer than a Bernoulli(0.5) stream.
  size_t Switches = 0;
  for (size_t I = 1; I < Image.size(); ++I)
    Switches += (Image[I] != Image[I - 1]);
  EXPECT_LT(Switches, 500u);
  EXPECT_GT(Switches, 50u);
}
