//===- tests/test_confidence.cpp - Confidence estimator unit tests ------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Direct unit tests for uarch::ConfidenceEstimator beyond the integration
// coverage in test_uarch.cpp: counter saturation behavior, the
// reset-on-misprediction MDC semantics, reset() on pipeline flush, and
// bounds on the measured Acc_Conf statistic.  HistoryBits=0 makes the
// table index a pure function of the branch address, so expectations are
// exact.
//
//===----------------------------------------------------------------------===//

#include "support/Saturating.h"
#include "uarch/ConfidenceEstimator.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::uarch;

namespace {
constexpr uint32_t Addr = 0x5;
constexpr unsigned Threshold = 14;

ConfidenceEstimator makeEstimator(unsigned Thresh = Threshold) {
  return ConfidenceEstimator(/*IndexBits=*/6, /*HistoryBits=*/0, Thresh);
}
} // namespace

TEST(ConfidenceEstimatorTest, StartsWarmAtCounterMax) {
  const ConfidenceEstimator CE = makeEstimator();
  // Counters initialize saturated, so a cold table is high-confidence
  // everywhere (documented deviation from reset-to-zero hardware).
  for (uint32_t A = 0; A < 64; ++A)
    EXPECT_FALSE(CE.isLowConfidence(A));
}

TEST(ConfidenceEstimatorTest, MispredictionResetsCounterToZero) {
  ConfidenceEstimator CE = makeEstimator();
  CE.update(Addr, /*PredictedCorrectly=*/false, /*Taken=*/true);
  EXPECT_TRUE(CE.isLowConfidence(Addr));
  // One misprediction must zero the MDC, not just decrement it: with
  // threshold 14 even 13 subsequent correct predictions stay low-conf.
  for (unsigned I = 0; I < Threshold - 1; ++I) {
    CE.update(Addr, /*PredictedCorrectly=*/true, /*Taken=*/true);
    EXPECT_TRUE(CE.isLowConfidence(Addr)) << "after " << (I + 1);
  }
  CE.update(Addr, /*PredictedCorrectly=*/true, /*Taken=*/true);
  EXPECT_FALSE(CE.isLowConfidence(Addr));
}

TEST(ConfidenceEstimatorTest, CounterSaturatesAtMax) {
  ConfidenceEstimator CE = makeEstimator();
  CE.update(Addr, false, true); // Zero the counter.
  // Far more correct updates than the 4-bit range can represent...
  for (unsigned I = 0; I < 10 * SaturatingCounter<4>::Max; ++I)
    CE.update(Addr, true, true);
  EXPECT_FALSE(CE.isLowConfidence(Addr));
  // ...must not wrap: still exactly one misprediction from low confidence.
  CE.update(Addr, false, true);
  EXPECT_TRUE(CE.isLowConfidence(Addr));
}

TEST(ConfidenceEstimatorTest, ResetRestoresWarmStateAndClearsStats) {
  ConfidenceEstimator CE = makeEstimator();
  for (uint32_t A = 0; A < 8; ++A)
    CE.update(A, /*PredictedCorrectly=*/false, /*Taken=*/false);
  for (uint32_t A = 0; A < 8; ++A) {
    EXPECT_TRUE(CE.isLowConfidence(A));
    CE.update(A, /*PredictedCorrectly=*/false, /*Taken=*/false);
  }
  EXPECT_GT(CE.lowConfidenceCount(), 0u);
  EXPECT_GT(CE.measuredAccConf(), 0.0);

  CE.reset();
  for (uint32_t A = 0; A < 64; ++A)
    EXPECT_FALSE(CE.isLowConfidence(A));
  EXPECT_EQ(CE.lowConfidenceCount(), 0u);
  EXPECT_EQ(CE.measuredAccConf(), 0.0);
}

TEST(ConfidenceEstimatorTest, AccConfIsExactLowConfMispredictionRate) {
  ConfidenceEstimator CE = makeEstimator();
  // The initial misprediction happens at high confidence: not counted.
  CE.update(Addr, /*PredictedCorrectly=*/false, /*Taken=*/true);
  EXPECT_EQ(CE.lowConfidenceCount(), 0u);
  // Three correct + one mispredicted update, all while low-confidence.
  for (int I = 0; I < 3; ++I)
    CE.update(Addr, /*PredictedCorrectly=*/true, /*Taken=*/true);
  CE.update(Addr, /*PredictedCorrectly=*/false, /*Taken=*/true);
  EXPECT_EQ(CE.lowConfidenceCount(), 4u);
  EXPECT_DOUBLE_EQ(CE.measuredAccConf(), 0.25);
}

TEST(ConfidenceEstimatorTest, AccConfStaysWithinUnitInterval) {
  ConfidenceEstimator CE(/*IndexBits=*/4, /*HistoryBits=*/4, Threshold);
  // Pseudo-random but deterministic outcome stream over aliasing branches.
  uint64_t X = 0x9E3779B97F4A7C15ull;
  uint64_t Updates = 0;
  for (int I = 0; I < 5000; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    const uint32_t A = static_cast<uint32_t>(X & 0xFF);
    CE.update(A, /*PredictedCorrectly=*/(X >> 8) & 1, /*Taken=*/(X >> 9) & 1);
    ++Updates;
    const double Acc = CE.measuredAccConf();
    ASSERT_GE(Acc, 0.0);
    ASSERT_LE(Acc, 1.0);
    ASSERT_LE(CE.lowConfidenceCount(), Updates);
  }
  EXPECT_GT(CE.lowConfidenceCount(), 0u);
}

TEST(ConfidenceEstimatorTest, BranchesAliasOnlyWithinTableIndex) {
  ConfidenceEstimator CE = makeEstimator();
  // 6 index bits: address 0x45 aliases 0x5; 0x9 does not.
  CE.update(Addr, /*PredictedCorrectly=*/false, /*Taken=*/true);
  EXPECT_TRUE(CE.isLowConfidence(Addr));
  EXPECT_TRUE(CE.isLowConfidence(Addr + 64));
  EXPECT_FALSE(CE.isLowConfidence(0x9));
}
