//===- tests/test_annotations.cpp - Annotation map and IO tests ---------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/AnnotationIO.h"
#include "core/DivergeInfo.h"
#include "core/SimpleSelectors.h"
#include "profile/Profiler.h"
#include "profile/TwoDProfile.h"
#include "sim/CycleResource.h"
#include "support/RNG.h"
#include "workloads/SpecSuite.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::core;

namespace {

DivergeMap sampleMap() {
  DivergeMap Map;
  DivergeAnnotation Simple;
  Simple.Kind = DivergeKind::SimpleHammock;
  Simple.AlwaysPredicate = true;
  Simple.Cfms.push_back(CfmPoint::atAddress(42, 1.0));
  Map.add(10, Simple);

  DivergeAnnotation Freq;
  Freq.Kind = DivergeKind::FreqHammock;
  Freq.Cfms.push_back(CfmPoint::atAddress(100, 0.97));
  Freq.Cfms.push_back(CfmPoint::atReturn(0.44));
  Map.add(55, Freq);

  DivergeAnnotation Loop;
  Loop.Kind = DivergeKind::Loop;
  Loop.LoopHeaderAddr = 200;
  Loop.LoopSelectUops = 5;
  Loop.LoopStayTaken = true;
  Loop.Cfms.push_back(CfmPoint::atAddress(230, 1.0));
  Map.add(229, Loop);

  DivergeAnnotation NoCfm;
  NoCfm.Kind = DivergeKind::NoCfm;
  Map.add(300, NoCfm);
  return Map;
}

} // namespace

TEST(DivergeMapTest, SortedAddrsAndCounts) {
  const DivergeMap Map = sampleMap();
  EXPECT_EQ(Map.size(), 4u);
  const auto Addrs = Map.sortedAddrs();
  ASSERT_EQ(Addrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(Addrs.begin(), Addrs.end()));
  // 1 + 2 + 1 + 0 CFM points over 4 entries.
  EXPECT_NEAR(Map.avgCfmPoints(), 1.0, 1e-9);
  const auto Kinds = Map.kindCounts();
  EXPECT_EQ(Kinds.at("simple"), 1u);
  EXPECT_EQ(Kinds.at("freq"), 1u);
  EXPECT_EQ(Kinds.at("loop"), 1u);
  EXPECT_EQ(Kinds.at("no-cfm"), 1u);
}

TEST(DivergeMapTest, TotalMergeProbCapped) {
  DivergeAnnotation Ann;
  Ann.Cfms.push_back(CfmPoint::atAddress(1, 0.7));
  Ann.Cfms.push_back(CfmPoint::atAddress(2, 0.6));
  EXPECT_DOUBLE_EQ(Ann.totalMergeProb(), 1.0);
}

TEST(AnnotationIOTest, RoundTrip) {
  const DivergeMap Map = sampleMap();
  const std::string Text = serializeDivergeMap(Map);
  EXPECT_NE(Text.find("# dmp-diverge-map v1"), std::string::npos);

  DivergeMap Parsed;
  const Status S = parseDivergeMap(Text, Parsed);
  ASSERT_TRUE(S.ok()) << S.toString();
  ASSERT_EQ(Parsed.size(), Map.size());
  EXPECT_EQ(Parsed.sortedAddrs(), Map.sortedAddrs());

  const DivergeAnnotation &Loop = *Parsed.find(229);
  EXPECT_EQ(Loop.Kind, DivergeKind::Loop);
  EXPECT_EQ(Loop.LoopHeaderAddr, 200u);
  EXPECT_EQ(Loop.LoopSelectUops, 5u);
  EXPECT_TRUE(Loop.LoopStayTaken);

  const DivergeAnnotation &Freq = *Parsed.find(55);
  ASSERT_EQ(Freq.Cfms.size(), 2u);
  EXPECT_EQ(Freq.Cfms[0].PointKind, CfmPoint::Kind::Address);
  EXPECT_EQ(Freq.Cfms[0].Addr, 100u);
  EXPECT_NEAR(Freq.Cfms[0].MergeProb, 0.97, 1e-6);
  EXPECT_EQ(Freq.Cfms[1].PointKind, CfmPoint::Kind::Return);
  EXPECT_NEAR(Freq.Cfms[1].MergeProb, 0.44, 1e-6);

  EXPECT_TRUE(Parsed.find(10)->AlwaysPredicate);
  EXPECT_FALSE(Parsed.find(300)->AlwaysPredicate);

  // Serialization is stable.
  EXPECT_EQ(serializeDivergeMap(Parsed), Text);
}

TEST(AnnotationIOTest, RejectsMissingHeader) {
  DivergeMap Map;
  const Status S = parseDivergeMap("branch 1 kind=simple always=0\n", Map);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Corrupt);
  EXPECT_NE(S.message().find("header"), std::string::npos) << S.toString();
}

TEST(AnnotationIOTest, RejectsMalformedTokens) {
  DivergeMap Map;
  const Status Kind = parseDivergeMap(
      "# dmp-diverge-map v1\nbranch 1 kind=banana always=0\n", Map);
  EXPECT_FALSE(Kind.ok());
  EXPECT_NE(Kind.message().find("unknown kind"), std::string::npos);
  EXPECT_FALSE(parseDivergeMap(
      "# dmp-diverge-map v1\nbranch 1 kind=simple cfm=bogus\n", Map).ok());
  EXPECT_FALSE(parseDivergeMap(
      "# dmp-diverge-map v1\nnonsense 1 2\n", Map).ok());
}

// Satellite coverage for the error paths promised by AnnotationIO.h: every
// malformed input yields a Corrupt diagnostic (never a crash) and leaves the
// output map untouched.

TEST(AnnotationIOTest, TruncatedFileLeavesMapUntouched) {
  const std::string Full = serializeDivergeMap(sampleMap());
  for (size_t Len = 0; Len < Full.size(); Len += 7) {
    DivergeMap Map;
    Map.add(999, DivergeAnnotation()); // sentinel: must survive failure
    const Status S = parseDivergeMap(Full.substr(0, Len), Map);
    if (!S.ok()) {
      EXPECT_EQ(S.code(), ErrorCode::Corrupt);
      EXPECT_EQ(Map.size(), 1u) << "failed parse must not mutate the map";
      EXPECT_TRUE(Map.contains(999));
    }
  }
}

TEST(AnnotationIOTest, RejectsOversizedNumbers) {
  DivergeMap Map;
  // Branch address above 2^32-1.
  const Status Addr = parseDivergeMap(
      "# dmp-diverge-map v1\nbranch 4294967296 kind=simple\n", Map);
  EXPECT_FALSE(Addr.ok());
  EXPECT_EQ(Addr.code(), ErrorCode::Corrupt);
  // A probability outside [0, 1].
  const Status Prob = parseDivergeMap(
      "# dmp-diverge-map v1\nbranch 1 kind=simple cfm=2:1.5\n", Map);
  EXPECT_FALSE(Prob.ok());
  // An absurdly large loop-header address.
  const Status Hdr = parseDivergeMap(
      "# dmp-diverge-map v1\nbranch 1 kind=loop header=99999999999999\n",
      Map);
  EXPECT_FALSE(Hdr.ok());
  EXPECT_EQ(Map.size(), 0u);
}

TEST(AnnotationIOTest, GarbageBytesYieldDiagnosticsNotCrashes) {
  // Deterministic pseudo-random garbage, including NULs and high bytes.
  RNG Rng(0xA110C);
  for (int Round = 0; Round < 50; ++Round) {
    std::string Garbage = "# dmp-diverge-map v1\n";
    const size_t Len = Rng.nextBelow(200);
    for (size_t I = 0; I < Len; ++I)
      Garbage.push_back(static_cast<char>(Rng.nextBelow(256)));
    DivergeMap Map;
    const Status S = parseDivergeMap(Garbage, Map);
    if (!S.ok()) {
      EXPECT_EQ(S.code(), ErrorCode::Corrupt);
      EXPECT_FALSE(S.message().empty());
      EXPECT_EQ(Map.size(), 0u);
    }
  }
}

TEST(TwoDProfileTest, DetectsPhaseDependentBranch) {
  // A benchmark with both strongly-biased (easy) branches and a hard
  // Bernoulli branch.
  workloads::Workload W = workloads::buildByName("gap");
  const profile::TwoDProfileData Data = profile::collectTwoDProfile(
      *W.Prog, W.buildImage(workloads::InputSetKind::Run), /*NumSlices=*/8,
      /*MaxInstrs=*/1'500'000);

  // Every executed conditional branch has stats.
  unsigned Covered = 0;
  for (uint32_t Addr : W.Prog->condBranchAddrs())
    Covered += (Data.find(Addr) != nullptr);
  EXPECT_GT(Covered, 5u);

  // The outer-loop back edge is essentially always predicted: it must be
  // classified as NOT potentially mispredicted.
  bool FoundEasy = false, FoundHard = false;
  for (uint32_t Addr : W.Prog->condBranchAddrs()) {
    const profile::PhaseStats *S = Data.find(Addr);
    if (!S)
      continue;
    if (!Data.isPotentiallyMispredicted(Addr))
      FoundEasy = true;
    if (S->overallMispRate() > 0.2)
      FoundHard = true;
  }
  EXPECT_TRUE(FoundEasy);
  EXPECT_TRUE(FoundHard);
}

TEST(TwoDProfileTest, FilterDropsOnlyEasyBranches) {
  workloads::Workload W = workloads::buildByName("gap");
  cfg::ProgramAnalysis PA(*W.Prog);
  const auto Image = W.buildImage(workloads::InputSetKind::Run);
  auto Prof = profile::collectProfile(*W.Prog, PA, Image);
  // Every-br selects everything, including always-easy branches: the 2D
  // filter must shrink it (the paper's proposed code-size optimization).
  const DivergeMap All = selectEveryBranch(PA, Prof);
  const profile::TwoDProfileData TwoD =
      profile::collectTwoDProfile(*W.Prog, Image, 8, 1'500'000);
  size_t Dropped = 0;
  const DivergeMap Filtered =
      profile::filterAlwaysEasyBranches(All, TwoD, &Dropped);
  EXPECT_GT(Dropped, 0u);
  EXPECT_EQ(Filtered.size() + Dropped, All.size());
  // Dropped branches must all be genuinely easy.
  for (uint32_t Addr : All.sortedAddrs()) {
    if (!Filtered.contains(Addr)) {
      EXPECT_LT(TwoD.find(Addr)->overallMispRate(), 0.05);
    }
  }
}

TEST(CycleResourceTest, RespectsCapacity) {
  sim::CycleResource Res(/*Capacity=*/2);
  EXPECT_EQ(Res.reserve(10), 10u);
  EXPECT_EQ(Res.reserve(10), 10u);
  EXPECT_EQ(Res.reserve(10), 11u); // third in cycle 10 spills to 11
  EXPECT_EQ(Res.reserve(11), 11u);
  EXPECT_EQ(Res.reserve(10), 12u); // 10 and 11 both full
}

TEST(CycleResourceTest, MonotoneUnderLoad) {
  sim::CycleResource Res(/*Capacity=*/4);
  RNG Rng(5);
  uint64_t Cycle = 0;
  for (int I = 0; I < 10000; ++I) {
    Cycle += Rng.nextBelow(3);
    const uint64_t Got = Res.reserve(Cycle);
    EXPECT_GE(Got, Cycle);
  }
}
