//===- tests/test_exec.cpp - Thread pool and task graph unit tests ------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/TaskGraph.h"
#include "exec/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

using namespace dmp::exec;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I < 1000; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1000);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(3);
    for (int I = 0; I < 200; ++I)
      Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    // No wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  for (int I = 0; I < 50; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 50);
  EXPECT_EQ(Pool.threadCount(), 1u);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 1u);
}

TEST(ThreadPoolTest, NestedSubmissionsComplete) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int I = 0; I < 20; ++I)
    Pool.submit([&Pool, &Count] {
      for (int J = 0; J < 10; ++J)
        Pool.submit(
            [&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The exception is consumed; the pool stays usable.
  std::atomic<int> Count{0};
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
}

TEST(ThreadPoolTest, RepeatedConstructionAndTeardown) {
  // Shutdown races tend to show up as hangs or crashes over many cycles.
  for (int Round = 0; Round < 50; ++Round) {
    ThreadPool Pool(Round % 4 + 1);
    std::atomic<int> Count{0};
    for (int I = 0; I < 20; ++I)
      Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    Pool.wait();
    ASSERT_EQ(Count.load(), 20);
  }
}

TEST(TaskGraphTest, DependenciesOrderExecution) {
  ThreadPool Pool(4);
  TaskGraph Graph;
  std::atomic<int> Order{0};
  int SlotA = -1, SlotB = -1, SlotC = -1;
  const auto A = Graph.add([&] { SlotA = Order.fetch_add(1); });
  const auto B = Graph.add([&] { SlotB = Order.fetch_add(1); }, {A});
  Graph.add([&] { SlotC = Order.fetch_add(1); }, {A, B});
  Graph.run(Pool);
  EXPECT_LT(SlotA, SlotB);
  EXPECT_LT(SlotB, SlotC);
}

TEST(TaskGraphTest, DiamondRunsEveryNodeOnce) {
  ThreadPool Pool(4);
  TaskGraph Graph;
  std::vector<std::atomic<int>> Runs(4);
  const auto Top = Graph.add([&] { Runs[0].fetch_add(1); });
  const auto Left = Graph.add([&] { Runs[1].fetch_add(1); }, {Top});
  const auto Right = Graph.add([&] { Runs[2].fetch_add(1); }, {Top});
  Graph.add([&] { Runs[3].fetch_add(1); }, {Left, Right});
  Graph.run(Pool);
  for (auto &R : Runs)
    EXPECT_EQ(R.load(), 1);
}

TEST(TaskGraphTest, WideFanOutCompletes) {
  ThreadPool Pool(4);
  TaskGraph Graph;
  std::atomic<int> Count{0};
  const auto Root = Graph.add([&Count] { Count.fetch_add(1); });
  std::vector<TaskGraph::TaskId> Mids;
  for (int I = 0; I < 100; ++I)
    Mids.push_back(Graph.add([&Count] { Count.fetch_add(1); }, {Root}));
  Graph.add([&Count] { Count.fetch_add(1); }, Mids);
  Graph.run(Pool);
  EXPECT_EQ(Count.load(), 102);
}

TEST(TaskGraphTest, ExceptionCancelsDependentsAndRethrows) {
  ThreadPool Pool(2);
  TaskGraph Graph;
  std::atomic<bool> DependentRan{false};
  const auto Bad =
      Graph.add([]() -> void { throw std::runtime_error("stage failed"); });
  Graph.add([&DependentRan] { DependentRan = true; }, {Bad});
  EXPECT_THROW(Graph.run(Pool), std::runtime_error);
  EXPECT_FALSE(DependentRan.load());
}

TEST(TaskGraphTest, IndependentTasksStillSkippedAfterCancellation) {
  // Cancellation is best-effort for independent tasks, but the graph must
  // still terminate and rethrow.
  ThreadPool Pool(1);
  TaskGraph Graph;
  Graph.add([]() -> void { throw std::runtime_error("first"); });
  std::atomic<int> Count{0};
  for (int I = 0; I < 10; ++I)
    Graph.add([&Count] { Count.fetch_add(1); });
  EXPECT_THROW(Graph.run(Pool), std::runtime_error);
}

TEST(TaskGraphTest, EmptyGraphRuns) {
  ThreadPool Pool(2);
  TaskGraph Graph;
  Graph.run(Pool); // must not hang or throw
  EXPECT_EQ(Graph.size(), 0u);
}

TEST(TaskGraphTest, ManyRoundsOnSharedPool) {
  // The fig5 crash mode: graph destroyed on the waiter thread while the
  // last finisher is still inside the graph.  Many quick rounds over a
  // shared pool make that window easy to hit if it regresses.
  ThreadPool Pool(4);
  for (int Round = 0; Round < 200; ++Round) {
    TaskGraph Graph;
    std::atomic<int> Sum{0};
    std::vector<TaskGraph::TaskId> Roots;
    for (int I = 0; I < 8; ++I)
      Roots.push_back(Graph.add([&Sum] { Sum.fetch_add(1); }));
    for (int I = 0; I < 8; ++I)
      Graph.add([&Sum] { Sum.fetch_add(10); }, {Roots[I]});
    Graph.run(Pool);
    ASSERT_EQ(Sum.load(), 88);
  }
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(500);
  parallelFor(Pool, Hits.size(), [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ParallelMapTest, ResultsInIndexOrder) {
  ThreadPool Pool(4);
  const std::vector<size_t> Squares = parallelMap<size_t>(
      Pool, 100, [](size_t I) { return I * I; });
  ASSERT_EQ(Squares.size(), 100u);
  for (size_t I = 0; I < Squares.size(); ++I)
    EXPECT_EQ(Squares[I], I * I);
}

//===----------------------------------------------------------------------===//
// runAll(): the run-to-completion policy (see TaskGraph.h for the contract)
//===----------------------------------------------------------------------===//

using dmp::ErrorCode;
using dmp::Status;
using dmp::StatusError;

TEST(TaskGraphRunAllTest, RecordsPerTaskStatus) {
  ThreadPool Pool(4);
  TaskGraph Graph;
  std::atomic<int> GoodRan{0};
  const auto Good = Graph.add([&GoodRan] { GoodRan.fetch_add(1); });
  const auto Foreign =
      Graph.add([]() -> void { throw std::runtime_error("disk on fire"); });
  const auto Typed = Graph.add([]() -> void {
    throw StatusError(Status::transient("injected blip", "test"));
  });
  const std::vector<Status> St = Graph.runAll(Pool);
  ASSERT_EQ(St.size(), 3u);
  EXPECT_TRUE(St[Good].ok());
  EXPECT_EQ(GoodRan.load(), 1);
  // A foreign exception maps to Invariant with the exception text.
  EXPECT_EQ(St[Foreign].code(), ErrorCode::Invariant);
  EXPECT_NE(St[Foreign].message().find("disk on fire"), std::string::npos);
  // A StatusError's payload comes through unchanged.
  EXPECT_EQ(St[Typed].code(), ErrorCode::Transient);
  EXPECT_EQ(St[Typed].message(), "injected blip");
}

TEST(TaskGraphRunAllTest, CancelsOnlyTransitiveDependents) {
  ThreadPool Pool(4);
  TaskGraph Graph;
  std::atomic<bool> DependentRan{false}, IndependentRan{false};
  const auto Bad =
      Graph.add([]() -> void { throw std::runtime_error("stage failed"); });
  const auto Child =
      Graph.add([&DependentRan] { DependentRan = true; }, {Bad});
  const auto GrandChild = Graph.add([] {}, {Child});
  const auto Free = Graph.add([&IndependentRan] { IndependentRan = true; });
  const std::vector<Status> St = Graph.runAll(Pool);
  // The failure poisons its transitive dependents only...
  EXPECT_EQ(St[Bad].code(), ErrorCode::Invariant);
  EXPECT_EQ(St[Child].code(), ErrorCode::Cancelled);
  EXPECT_EQ(St[GrandChild].code(), ErrorCode::Cancelled);
  EXPECT_FALSE(DependentRan.load());
  // ...and the cancellation message names the failed dependency.
  EXPECT_NE(St[Child].message().find(std::to_string(Bad)),
            std::string::npos);
  // Independent subgraphs are unaffected — unlike run()'s fail-fast mode.
  EXPECT_TRUE(St[Free].ok());
  EXPECT_TRUE(IndependentRan.load());
}

TEST(TaskGraphRunAllTest, DiamondWithOneFailedParentIsCancelled) {
  ThreadPool Pool(2);
  TaskGraph Graph;
  const auto Ok = Graph.add([] {});
  const auto Bad = Graph.add(
      []() -> void { throw StatusError(Status::corrupt("bad blob", "t")); });
  std::atomic<bool> JoinRan{false};
  const auto Join = Graph.add([&JoinRan] { JoinRan = true; }, {Ok, Bad});
  const std::vector<Status> St = Graph.runAll(Pool);
  EXPECT_TRUE(St[Ok].ok());
  EXPECT_EQ(St[Bad].code(), ErrorCode::Corrupt);
  EXPECT_EQ(St[Join].code(), ErrorCode::Cancelled);
  EXPECT_FALSE(JoinRan.load());
}

TEST(TaskGraphRunAllTest, AllOkGraphReturnsAllOk) {
  ThreadPool Pool(3);
  TaskGraph Graph;
  std::atomic<int> Sum{0};
  const auto Root = Graph.add([&Sum] { Sum.fetch_add(1); });
  for (int I = 0; I < 20; ++I)
    Graph.add([&Sum] { Sum.fetch_add(1); }, {Root});
  const std::vector<Status> St = Graph.runAll(Pool);
  EXPECT_EQ(Sum.load(), 21);
  for (const Status &S : St)
    EXPECT_TRUE(S.ok()) << S.toString();
}

TEST(TaskGraphRunAllTest, EmptyGraphReturnsNoStatuses) {
  ThreadPool Pool(2);
  TaskGraph Graph;
  EXPECT_TRUE(Graph.runAll(Pool).empty());
}

TEST(ParallelForTest, ExceptionPropagates) {
  ThreadPool Pool(2);
  EXPECT_THROW(parallelFor(Pool, 10,
                           [](size_t I) {
                             if (I == 3)
                               throw std::runtime_error("index 3");
                           }),
               std::runtime_error);
}
