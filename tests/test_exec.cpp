//===- tests/test_exec.cpp - Thread pool and task graph unit tests ------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "exec/TaskGraph.h"
#include "exec/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

using namespace dmp::exec;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I < 1000; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1000);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(3);
    for (int I = 0; I < 200; ++I)
      Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    // No wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  for (int I = 0; I < 50; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 50);
  EXPECT_EQ(Pool.threadCount(), 1u);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 1u);
}

TEST(ThreadPoolTest, NestedSubmissionsComplete) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int I = 0; I < 20; ++I)
    Pool.submit([&Pool, &Count] {
      for (int J = 0; J < 10; ++J)
        Pool.submit(
            [&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool Pool(2);
  Pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The exception is consumed; the pool stays usable.
  std::atomic<int> Count{0};
  Pool.submit([&Count] { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
}

TEST(ThreadPoolTest, RepeatedConstructionAndTeardown) {
  // Shutdown races tend to show up as hangs or crashes over many cycles.
  for (int Round = 0; Round < 50; ++Round) {
    ThreadPool Pool(Round % 4 + 1);
    std::atomic<int> Count{0};
    for (int I = 0; I < 20; ++I)
      Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
    Pool.wait();
    ASSERT_EQ(Count.load(), 20);
  }
}

TEST(TaskGraphTest, DependenciesOrderExecution) {
  ThreadPool Pool(4);
  TaskGraph Graph;
  std::atomic<int> Order{0};
  int SlotA = -1, SlotB = -1, SlotC = -1;
  const auto A = Graph.add([&] { SlotA = Order.fetch_add(1); });
  const auto B = Graph.add([&] { SlotB = Order.fetch_add(1); }, {A});
  Graph.add([&] { SlotC = Order.fetch_add(1); }, {A, B});
  Graph.run(Pool);
  EXPECT_LT(SlotA, SlotB);
  EXPECT_LT(SlotB, SlotC);
}

TEST(TaskGraphTest, DiamondRunsEveryNodeOnce) {
  ThreadPool Pool(4);
  TaskGraph Graph;
  std::vector<std::atomic<int>> Runs(4);
  const auto Top = Graph.add([&] { Runs[0].fetch_add(1); });
  const auto Left = Graph.add([&] { Runs[1].fetch_add(1); }, {Top});
  const auto Right = Graph.add([&] { Runs[2].fetch_add(1); }, {Top});
  Graph.add([&] { Runs[3].fetch_add(1); }, {Left, Right});
  Graph.run(Pool);
  for (auto &R : Runs)
    EXPECT_EQ(R.load(), 1);
}

TEST(TaskGraphTest, WideFanOutCompletes) {
  ThreadPool Pool(4);
  TaskGraph Graph;
  std::atomic<int> Count{0};
  const auto Root = Graph.add([&Count] { Count.fetch_add(1); });
  std::vector<TaskGraph::TaskId> Mids;
  for (int I = 0; I < 100; ++I)
    Mids.push_back(Graph.add([&Count] { Count.fetch_add(1); }, {Root}));
  Graph.add([&Count] { Count.fetch_add(1); }, Mids);
  Graph.run(Pool);
  EXPECT_EQ(Count.load(), 102);
}

TEST(TaskGraphTest, ExceptionCancelsDependentsAndRethrows) {
  ThreadPool Pool(2);
  TaskGraph Graph;
  std::atomic<bool> DependentRan{false};
  const auto Bad =
      Graph.add([]() -> void { throw std::runtime_error("stage failed"); });
  Graph.add([&DependentRan] { DependentRan = true; }, {Bad});
  EXPECT_THROW(Graph.run(Pool), std::runtime_error);
  EXPECT_FALSE(DependentRan.load());
}

TEST(TaskGraphTest, IndependentTasksStillSkippedAfterCancellation) {
  // Cancellation is best-effort for independent tasks, but the graph must
  // still terminate and rethrow.
  ThreadPool Pool(1);
  TaskGraph Graph;
  Graph.add([]() -> void { throw std::runtime_error("first"); });
  std::atomic<int> Count{0};
  for (int I = 0; I < 10; ++I)
    Graph.add([&Count] { Count.fetch_add(1); });
  EXPECT_THROW(Graph.run(Pool), std::runtime_error);
}

TEST(TaskGraphTest, EmptyGraphRuns) {
  ThreadPool Pool(2);
  TaskGraph Graph;
  Graph.run(Pool); // must not hang or throw
  EXPECT_EQ(Graph.size(), 0u);
}

TEST(TaskGraphTest, ManyRoundsOnSharedPool) {
  // The fig5 crash mode: graph destroyed on the waiter thread while the
  // last finisher is still inside the graph.  Many quick rounds over a
  // shared pool make that window easy to hit if it regresses.
  ThreadPool Pool(4);
  for (int Round = 0; Round < 200; ++Round) {
    TaskGraph Graph;
    std::atomic<int> Sum{0};
    std::vector<TaskGraph::TaskId> Roots;
    for (int I = 0; I < 8; ++I)
      Roots.push_back(Graph.add([&Sum] { Sum.fetch_add(1); }));
    for (int I = 0; I < 8; ++I)
      Graph.add([&Sum] { Sum.fetch_add(10); }, {Roots[I]});
    Graph.run(Pool);
    ASSERT_EQ(Sum.load(), 88);
  }
}

TEST(ParallelForTest, CoversEveryIndexOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(500);
  parallelFor(Pool, Hits.size(), [&Hits](size_t I) { Hits[I].fetch_add(1); });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ParallelMapTest, ResultsInIndexOrder) {
  ThreadPool Pool(4);
  const std::vector<size_t> Squares = parallelMap<size_t>(
      Pool, 100, [](size_t I) { return I * I; });
  ASSERT_EQ(Squares.size(), 100u);
  for (size_t I = 0; I < Squares.size(); ++I)
    EXPECT_EQ(Squares[I], I * I);
}

TEST(ParallelForTest, ExceptionPropagates) {
  ThreadPool Pool(2);
  EXPECT_THROW(parallelFor(Pool, 10,
                           [](size_t I) {
                             if (I == 3)
                               throw std::runtime_error("index 3");
                           }),
               std::runtime_error);
}
