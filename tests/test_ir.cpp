//===- tests/test_ir.cpp - IR layer unit tests ---------------------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "analyze/Analyze.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::ir;

TEST(OpcodeTest, TerminatorClassification) {
  EXPECT_TRUE(isTerminator(Opcode::CondBr));
  EXPECT_TRUE(isTerminator(Opcode::Jmp));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_TRUE(isTerminator(Opcode::Halt));
  EXPECT_FALSE(isTerminator(Opcode::Call));
  EXPECT_FALSE(isTerminator(Opcode::Add));
  EXPECT_TRUE(isControlFlow(Opcode::Call));
}

TEST(OpcodeTest, RegisterUsage) {
  EXPECT_TRUE(writesRegister(Opcode::Add));
  EXPECT_TRUE(writesRegister(Opcode::Load));
  EXPECT_FALSE(writesRegister(Opcode::Store));
  EXPECT_FALSE(writesRegister(Opcode::CondBr));
  EXPECT_TRUE(readsSrc1(Opcode::Load));
  EXPECT_FALSE(readsSrc1(Opcode::LoadImm));
  EXPECT_TRUE(readsSrc2(Opcode::Store));
  EXPECT_FALSE(readsSrc2(Opcode::AddI));
}

TEST(InstructionTest, EvalCond) {
  Instruction I;
  I.Op = Opcode::CondBr;
  I.Cond = BrCond::Eq;
  EXPECT_TRUE(I.evalCond(3, 3));
  EXPECT_FALSE(I.evalCond(3, 4));
  I.Cond = BrCond::Ne;
  EXPECT_TRUE(I.evalCond(3, 4));
  I.Cond = BrCond::Lt;
  EXPECT_TRUE(I.evalCond(-1, 0));
  EXPECT_FALSE(I.evalCond(0, 0));
  I.Cond = BrCond::Ge;
  EXPECT_TRUE(I.evalCond(0, 0));
  I.Cond = BrCond::Ltu;
  EXPECT_FALSE(I.evalCond(-1, 0)); // unsigned: huge >= 0
  I.Cond = BrCond::Geu;
  EXPECT_TRUE(I.evalCond(-1, 0));
}

TEST(ProgramTest, FinalizeAssignsDenseAddresses) {
  auto H = test::buildSimpleHammockLoop();
  const Program &P = *H.Prog;
  ASSERT_TRUE(P.isFinalized());
  EXPECT_GT(P.instrCount(), 10u);
  for (uint32_t Addr = 0; Addr < P.instrCount(); ++Addr)
    EXPECT_EQ(P.instrAt(Addr).Addr, Addr);
}

TEST(ProgramTest, BlockLookupConsistent) {
  auto H = test::buildSimpleHammockLoop();
  const Program &P = *H.Prog;
  for (uint32_t Addr = 0; Addr < P.instrCount(); ++Addr) {
    const BasicBlock *Block = P.blockAt(Addr);
    EXPECT_GE(Addr, Block->getStartAddr());
    EXPECT_LT(Addr, Block->getStartAddr() + Block->instrCount());
  }
}

TEST(ProgramTest, CondBranchAddrsAreBranches) {
  auto H = test::buildFreqHammockLoop();
  const Program &P = *H.Prog;
  EXPECT_EQ(P.condBranchAddrs().size(), 3u); // hammock, rare, loop-back
  for (uint32_t Addr : P.condBranchAddrs())
    EXPECT_TRUE(P.instrAt(Addr).isCondBr());
}

TEST(ProgramTest, FindFunction) {
  auto H = test::buildRetFuncLoop();
  EXPECT_NE(H.Prog->findFunction("f"), nullptr);
  EXPECT_EQ(H.Prog->findFunction("nonexistent"), nullptr);
  EXPECT_EQ(H.Prog->getMain()->getName(), "main");
}

TEST(BasicBlockTest, SuccessorsOfBranch) {
  auto H = test::buildSimpleHammockLoop();
  auto Succs = H.BranchBlock->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], H.TakenSide); // taken first
  EXPECT_EQ(Succs[1], H.FallSide);  // then fallthrough
}

TEST(BasicBlockTest, FallthroughOnlyBlock) {
  auto H = test::buildSimpleHammockLoop();
  // The taken side has no terminator: it falls through to the merge.
  EXPECT_EQ(H.TakenSide->getTerminator(), nullptr);
  auto Succs = H.TakenSide->successors();
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0], H.Merge);
}

// Structural validation goes through the analyze:: static checker (the old
// ir::Verifier shim is gone): lintProgram returns a Status that is non-ok
// exactly when an error-severity diagnostic fired.

TEST(IrLintTest, AcceptsWellFormed) {
  auto H = test::buildFreqHammockLoop();
  analyze::DiagnosticSink Sink;
  EXPECT_TRUE(analyze::lintProgram(*H.Prog, &Sink).ok());
  EXPECT_EQ(Sink.errorCount(), 0u);
}

TEST(IrLintTest, RejectsUnfinalized) {
  Program P("bad");
  Function *F = P.createFunction("main");
  (void)F;
  EXPECT_FALSE(analyze::lintProgram(P).ok());
}

TEST(IrLintTest, RejectsMissingHalt) {
  Program P("bad");
  Function *F = P.createFunction("main");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(P);
  B.setInsertPoint(Entry);
  B.loadImm(1, 1);
  B.ret(); // main returns instead of halting: structurally legal block,
           // but no halt anywhere.
  P.finalize();
  EXPECT_FALSE(analyze::lintProgram(P).ok());
}

TEST(IrLintTest, RejectsEmptyBlock) {
  Program P("bad");
  Function *F = P.createFunction("main");
  F->createBlock("empty");
  BasicBlock *Second = F->createBlock("second");
  IRBuilder B(P);
  B.setInsertPoint(Second);
  B.halt();
  P.finalize();
  EXPECT_FALSE(analyze::lintProgram(P).ok());
}

TEST(IrLintTest, RejectsFallOffFunctionEnd) {
  Program P("bad");
  Function *F = P.createFunction("main");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(P);
  B.setInsertPoint(Entry);
  B.loadImm(1, 1); // no terminator at all
  P.finalize();
  EXPECT_FALSE(analyze::lintProgram(P).ok());
}

TEST(PrinterTest, ContainsMnemonicsAndNames) {
  auto H = test::buildSimpleHammockLoop();
  const std::string Text = printProgram(*H.Prog);
  EXPECT_NE(Text.find("func main"), std::string::npos);
  EXPECT_NE(Text.find("br."), std::string::npos);
  EXPECT_NE(Text.find("halt"), std::string::npos);
  EXPECT_NE(Text.find("header:"), std::string::npos);
}

TEST(IRBuilderTest, FillerHasRequestedLength) {
  Program P("filler");
  Function *F = P.createFunction("main");
  BasicBlock *Entry = F->createBlock("entry");
  IRBuilder B(P);
  B.setInsertPoint(Entry);
  B.emitFiller(17, 8);
  B.halt();
  P.finalize();
  EXPECT_EQ(P.instrCount(), 18u);
}
