//===- tests/test_crash.cpp - Fork-based crashpoint harness -------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// The crash-consistency acceptance tests: each test forks a child that dies
// at the most hostile instant of a write protocol — either via a fault::Plan
// crashpoint (Injector::maybeCrash -> _exit(137), no destructors, no stdio
// flush, exactly like a kill -9) or via a real mid-campaign SIGINT — and the
// parent verifies the recovery guarantees:
//
//   1. CrashMidStore leaves an orphan temp file, never a torn blob; the
//      next process's recovery sweep reaps it and a store heals the key.
//   2. CrashMidJournalRewrite leaves the *old* checkpoint intact: the
//      journal is old-or-new, never torn.
//   3. A campaign crashed mid-checkpoint resumes under --journal and its
//      final checkpoint is bit-identical to an uninterrupted campaign's.
//   4. SIGINT mid-campaign exits 130 after a checkpoint flush, and the
//      rerun resumes the completed cells.
//   5. Two writer processes and a reader hammering one cache directory
//      never observe a torn blob, and the shared counters stay sane.
//
// These tests fork, wait, and run real campaigns, so they carry the "crash"
// label next to "tier1" (see tests/CMakeLists.txt and scripts/check.sh
// --crash).
//
//===----------------------------------------------------------------------===//

#include "fault/Fault.h"
#include "guard/Guard.h"
#include "harness/Engine.h"
#include "serialize/ArtifactCache.h"
#include "support/ExitCodes.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace dmp;

namespace {

std::filesystem::path freshTempDir(const std::string &Tag) {
  const std::filesystem::path Dir =
      std::filesystem::temp_directory_path() /
      ("dmp-crash-" + Tag + "-" + std::to_string(::getpid()));
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
  return Dir;
}

/// Forks and runs \p Body in the child; the child exits with Body's return
/// value unless a crashpoint _exit()s it first.  Returns the child's exit
/// code as seen by waitpid (-1 on abnormal termination).
int runForked(const std::function<int()> &Body) {
  const pid_t Pid = ::fork();
  if (Pid == 0) {
    // Keep campaign footers of deliberately-killed children out of the
    // test output.
    std::freopen("/dev/null", "w", stderr);
    ::_exit(Body());
  }
  if (Pid < 0)
    return -1;
  int WStatus = 0;
  if (::waitpid(Pid, &WStatus, 0) != Pid)
    return -1;
  return WIFEXITED(WStatus) ? WEXITSTATUS(WStatus) : -1;
}

/// A plan that fires the single crashpoint \p S on every key.
fault::Plan crashPlan(fault::Site S) {
  fault::Plan Plan;
  Plan.Seed = 1;
  Plan.at(S) = {/*Rate=*/1.0, /*MaxFaultsPerOp=*/~0u, ErrorCode::Invariant};
  return Plan;
}

serialize::Digest digestOf(const std::string &Text) {
  serialize::Hasher H;
  H.update(Text);
  return H.finish();
}

std::vector<uint8_t> payloadOf(const std::string &Text, size_t Pad = 0) {
  std::vector<uint8_t> P(Text.begin(), Text.end());
  P.resize(P.size() + Pad, 0xCD);
  return P;
}

bool anyTempFileUnder(const std::filesystem::path &Dir) {
  std::error_code EC;
  for (auto It = std::filesystem::recursive_directory_iterator(Dir, EC);
       !EC && It != std::filesystem::recursive_directory_iterator(); ++It)
    if (It->is_regular_file(EC) &&
        It->path().filename().string().find(".tmp.") != std::string::npos)
      return true;
  return false;
}

std::vector<workloads::BenchmarkSpec> miniSuite() {
  const std::vector<workloads::BenchmarkSpec> &Suite = workloads::specSuite();
  return {Suite.begin(), Suite.begin() + 2};
}

harness::ExperimentOptions miniOptions() {
  harness::ExperimentOptions Options;
  Options.Profile.MaxInstrs = 150'000;
  Options.Sim.MaxInstrs = 60'000;
  return Options;
}

/// The deterministic value of campaign cell (\p Spec, \p Config) — a pure
/// function of the cell's RNG stream, so a crashed-then-resumed campaign
/// and an uninterrupted one must agree byte-for-byte.
double cellValue(const workloads::BenchmarkSpec &Spec, size_t Config) {
  RNG Rng = harness::ExperimentEngine::cellRng(Spec, Config);
  return static_cast<double>(Rng.next() % 100000);
}

} // namespace

//===----------------------------------------------------------------------===//
// 1. CrashMidStore
//===----------------------------------------------------------------------===//

TEST(CrashStoreTest, MidStoreCrashLeavesOrphanNeverTornBlobAndSweepHeals) {
  const std::filesystem::path Dir = freshTempDir("store");
  const serialize::Digest Key = digestOf("victim");
  const std::vector<uint8_t> Payload = payloadOf("victim-bytes", 2048);

  const int Exit = runForked([&] {
    serialize::ArtifactCache Cache(Dir.string());
    const fault::Injector Inj(crashPlan(fault::Site::CrashMidStore));
    Cache.setFaultInjector(&Inj);
    Cache.store(Key, Payload); // dies between temp write and rename
    return 0;                  // unreachable if the crashpoint fired
  });
  ASSERT_EQ(Exit, exitcode::CrashChild);

  // The child died after writing its temp file but before the rename:
  // debris exists, but the key reads as a clean miss — never Corrupt.
  EXPECT_TRUE(anyTempFileUnder(Dir));
  serialize::ArtifactCache Recovered(Dir.string());
  EXPECT_EQ(Recovered.load(Key).status().code(), ErrorCode::NotFound);

  // The recovery sweep reaps the orphan, and a store heals the key.
  Recovered.sweepNow();
  EXPECT_GE(Recovered.orphansReaped(), 1u);
  EXPECT_FALSE(anyTempFileUnder(Dir));
  ASSERT_TRUE(Recovered.store(Key, Payload).ok());
  const auto Loaded = Recovered.load(Key);
  ASSERT_TRUE(Loaded.ok()) << Loaded.status().toString();
  EXPECT_EQ(*Loaded, Payload);

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

//===----------------------------------------------------------------------===//
// 2. CrashMidJournalRewrite
//===----------------------------------------------------------------------===//

TEST(CrashJournalTest, MidRewriteCrashKeepsOldCheckpointNeverTorn) {
  const std::filesystem::path Dir = freshTempDir("journal");
  const serialize::Digest Params = harness::paramsDigest({"cfg-a", "cfg-b"});
  const harness::CellCodec<double> &Codec = harness::doubleCellCodec();

  // A healthy campaign checkpoints two cells.
  {
    auto Cache = std::make_shared<serialize::ArtifactCache>(Dir.string());
    harness::CampaignJournal Journal(Cache, "camp/m", Params, 2, 2);
    Journal.record(0, 0, Codec.Encode(10.5));
    Journal.record(0, 1, Codec.Encode(11.5));
    ASSERT_TRUE(Journal.lastCheckpointStatus().ok());
  }

  const int Exit = runForked([&] {
    auto Cache = std::make_shared<serialize::ArtifactCache>(Dir.string());
    harness::CampaignJournal Journal(Cache, "camp/m", Params, 2, 2);
    if (Journal.entries() != 2)
      return 3; // resume itself broke; fail loudly with a distinct code
    const fault::Injector Inj(
        crashPlan(fault::Site::CrashMidJournalRewrite));
    Journal.setFaultInjector(&Inj);
    Journal.record(1, 0, Codec.Encode(12.5)); // dies before the rewrite
    return 0;
  });
  ASSERT_EQ(Exit, exitcode::CrashChild);

  // Old-or-new, never torn: the pre-crash checkpoint is fully intact.
  auto Cache = std::make_shared<serialize::ArtifactCache>(Dir.string());
  harness::CampaignJournal Reopened(Cache, "camp/m", Params, 2, 2);
  EXPECT_TRUE(Reopened.loadStatus().ok());
  EXPECT_EQ(Reopened.entries(), 2u);
  std::vector<uint8_t> Payload;
  ASSERT_TRUE(Reopened.lookup(0, 0, Payload));
  ASSERT_TRUE(Reopened.lookup(0, 1, Payload));
  EXPECT_FALSE(Reopened.lookup(1, 0, Payload));

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

//===----------------------------------------------------------------------===//
// 3. Crash, then resume: bit-identical final checkpoint
//===----------------------------------------------------------------------===//

TEST(CrashJournalTest, CrashedCampaignResumesToBitIdenticalCheckpoint) {
  const std::filesystem::path CrashDir = freshTempDir("resume-crashed");
  const std::filesystem::path CleanDir = freshTempDir("resume-clean");
  const std::vector<workloads::BenchmarkSpec> Suite = miniSuite();
  const serialize::Digest Params = harness::paramsDigest({"cfg-a", "cfg-b"});
  const harness::CellCodec<double> &Codec = harness::doubleCellCodec();
  const auto CellFn = [](harness::Cell &C) {
    return static_cast<double>(C.Rng.next() % 100000);
  };

  // The crashed campaign: three cells checkpointed, then the process dies
  // in the middle of the fourth cell's checkpoint rewrite.
  const int Exit = runForked([&] {
    auto Cache = std::make_shared<serialize::ArtifactCache>(CrashDir.string());
    harness::CampaignJournal Journal(Cache, "camp/m", Params, 2, 2);
    Journal.record(0, 0, Codec.Encode(cellValue(Suite[0], 0)));
    Journal.record(0, 1, Codec.Encode(cellValue(Suite[0], 1)));
    Journal.record(1, 0, Codec.Encode(cellValue(Suite[1], 0)));
    if (!Journal.lastCheckpointStatus().ok())
      return 3;
    const fault::Injector Inj(
        crashPlan(fault::Site::CrashMidJournalRewrite));
    Journal.setFaultInjector(&Inj);
    Journal.record(1, 1, Codec.Encode(cellValue(Suite[1], 1)));
    return 0;
  });
  ASSERT_EQ(Exit, exitcode::CrashChild);

  // Resume under --journal: only the lost cell recomputes.
  serialize::Digest Key;
  {
    harness::EngineOptions EngineOpts;
    EngineOpts.Jobs = 2;
    EngineOpts.CacheDir = CrashDir.string();
    EngineOpts.Journal = "camp";
    harness::ExperimentEngine Engine(miniOptions(), EngineOpts);
    harness::CampaignJournal *Journal =
        Engine.journalFor("m", Params, Suite.size(), 2);
    ASSERT_NE(Journal, nullptr);
    EXPECT_EQ(Journal->entries(), 3u);
    Key = Journal->key();
    const auto Matrix = Engine.runMatrix<double>(
        Suite, 2, CellFn, harness::CellNeeds{false, false, false}, Journal,
        &Codec);
    for (size_t B = 0; B < Suite.size(); ++B)
      for (size_t C = 0; C < 2u; ++C) {
        ASSERT_TRUE(Matrix[B][C].ok());
        EXPECT_DOUBLE_EQ(*Matrix[B][C], cellValue(Suite[B], C));
      }
    const harness::CampaignCounters Counters = Engine.campaign();
    EXPECT_EQ(Counters.CellsResumed, 3u);
    EXPECT_EQ(Counters.CellsComputed, 1u);
  }

  // An uninterrupted campaign in a fresh cache.
  {
    harness::EngineOptions EngineOpts;
    EngineOpts.Jobs = 2;
    EngineOpts.CacheDir = CleanDir.string();
    EngineOpts.Journal = "camp";
    harness::ExperimentEngine Engine(miniOptions(), EngineOpts);
    harness::CampaignJournal *Journal =
        Engine.journalFor("m", Params, Suite.size(), 2);
    ASSERT_NE(Journal, nullptr);
    Engine.runMatrix<double>(Suite, 2, CellFn,
                             harness::CellNeeds{false, false, false}, Journal,
                             &Codec);
    EXPECT_EQ(Engine.campaign().CellsComputed, 4u);
  }

  // The acceptance bar: the resumed campaign's final checkpoint blob is
  // bit-identical to the uninterrupted one's.
  serialize::ArtifactCache Crashed(CrashDir.string());
  serialize::ArtifactCache Clean(CleanDir.string());
  const auto A = Crashed.load(Key);
  const auto B = Clean.load(Key);
  ASSERT_TRUE(A.ok()) << A.status().toString();
  ASSERT_TRUE(B.ok()) << B.status().toString();
  EXPECT_EQ(*A, *B);

  std::error_code EC;
  std::filesystem::remove_all(CrashDir, EC);
  std::filesystem::remove_all(CleanDir, EC);
}

//===----------------------------------------------------------------------===//
// 4. SIGINT mid-campaign: exit 130 after a checkpoint flush, then resume
//===----------------------------------------------------------------------===//

TEST(SignalTest, SigintMidCampaignExits130FlushesCheckpointAndResumes) {
  const std::filesystem::path Dir = freshTempDir("sigint");
  const std::vector<workloads::BenchmarkSpec> Suite = miniSuite();
  const serialize::Digest Params = harness::paramsDigest({"cfg-a", "cfg-b"});
  const harness::CellCodec<double> &Codec = harness::doubleCellCodec();
  const auto CellFn = [](harness::Cell &C) {
    return static_cast<double>(C.Rng.next() % 100000);
  };

  // The interrupted campaign: a real SIGINT is raised after the second
  // computed cell (the deterministic-interrupt test hook), the drain sheds
  // the rest, and the driver epilogue must exit 130 after flushing.
  const int Exit = runForked([&] {
    ::setenv("DMP_TEST_RAISE_SIGINT_AFTER_CELLS", "2", 1);
    guard::installSignalHandlers();
    harness::EngineOptions EngineOpts;
    EngineOpts.Jobs = 1; // deterministic interrupt point
    EngineOpts.CacheDir = Dir.string();
    EngineOpts.Journal = "camp";
    harness::ExperimentEngine Engine(miniOptions(), EngineOpts);
    harness::CampaignJournal *Journal =
        Engine.journalFor("m", Params, Suite.size(), 2);
    if (!Journal)
      return 3;
    Engine.runMatrix<double>(Suite, 2, CellFn,
                             harness::CellNeeds{false, false, false}, Journal,
                             &Codec);
    if (Engine.campaign().CellsCancelled == 0)
      return 4; // the drain never happened
    return harness::finishDriver(Engine);
  });
  ASSERT_EQ(Exit, exitcode::Interrupted);

  // The flush made the completed cells durable...
  {
    auto Cache = std::make_shared<serialize::ArtifactCache>(Dir.string());
    harness::CampaignJournal Flushed(Cache, "camp/m", Params, Suite.size(),
                                     2);
    EXPECT_TRUE(Flushed.loadStatus().ok());
    EXPECT_EQ(Flushed.entries(), 2u);
  }

  // ...and the rerun resumes them, completing the matrix with exactly the
  // values an uninterrupted campaign computes.
  harness::EngineOptions EngineOpts;
  EngineOpts.Jobs = 2;
  EngineOpts.CacheDir = Dir.string();
  EngineOpts.Journal = "camp";
  harness::ExperimentEngine Engine(miniOptions(), EngineOpts);
  harness::CampaignJournal *Journal =
      Engine.journalFor("m", Params, Suite.size(), 2);
  ASSERT_NE(Journal, nullptr);
  const auto Matrix = Engine.runMatrix<double>(
      Suite, 2, CellFn, harness::CellNeeds{false, false, false}, Journal,
      &Codec);
  for (size_t B = 0; B < Suite.size(); ++B)
    for (size_t C = 0; C < 2u; ++C) {
      ASSERT_TRUE(Matrix[B][C].ok());
      EXPECT_DOUBLE_EQ(*Matrix[B][C], cellValue(Suite[B], C));
    }
  const harness::CampaignCounters Counters = Engine.campaign();
  EXPECT_EQ(Counters.CellsResumed, 2u);
  EXPECT_EQ(Counters.CellsComputed, 2u);
  EXPECT_EQ(Counters.CellsFailed, 0u);
  EXPECT_EQ(Journal->entries(), 4u);

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

//===----------------------------------------------------------------------===//
// 5. Concurrent multi-process cache access
//===----------------------------------------------------------------------===//

TEST(ConcurrencyTest, TwoWritersAndAReaderNeverSeeTornBlobs) {
  const std::filesystem::path Dir = freshTempDir("mp");
  constexpr int NumKeys = 24;
  const auto KeyOf = [](int I) {
    return digestOf("mp-key-" + std::to_string(I));
  };
  const auto ValueOf = [](int I) {
    return payloadOf("mp-value-" + std::to_string(I), 4096);
  };

  const auto Writer = [&](uint64_t Salt) -> int {
    serialize::ArtifactCache Cache(Dir.string());
    for (int Round = 0; Round < 3; ++Round)
      for (int I = 0; I < NumKeys; ++I) {
        // Same key -> same bytes from both writers, so whoever renames
        // last wins harmlessly.
        if (!Cache.store(KeyOf(I), ValueOf(I)).ok())
          return 5;
        if ((I + static_cast<int>(Salt)) % 7 == 0)
          Cache.sweepNow(); // maintenance racing the other process
      }
    return 0;
  };

  const pid_t WriterA = ::fork();
  if (WriterA == 0)
    ::_exit(Writer(0));
  ASSERT_GT(WriterA, 0);
  const pid_t WriterB = ::fork();
  if (WriterB == 0)
    ::_exit(Writer(3));
  ASSERT_GT(WriterB, 0);

  // The reader hammers the cache while both writers run: every load is a
  // clean hit or a clean miss — Corrupt would mean a torn blob escaped the
  // temp-file + rename protocol.
  serialize::ArtifactCache Reader(Dir.string());
  uint64_t Hits = 0, MissesSeen = 0;
  bool WritersDone = false;
  while (!WritersDone) {
    for (int I = 0; I < NumKeys; ++I) {
      const auto Loaded = Reader.load(KeyOf(I));
      if (Loaded.ok()) {
        ++Hits;
        ASSERT_EQ(*Loaded, ValueOf(I));
      } else {
        ASSERT_EQ(Loaded.status().code(), ErrorCode::NotFound)
            << Loaded.status().toString();
        ++MissesSeen;
      }
    }
    int WStatus = 0;
    if (::waitpid(WriterA, &WStatus, WNOHANG) == WriterA) {
      ASSERT_TRUE(WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 0);
      ASSERT_EQ(::waitpid(WriterB, &WStatus, 0), WriterB);
      ASSERT_TRUE(WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 0);
      WritersDone = true;
    }
  }

  // Settled state: every key present with exact bytes, and the reader's
  // counters add up.
  const uint64_t HitsBefore = Reader.hits();
  const uint64_t MissesBefore = Reader.misses();
  EXPECT_EQ(HitsBefore, Hits);
  EXPECT_EQ(MissesBefore, MissesSeen);
  for (int I = 0; I < NumKeys; ++I) {
    const auto Loaded = Reader.load(KeyOf(I));
    ASSERT_TRUE(Loaded.ok()) << Loaded.status().toString();
    EXPECT_EQ(*Loaded, ValueOf(I));
  }
  EXPECT_EQ(Reader.hits(), HitsBefore + NumKeys);
  // No blob was ever rejected, and maintenance under contention only ever
  // skips (counts), never corrupts.
  EXPECT_EQ(Reader.corruptDeletes(), 0u);

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}
