//===- tests/test_serve_chaos.cpp - Socket chaos and crash-restart matrix -===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// The hostile-transport and hostile-timing counterpart to test_serve.cpp,
// in three suites:
//
//   ChaosScheduleTest      the ChaosProxy decision function itself: pure,
//                          seeded, replayable (no I/O).
//   ServeChaosTest         a live in-process server behind a ChaosProxy:
//                          chopped frames (every partial-read path), delays,
//                          and mid-frame disconnects — runCampaign() must
//                          ride through all of it with digests identical to
//                          local execution.
//   ServeCrashRestartTest  the full crash matrix, following the
//                          test_crash.cpp fork pattern: a real daemon
//                          process SIGKILLed at hostile instants
//                          (mid-submit, mid-cell, post-completion-pre-
//                          fetch), restarted on the same socket and job
//                          store, and the campaign asserted bit-identical
//                          to an uninterrupted local run.
//
// Registered per-test under tier1 and as one whole-exe `chaos_matrix`
// entry under the `chaos` ctest label (scripts/check.sh --chaos).
//
//===----------------------------------------------------------------------===//

#include "harness/CellRun.h"
#include "serve/ChaosProxy.h"
#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/WorkerPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serve;

namespace {

harness::CellSpec smallSpec(const std::string &Benchmark = "mcf",
                            const std::string &Algo = "all") {
  harness::CellSpec Spec;
  Spec.Benchmark = Benchmark;
  Spec.Algo = Algo;
  Spec.SimInstrs = 100'000;
  Spec.ProfileInstrs = 400'000;
  return Spec;
}

serialize::Digest localDigest(const harness::CellSpec &Spec) {
  StatusOr<harness::CellResult> R = harness::runCellSpec(Spec, nullptr);
  EXPECT_TRUE(R.ok()) << R.status().toString();
  return harness::cellResultDigest(*R);
}

std::string freshSocketPath(const std::string &Tag) {
  static std::atomic<unsigned> Counter{0};
  return (std::filesystem::temp_directory_path() /
          ("dmp-chaos-" + Tag + "-" + std::to_string(::getpid()) + "-" +
           std::to_string(Counter++) + ".sock"))
      .string();
}

/// A retry policy tuned for tests: fast, bounded, deterministic.
RetryPolicy testRetry(uint64_t Seed) {
  RetryPolicy Retry;
  Retry.ConnectAttempts = 40;
  Retry.BaseDelayMs = 2;
  Retry.MaxDelayMs = 100;
  Retry.MaxResubmits = 16;
  Retry.Seed = Seed;
  return Retry;
}

} // namespace

//===----------------------------------------------------------------------===//
// ChaosScheduleTest — the injection decision is a pure seeded function.
//===----------------------------------------------------------------------===//

TEST(ChaosScheduleTest, DecideIsPureAndReplayable) {
  ChaosPlan Plan;
  Plan.Seed = 1234;
  for (uint64_t Site = 0; Site < 4; ++Site)
    for (uint64_t Op = 0; Op < 256; ++Op)
      EXPECT_EQ(ChaosProxy::decide(Plan, Site, Op, 0.5),
                ChaosProxy::decide(Plan, Site, Op, 0.5))
          << "site " << Site << " op " << Op
          << ": the same (seed, site, op) must replay the same decision";
}

TEST(ChaosScheduleTest, DecideRespectsRateBoundsAndSeed) {
  ChaosPlan Plan;
  Plan.Seed = 7;
  unsigned Hits = 0;
  constexpr unsigned kOps = 4096;
  for (uint64_t Op = 0; Op < kOps; ++Op) {
    EXPECT_FALSE(ChaosProxy::decide(Plan, 0, Op, 0.0));
    EXPECT_TRUE(ChaosProxy::decide(Plan, 0, Op, 1.0));
    if (ChaosProxy::decide(Plan, 0, Op, 0.5))
      ++Hits;
  }
  // A hash this far from fair would be a bug, not bad luck.
  EXPECT_GT(Hits, kOps / 4);
  EXPECT_LT(Hits, 3 * kOps / 4);
  // A different seed explores a different schedule.
  ChaosPlan Other = Plan;
  Other.Seed = 8;
  bool Differs = false;
  for (uint64_t Op = 0; Op < 64 && !Differs; ++Op)
    Differs = ChaosProxy::decide(Plan, 0, Op, 0.5) !=
              ChaosProxy::decide(Other, 0, Op, 0.5);
  EXPECT_TRUE(Differs);
}

//===----------------------------------------------------------------------===//
// ServeChaosTest — live in-process server behind a chaos relay (no forks).
//===----------------------------------------------------------------------===//

namespace {

class ServeChaosTest : public ::testing::Test {
protected:
  void startServer() {
    PoolOpts.Workers = 0;
    PoolOpts.UseCache = false;
    Pool = std::make_unique<WorkerPool>(PoolOpts);
    ServerOptions Opts;
    Opts.SocketPath = Socket = freshSocketPath("upstream");
    Opts.Quiet = true;
    Srv = std::make_unique<Server>(std::move(Opts), *Pool, &Token);
    ASSERT_TRUE(Srv->listen().ok());
    Loop = std::thread([this] { RunResult = Srv->run(); });
  }

  void startProxy(const ChaosPlan &Plan) {
    ProxyPath = freshSocketPath("proxy");
    Proxy = std::make_unique<ChaosProxy>(ProxyPath, Socket, Plan);
    ASSERT_TRUE(Proxy->start().ok());
  }

  void TearDown() override {
    if (Proxy)
      Proxy->stop();
    if (Loop.joinable()) {
      Srv->requestStop();
      Loop.join();
      EXPECT_TRUE(RunResult.ok()) << RunResult.toString();
    }
    std::error_code EC;
    std::filesystem::remove(Socket, EC);
    std::filesystem::remove(ProxyPath, EC);
  }

  WorkerPoolOptions PoolOpts;
  std::unique_ptr<WorkerPool> Pool;
  std::unique_ptr<Server> Srv;
  std::unique_ptr<ChaosProxy> Proxy;
  guard::CancelToken Token;
  std::thread Loop;
  std::string Socket;
  std::string ProxyPath;
  Status RunResult;
};

} // namespace

TEST_F(ServeChaosTest, ChoppedTransportIsDigestIdentical) {
  // Every chunk in both directions is forwarded in 1..3-byte pieces: the
  // peers see partial reads of every frame header and payload.  Short
  // writes must be invisible to the protocol.
  startServer();
  ChaosPlan Plan;
  Plan.Seed = 11;
  Plan.ChopRate = 1.0;
  Plan.ChopBytesMax = 3;
  startProxy(Plan);

  Client C;
  ASSERT_TRUE(C.connect(ProxyPath).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec("mcf", "all"));
  Req.Cells.push_back(smallSpec("mcf", "every-br"));
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, testRetry(11));
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_EQ(Reply->Cells.size(), 2u);
  for (size_t I = 0; I < 2; ++I) {
    ASSERT_TRUE(Reply->Cells[I].ok()) << Reply->Cells[I].status().toString();
    EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[I]).hex(),
              localDigest(Req.Cells[I]).hex())
        << "cell " << I << " diverged under chopped transport";
  }
  EXPECT_GT(Proxy->chunksForwarded(), 0u);
  EXPECT_EQ(Proxy->drops(), 0u);
}

TEST_F(ServeChaosTest, DelayedTransportIsDigestIdentical) {
  startServer();
  ChaosPlan Plan;
  Plan.Seed = 12;
  Plan.ChopRate = 0.5;
  Plan.DelayRate = 0.25;
  Plan.DelayMs = 1;
  startProxy(Plan);

  Client C;
  ASSERT_TRUE(C.connect(ProxyPath).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, testRetry(12));
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok());
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
}

TEST_F(ServeChaosTest, MidFrameDisconnectsAreRiddenThrough) {
  // The first two chunks each trigger a mid-frame cut: half the bytes are
  // delivered, then both sides of the link die.  The client must treat the
  // torn exchange as transport failure, reconnect, and resubmit — and the
  // server-side dedup guarantees the retries never double-run the job.
  startServer();
  ChaosPlan Plan;
  Plan.Seed = 13;
  Plan.DropRate = 1.0;
  Plan.MaxDrops = 2;
  Plan.ChopRate = 0.25;
  startProxy(Plan);

  Client C;
  ASSERT_TRUE(C.connect(ProxyPath).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, testRetry(13));
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok()) << Reply->Cells[0].status().toString();
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
  EXPECT_EQ(Proxy->drops(), 2u) << "both budgeted cuts should have fired";
  // At most one job ran for all those (re)submits.
  EXPECT_LE(Srv->counters().JobsAccepted, 1u + Srv->counters().JobsDeduped);
  EXPECT_EQ(Srv->counters().CellsCompleted, 1u)
      << "reconnect/resubmit must never double-run a cell";
}

//===----------------------------------------------------------------------===//
// ServeCrashRestartTest — SIGKILL the daemon at hostile instants.
//===----------------------------------------------------------------------===//

namespace {

/// Forks a real (Workers=0, durable, quiet) daemon process on a shared
/// socket and job store, kills it with SIGKILL at chosen instants, and
/// restarts it — the process-level analogue of ServeDurableTest, where
/// no destructor ever runs and only the checkpoints survive.
class ServeCrashRestartTest : public ::testing::Test {
protected:
  void SetUp() override {
    CacheDir = (std::filesystem::temp_directory_path() /
                ("dmp-chaos-store-" + std::to_string(::getpid()) + "-" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
    std::filesystem::remove_all(CacheDir);
    Socket = freshSocketPath("daemon");
  }

  void TearDown() override {
    killDaemon();
    std::error_code EC;
    std::filesystem::remove(Socket, EC);
    std::filesystem::remove_all(CacheDir, EC);
  }

  void spawnDaemon() {
    DaemonPid = ::fork();
    ASSERT_GE(DaemonPid, 0);
    if (DaemonPid == 0) {
      WorkerPoolOptions PO;
      PO.Workers = 0;
      PO.UseCache = true;
      PO.CacheDir = CacheDir;
      WorkerPool Pool(PO);
      ServerOptions SO;
      SO.SocketPath = Socket;
      SO.Quiet = true;
      Server Daemon(std::move(SO), Pool);
      if (!Daemon.listen().ok())
        ::_exit(1);
      (void)Daemon.run();
      ::_exit(0);
    }
    // Wait for the socket to answer before letting the test proceed.
    for (int I = 0; I < 5000; ++I) {
      Client Probe;
      if (Probe.connect(Socket).ok())
        return;
      ::usleep(1000);
    }
    FAIL() << "daemon never became connectable on " << Socket;
  }

  void killDaemon() {
    if (DaemonPid <= 0)
      return;
    ::kill(DaemonPid, SIGKILL);
    ::waitpid(DaemonPid, nullptr, 0);
    DaemonPid = -1;
  }

  /// Forks a client process that rides the campaign through whatever the
  /// test does to the daemon and reports each cell digest over a pipe.
  /// Returns the digests (empty on client failure).
  std::vector<std::string> runCampaignInChild(const SubmitRequest &Req,
                                              uint64_t Seed) {
    int Pipe[2];
    EXPECT_EQ(::pipe(Pipe), 0);
    const pid_t Pid = ::fork();
    EXPECT_GE(Pid, 0);
    if (Pid == 0) {
      ::close(Pipe[0]);
      const RetryPolicy Retry = testRetry(Seed);
      Client C;
      if (!C.connectWithRetry(Socket, Retry).ok())
        ::_exit(2);
      StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, Retry);
      if (!Reply.ok())
        ::_exit(3);
      for (const StatusOr<harness::CellResult> &Cell : Reply->Cells) {
        if (!Cell.ok())
          ::_exit(4);
        const std::string Line = harness::cellResultDigest(*Cell).hex() + "\n";
        if (::write(Pipe[1], Line.data(), Line.size()) !=
            static_cast<ssize_t>(Line.size()))
          ::_exit(5);
      }
      (void)C.ack(Reply->Job);
      ::_exit(0);
    }
    ::close(Pipe[1]);
    ClientPid = Pid;
    ClientPipe = Pipe[0];
    return {};
  }

  /// Waits for the campaign child, requiring exit 0, and returns the
  /// digests it reported.
  std::vector<std::string> joinCampaignChild() {
    std::string Raw;
    char Buf[256];
    while (true) {
      const ssize_t N = ::read(ClientPipe, Buf, sizeof(Buf));
      if (N > 0) {
        Raw.append(Buf, static_cast<size_t>(N));
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      break;
    }
    ::close(ClientPipe);
    ClientPipe = -1;
    int WStatus = 0;
    EXPECT_EQ(::waitpid(ClientPid, &WStatus, 0), ClientPid);
    EXPECT_TRUE(WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 0)
        << "campaign client exited "
        << (WIFEXITED(WStatus) ? WEXITSTATUS(WStatus) : -1);
    ClientPid = -1;
    std::vector<std::string> Digests;
    size_t Pos = 0;
    while (Pos < Raw.size()) {
      const size_t Eol = Raw.find('\n', Pos);
      if (Eol == std::string::npos)
        break;
      Digests.push_back(Raw.substr(Pos, Eol - Pos));
      Pos = Eol + 1;
    }
    return Digests;
  }

  void expectLocalParity(const SubmitRequest &Req,
                         const std::vector<std::string> &Digests) {
    ASSERT_EQ(Digests.size(), Req.Cells.size());
    for (size_t I = 0; I < Req.Cells.size(); ++I)
      EXPECT_EQ(Digests[I], localDigest(Req.Cells[I]).hex())
          << "cell " << I << " diverged across the daemon crash";
  }

  pid_t DaemonPid = -1;
  pid_t ClientPid = -1;
  int ClientPipe = -1;
  std::string Socket;
  std::string CacheDir;
};

} // namespace

TEST_F(ServeCrashRestartTest, KillDuringSubmitWindowThenRestart) {
  // The most hostile instant: the daemon dies the moment the campaign
  // starts — possibly mid-SUBMIT, possibly before the client connects at
  // all.  The client's reconnect/resubmit loop must absorb every case.
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec("mcf", "all"));
  Req.Cells.push_back(smallSpec("mcf", "every-br"));

  spawnDaemon();
  runCampaignInChild(Req, /*Seed=*/21);
  killDaemon();
  spawnDaemon();
  expectLocalParity(Req, joinCampaignChild());
}

TEST_F(ServeCrashRestartTest, KillMidCellExecutionThenRestart) {
  // Let the campaign make real progress, then SIGKILL mid-cell: the
  // restarted daemon resumes from the last checkpoint and the surviving
  // client (same process, same Client object) finishes the job.
  SubmitRequest Req;
  for (const char *Algo : {"all", "freq", "every-br", "short"})
    Req.Cells.push_back(smallSpec("mcf", Algo));

  spawnDaemon();
  runCampaignInChild(Req, /*Seed=*/22);
  // Give the daemon time to accept and run at least part of the job; the
  // exact cut point may land between cells or mid-cell — both must work.
  ::usleep(60'000);
  killDaemon();
  spawnDaemon();
  expectLocalParity(Req, joinCampaignChild());
}

TEST_F(ServeCrashRestartTest, KillAfterCompletionBeforeFetchThenRestart) {
  // The result-loss window the durable store exists for: the job finished,
  // the daemon died, the client never fetched.  After restart the results
  // must still be fetchable — without re-running a single cell.
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());

  spawnDaemon();
  {
    Client C;
    ASSERT_TRUE(C.connect(Socket).ok());
    StatusOr<uint64_t> Job = C.submit(Req);
    ASSERT_TRUE(Job.ok()) << Job.status().toString();
    while (true) {
      StatusOr<JobStatusReply> S = C.status(*Job);
      ASSERT_TRUE(S.ok()) << S.status().toString();
      if (S->State == JobState::Done)
        break;
      ::usleep(2000);
    }
  }
  killDaemon();
  spawnDaemon();
  // A fresh client with only the request in hand recovers the results.
  Client C;
  ASSERT_TRUE(C.connect(Socket).ok());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, testRetry(23));
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok());
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
  EXPECT_TRUE(C.ack(Reply->Job).ok());
}

TEST_F(ServeCrashRestartTest, KillUnderChoppyTransportThenRestart) {
  // Compose both instruments: the campaign runs through a chopping proxy
  // AND the daemon is SIGKILLed mid-flight.  The client sees torn frames,
  // dead links, and a changed epoch — the digests must not care.
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec("mcf", "all"));
  Req.Cells.push_back(smallSpec("mcf", "short"));

  spawnDaemon();
  ChaosPlan Plan;
  Plan.Seed = 24;
  Plan.ChopRate = 0.5;
  Plan.ChopBytesMax = 3;
  const std::string ProxyPath = freshSocketPath("proxy");
  ChaosProxy Proxy(ProxyPath, Socket, Plan);
  ASSERT_TRUE(Proxy.start().ok());

  int Pipe[2];
  ASSERT_EQ(::pipe(Pipe), 0);
  const pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    ::close(Pipe[0]);
    const RetryPolicy Retry = testRetry(24);
    Client C;
    if (!C.connectWithRetry(ProxyPath, Retry).ok())
      ::_exit(2);
    StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, Retry);
    if (!Reply.ok())
      ::_exit(3);
    for (const StatusOr<harness::CellResult> &Cell : Reply->Cells) {
      if (!Cell.ok())
        ::_exit(4);
      const std::string Line = harness::cellResultDigest(*Cell).hex() + "\n";
      if (::write(Pipe[1], Line.data(), Line.size()) !=
          static_cast<ssize_t>(Line.size()))
        ::_exit(5);
    }
    ::_exit(0);
  }
  ::close(Pipe[1]);
  ClientPid = Pid;
  ClientPipe = Pipe[0];

  ::usleep(40'000);
  killDaemon();
  spawnDaemon();
  expectLocalParity(Req, joinCampaignChild());
  Proxy.stop();
}
