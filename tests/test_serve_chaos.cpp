//===- tests/test_serve_chaos.cpp - Socket chaos and crash-restart matrix -===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// The hostile-transport and hostile-timing counterpart to test_serve.cpp,
// in three suites:
//
//   ChaosScheduleTest      the ChaosProxy decision function itself: pure,
//                          seeded, replayable (no I/O).
//   ServeChaosTest         a live in-process server behind a ChaosProxy:
//                          chopped frames (every partial-read path), delays,
//                          and mid-frame disconnects — runCampaign() must
//                          ride through all of it with digests identical to
//                          local execution.
//   ServeCrashRestartTest  the full crash matrix, following the
//                          test_crash.cpp fork pattern: a real daemon
//                          process SIGKILLed at hostile instants
//                          (mid-submit, mid-cell, post-completion-pre-
//                          fetch), restarted on the same socket and job
//                          store, and the campaign asserted bit-identical
//                          to an uninterrupted local run.
//   HostileScheduleTest    the HostileClient decision mix itself: pure,
//                          seeded, replayable (no I/O).
//   ServeLivenessTest      the hostile-client liveness matrix (DESIGN.md
//                          "Liveness & overload"): a live server under
//                          each HostileClient attack — half-open floods,
//                          slowloris drips, never-read floods, submit
//                          storms — plus the hung-worker watchdog.  Each
//                          test pins that the daemon stays responsive,
//                          that a well-behaved campaign's digests match
//                          local execution, and that every defensive
//                          drop lands in a counter.
//
// Registered per-test under tier1 and as one whole-exe `chaos_matrix`
// entry under the `chaos` ctest label (scripts/check.sh --chaos).
//
//===----------------------------------------------------------------------===//

#include "harness/CellRun.h"
#include "serve/ChaosProxy.h"
#include "serve/HostileClient.h"
#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/WorkerPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serve;

namespace {

harness::CellSpec smallSpec(const std::string &Benchmark = "mcf",
                            const std::string &Algo = "all") {
  harness::CellSpec Spec;
  Spec.Benchmark = Benchmark;
  Spec.Algo = Algo;
  Spec.SimInstrs = 100'000;
  Spec.ProfileInstrs = 400'000;
  return Spec;
}

serialize::Digest localDigest(const harness::CellSpec &Spec) {
  StatusOr<harness::CellResult> R = harness::runCellSpec(Spec, nullptr);
  EXPECT_TRUE(R.ok()) << R.status().toString();
  return harness::cellResultDigest(*R);
}

std::string freshSocketPath(const std::string &Tag) {
  static std::atomic<unsigned> Counter{0};
  return (std::filesystem::temp_directory_path() /
          ("dmp-chaos-" + Tag + "-" + std::to_string(::getpid()) + "-" +
           std::to_string(Counter++) + ".sock"))
      .string();
}

/// A retry policy tuned for tests: fast, bounded, deterministic.
RetryPolicy testRetry(uint64_t Seed) {
  RetryPolicy Retry;
  Retry.ConnectAttempts = 40;
  Retry.BaseDelayMs = 2;
  Retry.MaxDelayMs = 100;
  Retry.MaxResubmits = 16;
  Retry.Seed = Seed;
  return Retry;
}

} // namespace

//===----------------------------------------------------------------------===//
// ChaosScheduleTest — the injection decision is a pure seeded function.
//===----------------------------------------------------------------------===//

TEST(ChaosScheduleTest, DecideIsPureAndReplayable) {
  ChaosPlan Plan;
  Plan.Seed = 1234;
  for (uint64_t Site = 0; Site < 4; ++Site)
    for (uint64_t Op = 0; Op < 256; ++Op)
      EXPECT_EQ(ChaosProxy::decide(Plan, Site, Op, 0.5),
                ChaosProxy::decide(Plan, Site, Op, 0.5))
          << "site " << Site << " op " << Op
          << ": the same (seed, site, op) must replay the same decision";
}

TEST(ChaosScheduleTest, DecideRespectsRateBoundsAndSeed) {
  ChaosPlan Plan;
  Plan.Seed = 7;
  unsigned Hits = 0;
  constexpr unsigned kOps = 4096;
  for (uint64_t Op = 0; Op < kOps; ++Op) {
    EXPECT_FALSE(ChaosProxy::decide(Plan, 0, Op, 0.0));
    EXPECT_TRUE(ChaosProxy::decide(Plan, 0, Op, 1.0));
    if (ChaosProxy::decide(Plan, 0, Op, 0.5))
      ++Hits;
  }
  // A hash this far from fair would be a bug, not bad luck.
  EXPECT_GT(Hits, kOps / 4);
  EXPECT_LT(Hits, 3 * kOps / 4);
  // A different seed explores a different schedule.
  ChaosPlan Other = Plan;
  Other.Seed = 8;
  bool Differs = false;
  for (uint64_t Op = 0; Op < 64 && !Differs; ++Op)
    Differs = ChaosProxy::decide(Plan, 0, Op, 0.5) !=
              ChaosProxy::decide(Other, 0, Op, 0.5);
  EXPECT_TRUE(Differs);
}

//===----------------------------------------------------------------------===//
// ServeChaosTest — live in-process server behind a chaos relay (no forks).
//===----------------------------------------------------------------------===//

namespace {

class ServeChaosTest : public ::testing::Test {
protected:
  void startServer() {
    PoolOpts.Workers = 0;
    PoolOpts.UseCache = false;
    Pool = std::make_unique<WorkerPool>(PoolOpts);
    ServerOptions Opts;
    Opts.SocketPath = Socket = freshSocketPath("upstream");
    Opts.Quiet = true;
    Srv = std::make_unique<Server>(std::move(Opts), *Pool, &Token);
    ASSERT_TRUE(Srv->listen().ok());
    Loop = std::thread([this] { RunResult = Srv->run(); });
  }

  void startProxy(const ChaosPlan &Plan) {
    ProxyPath = freshSocketPath("proxy");
    Proxy = std::make_unique<ChaosProxy>(ProxyPath, Socket, Plan);
    ASSERT_TRUE(Proxy->start().ok());
  }

  void TearDown() override {
    if (Proxy)
      Proxy->stop();
    if (Loop.joinable()) {
      Srv->requestStop();
      Loop.join();
      EXPECT_TRUE(RunResult.ok()) << RunResult.toString();
    }
    std::error_code EC;
    std::filesystem::remove(Socket, EC);
    std::filesystem::remove(ProxyPath, EC);
  }

  WorkerPoolOptions PoolOpts;
  std::unique_ptr<WorkerPool> Pool;
  std::unique_ptr<Server> Srv;
  std::unique_ptr<ChaosProxy> Proxy;
  guard::CancelToken Token;
  std::thread Loop;
  std::string Socket;
  std::string ProxyPath;
  Status RunResult;
};

} // namespace

TEST_F(ServeChaosTest, ChoppedTransportIsDigestIdentical) {
  // Every chunk in both directions is forwarded in 1..3-byte pieces: the
  // peers see partial reads of every frame header and payload.  Short
  // writes must be invisible to the protocol.
  startServer();
  ChaosPlan Plan;
  Plan.Seed = 11;
  Plan.ChopRate = 1.0;
  Plan.ChopBytesMax = 3;
  startProxy(Plan);

  Client C;
  ASSERT_TRUE(C.connect(ProxyPath).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec("mcf", "all"));
  Req.Cells.push_back(smallSpec("mcf", "every-br"));
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, testRetry(11));
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_EQ(Reply->Cells.size(), 2u);
  for (size_t I = 0; I < 2; ++I) {
    ASSERT_TRUE(Reply->Cells[I].ok()) << Reply->Cells[I].status().toString();
    EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[I]).hex(),
              localDigest(Req.Cells[I]).hex())
        << "cell " << I << " diverged under chopped transport";
  }
  EXPECT_GT(Proxy->chunksForwarded(), 0u);
  EXPECT_EQ(Proxy->drops(), 0u);
}

TEST_F(ServeChaosTest, DelayedTransportIsDigestIdentical) {
  startServer();
  ChaosPlan Plan;
  Plan.Seed = 12;
  Plan.ChopRate = 0.5;
  Plan.DelayRate = 0.25;
  Plan.DelayMs = 1;
  startProxy(Plan);

  Client C;
  ASSERT_TRUE(C.connect(ProxyPath).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, testRetry(12));
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok());
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
}

TEST_F(ServeChaosTest, MidFrameDisconnectsAreRiddenThrough) {
  // The first two chunks each trigger a mid-frame cut: half the bytes are
  // delivered, then both sides of the link die.  The client must treat the
  // torn exchange as transport failure, reconnect, and resubmit — and the
  // server-side dedup guarantees the retries never double-run the job.
  startServer();
  ChaosPlan Plan;
  Plan.Seed = 13;
  Plan.DropRate = 1.0;
  Plan.MaxDrops = 2;
  Plan.ChopRate = 0.25;
  startProxy(Plan);

  Client C;
  ASSERT_TRUE(C.connect(ProxyPath).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, testRetry(13));
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok()) << Reply->Cells[0].status().toString();
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
  EXPECT_EQ(Proxy->drops(), 2u) << "both budgeted cuts should have fired";
  // At most one job ran for all those (re)submits.
  EXPECT_LE(Srv->counters().JobsAccepted, 1u + Srv->counters().JobsDeduped);
  EXPECT_EQ(Srv->counters().CellsCompleted, 1u)
      << "reconnect/resubmit must never double-run a cell";
}

//===----------------------------------------------------------------------===//
// ServeCrashRestartTest — SIGKILL the daemon at hostile instants.
//===----------------------------------------------------------------------===//

namespace {

/// Forks a real (Workers=0, durable, quiet) daemon process on a shared
/// socket and job store, kills it with SIGKILL at chosen instants, and
/// restarts it — the process-level analogue of ServeDurableTest, where
/// no destructor ever runs and only the checkpoints survive.
class ServeCrashRestartTest : public ::testing::Test {
protected:
  void SetUp() override {
    CacheDir = (std::filesystem::temp_directory_path() /
                ("dmp-chaos-store-" + std::to_string(::getpid()) + "-" +
                 ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name()))
                   .string();
    std::filesystem::remove_all(CacheDir);
    Socket = freshSocketPath("daemon");
  }

  void TearDown() override {
    killDaemon();
    std::error_code EC;
    std::filesystem::remove(Socket, EC);
    std::filesystem::remove_all(CacheDir, EC);
  }

  void spawnDaemon() {
    DaemonPid = ::fork();
    ASSERT_GE(DaemonPid, 0);
    if (DaemonPid == 0) {
      WorkerPoolOptions PO;
      PO.Workers = 0;
      PO.UseCache = true;
      PO.CacheDir = CacheDir;
      WorkerPool Pool(PO);
      ServerOptions SO;
      SO.SocketPath = Socket;
      SO.Quiet = true;
      Server Daemon(std::move(SO), Pool);
      if (!Daemon.listen().ok())
        ::_exit(1);
      (void)Daemon.run();
      ::_exit(0);
    }
    // Wait for the socket to answer before letting the test proceed.
    for (int I = 0; I < 5000; ++I) {
      Client Probe;
      if (Probe.connect(Socket).ok())
        return;
      ::usleep(1000);
    }
    FAIL() << "daemon never became connectable on " << Socket;
  }

  void killDaemon() {
    if (DaemonPid <= 0)
      return;
    ::kill(DaemonPid, SIGKILL);
    ::waitpid(DaemonPid, nullptr, 0);
    DaemonPid = -1;
  }

  /// Forks a client process that rides the campaign through whatever the
  /// test does to the daemon and reports each cell digest over a pipe.
  /// Returns the digests (empty on client failure).
  std::vector<std::string> runCampaignInChild(const SubmitRequest &Req,
                                              uint64_t Seed) {
    int Pipe[2];
    EXPECT_EQ(::pipe(Pipe), 0);
    const pid_t Pid = ::fork();
    EXPECT_GE(Pid, 0);
    if (Pid == 0) {
      ::close(Pipe[0]);
      const RetryPolicy Retry = testRetry(Seed);
      Client C;
      if (!C.connectWithRetry(Socket, Retry).ok())
        ::_exit(2);
      StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, Retry);
      if (!Reply.ok())
        ::_exit(3);
      for (const StatusOr<harness::CellResult> &Cell : Reply->Cells) {
        if (!Cell.ok())
          ::_exit(4);
        const std::string Line = harness::cellResultDigest(*Cell).hex() + "\n";
        if (::write(Pipe[1], Line.data(), Line.size()) !=
            static_cast<ssize_t>(Line.size()))
          ::_exit(5);
      }
      (void)C.ack(Reply->Job);
      ::_exit(0);
    }
    ::close(Pipe[1]);
    ClientPid = Pid;
    ClientPipe = Pipe[0];
    return {};
  }

  /// Waits for the campaign child, requiring exit 0, and returns the
  /// digests it reported.
  std::vector<std::string> joinCampaignChild() {
    std::string Raw;
    char Buf[256];
    while (true) {
      const ssize_t N = ::read(ClientPipe, Buf, sizeof(Buf));
      if (N > 0) {
        Raw.append(Buf, static_cast<size_t>(N));
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      break;
    }
    ::close(ClientPipe);
    ClientPipe = -1;
    int WStatus = 0;
    EXPECT_EQ(::waitpid(ClientPid, &WStatus, 0), ClientPid);
    EXPECT_TRUE(WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 0)
        << "campaign client exited "
        << (WIFEXITED(WStatus) ? WEXITSTATUS(WStatus) : -1);
    ClientPid = -1;
    std::vector<std::string> Digests;
    size_t Pos = 0;
    while (Pos < Raw.size()) {
      const size_t Eol = Raw.find('\n', Pos);
      if (Eol == std::string::npos)
        break;
      Digests.push_back(Raw.substr(Pos, Eol - Pos));
      Pos = Eol + 1;
    }
    return Digests;
  }

  void expectLocalParity(const SubmitRequest &Req,
                         const std::vector<std::string> &Digests) {
    ASSERT_EQ(Digests.size(), Req.Cells.size());
    for (size_t I = 0; I < Req.Cells.size(); ++I)
      EXPECT_EQ(Digests[I], localDigest(Req.Cells[I]).hex())
          << "cell " << I << " diverged across the daemon crash";
  }

  pid_t DaemonPid = -1;
  pid_t ClientPid = -1;
  int ClientPipe = -1;
  std::string Socket;
  std::string CacheDir;
};

} // namespace

TEST_F(ServeCrashRestartTest, KillDuringSubmitWindowThenRestart) {
  // The most hostile instant: the daemon dies the moment the campaign
  // starts — possibly mid-SUBMIT, possibly before the client connects at
  // all.  The client's reconnect/resubmit loop must absorb every case.
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec("mcf", "all"));
  Req.Cells.push_back(smallSpec("mcf", "every-br"));

  spawnDaemon();
  runCampaignInChild(Req, /*Seed=*/21);
  killDaemon();
  spawnDaemon();
  expectLocalParity(Req, joinCampaignChild());
}

TEST_F(ServeCrashRestartTest, KillMidCellExecutionThenRestart) {
  // Let the campaign make real progress, then SIGKILL mid-cell: the
  // restarted daemon resumes from the last checkpoint and the surviving
  // client (same process, same Client object) finishes the job.
  SubmitRequest Req;
  for (const char *Algo : {"all", "freq", "every-br", "short"})
    Req.Cells.push_back(smallSpec("mcf", Algo));

  spawnDaemon();
  runCampaignInChild(Req, /*Seed=*/22);
  // Give the daemon time to accept and run at least part of the job; the
  // exact cut point may land between cells or mid-cell — both must work.
  ::usleep(60'000);
  killDaemon();
  spawnDaemon();
  expectLocalParity(Req, joinCampaignChild());
}

TEST_F(ServeCrashRestartTest, KillAfterCompletionBeforeFetchThenRestart) {
  // The result-loss window the durable store exists for: the job finished,
  // the daemon died, the client never fetched.  After restart the results
  // must still be fetchable — without re-running a single cell.
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());

  spawnDaemon();
  {
    Client C;
    ASSERT_TRUE(C.connect(Socket).ok());
    StatusOr<uint64_t> Job = C.submit(Req);
    ASSERT_TRUE(Job.ok()) << Job.status().toString();
    while (true) {
      StatusOr<JobStatusReply> S = C.status(*Job);
      ASSERT_TRUE(S.ok()) << S.status().toString();
      if (S->State == JobState::Done)
        break;
      ::usleep(2000);
    }
  }
  killDaemon();
  spawnDaemon();
  // A fresh client with only the request in hand recovers the results.
  Client C;
  ASSERT_TRUE(C.connect(Socket).ok());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, testRetry(23));
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok());
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex());
  EXPECT_TRUE(C.ack(Reply->Job).ok());
}

TEST_F(ServeCrashRestartTest, KillUnderChoppyTransportThenRestart) {
  // Compose both instruments: the campaign runs through a chopping proxy
  // AND the daemon is SIGKILLed mid-flight.  The client sees torn frames,
  // dead links, and a changed epoch — the digests must not care.
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec("mcf", "all"));
  Req.Cells.push_back(smallSpec("mcf", "short"));

  spawnDaemon();
  ChaosPlan Plan;
  Plan.Seed = 24;
  Plan.ChopRate = 0.5;
  Plan.ChopBytesMax = 3;
  const std::string ProxyPath = freshSocketPath("proxy");
  ChaosProxy Proxy(ProxyPath, Socket, Plan);
  ASSERT_TRUE(Proxy.start().ok());

  int Pipe[2];
  ASSERT_EQ(::pipe(Pipe), 0);
  const pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    ::close(Pipe[0]);
    const RetryPolicy Retry = testRetry(24);
    Client C;
    if (!C.connectWithRetry(ProxyPath, Retry).ok())
      ::_exit(2);
    StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, Retry);
    if (!Reply.ok())
      ::_exit(3);
    for (const StatusOr<harness::CellResult> &Cell : Reply->Cells) {
      if (!Cell.ok())
        ::_exit(4);
      const std::string Line = harness::cellResultDigest(*Cell).hex() + "\n";
      if (::write(Pipe[1], Line.data(), Line.size()) !=
          static_cast<ssize_t>(Line.size()))
        ::_exit(5);
    }
    ::_exit(0);
  }
  ::close(Pipe[1]);
  ClientPid = Pid;
  ClientPipe = Pipe[0];

  ::usleep(40'000);
  killDaemon();
  spawnDaemon();
  expectLocalParity(Req, joinCampaignChild());
  Proxy.stop();
}

//===----------------------------------------------------------------------===//
// HostileScheduleTest — the attack schedule is a pure seeded function.
//===----------------------------------------------------------------------===//

TEST(HostileScheduleTest, MixIsPureAndSeedSensitive) {
  HostilePlan Plan;
  Plan.Seed = 99;
  for (uint64_t Site = 0; Site < 4; ++Site)
    for (uint64_t Op = 0; Op < 64; ++Op)
      EXPECT_EQ(HostileClient::mix(Plan, Site, Op),
                HostileClient::mix(Plan, Site, Op))
          << "site " << Site << " op " << Op
          << ": the same (seed, site, op) must replay the same schedule";
  HostilePlan Other = Plan;
  Other.Seed = 100;
  bool Differs = false;
  for (uint64_t Op = 0; Op < 64 && !Differs; ++Op)
    Differs = HostileClient::mix(Plan, 0, Op) !=
              HostileClient::mix(Other, 0, Op);
  EXPECT_TRUE(Differs) << "a different seed must explore a different schedule";
}

//===----------------------------------------------------------------------===//
// ServeLivenessTest — the daemon under attack stays alive and correct.
//===----------------------------------------------------------------------===//

namespace {

class ServeLivenessTest : public ::testing::Test {
protected:
  /// Forks \p Workers worker processes FIRST (while the test is still
  /// single-threaded), then runs the server loop on a background thread —
  /// the only fork-safe order.  Workers=0 is the in-process mode the pure
  /// connection-hygiene attacks use.
  void start(unsigned Workers, ServerOptions Extra = {}) {
    PoolOpts.Workers = Workers;
    PoolOpts.UseCache = false;
    Pool = std::make_unique<WorkerPool>(PoolOpts);
    Extra.SocketPath = Socket = freshSocketPath("liveness");
    Extra.Quiet = true;
    Srv = std::make_unique<Server>(std::move(Extra), *Pool, &Token);
    ASSERT_TRUE(Srv->listen().ok());
    Loop = std::thread([this] { RunResult = Srv->run(); });
  }

  void TearDown() override {
    ::unsetenv("DMP_SERVE_HANG_ON_TICKET");
    if (Hostile)
      Hostile->stop();
    if (Loop.joinable()) {
      Srv->requestStop();
      Loop.join();
      EXPECT_TRUE(RunResult.ok()) << RunResult.toString();
    }
    Srv.reset();
    Pool.reset();
    std::error_code EC;
    std::filesystem::remove(Socket, EC);
  }

  void attack(HostilePlan Plan) {
    Hostile = std::make_unique<HostileClient>(Socket, Plan);
    ASSERT_TRUE(Hostile->start().ok());
  }

  /// Spin-waits (bounded) until \p Done returns true; false on timeout.
  template <typename Pred> bool waitFor(Pred Done, unsigned BudgetMs = 5000) {
    for (unsigned I = 0; I < BudgetMs; ++I) {
      if (Done())
        return true;
      ::usleep(1000);
    }
    return Done();
  }

  /// The liveness probe: under every attack a well-behaved client must
  /// still complete a PING round trip in bounded time.  Reconnects are
  /// tolerated (the accept cap may shed us — that is the defense working,
  /// not a liveness failure).
  void expectResponsive() {
    const RetryPolicy Retry = testRetry(77);
    const auto T0 = std::chrono::steady_clock::now();
    for (int Attempt = 0; Attempt < 50; ++Attempt) {
      Client C;
      if (C.connectWithRetry(Socket, Retry).ok() && C.ping().ok()) {
        const auto RttMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - T0)
                .count();
        EXPECT_LT(RttMs, 5000) << "PING under attack took " << RttMs << "ms";
        return;
      }
      ::usleep(10'000);
    }
    FAIL() << "daemon unresponsive under attack: no PING completed";
  }

  WorkerPoolOptions PoolOpts;
  std::unique_ptr<WorkerPool> Pool;
  std::unique_ptr<Server> Srv;
  std::unique_ptr<HostileClient> Hostile;
  guard::CancelToken Token;
  std::thread Loop;
  std::string Socket;
  Status RunResult;
};

} // namespace

TEST_F(ServeLivenessTest, HungWorkerIsKilledAndJobCompletesIdentically) {
  // Ticket 0 — the first dispatch — wedges its worker forever (no beats,
  // no exit: the failure EOF supervision cannot see).  The watchdog must
  // SIGKILL it and the digest-identical retry path must finish the job on
  // the respawned worker, because the retried cell draws a fresh ticket.
  ASSERT_EQ(::setenv("DMP_SERVE_HANG_ON_TICKET", "0", 1), 0);
  ServerOptions Opts;
  Opts.CellWallMs = 500;
  start(/*Workers=*/2, Opts);

  Client C;
  ASSERT_TRUE(C.connect(Socket).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, testRetry(31));
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok()) << Reply->Cells[0].status().toString();
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex())
      << "digest diverged across the hung-worker kill and retry";

  const Server::Counters Ctr = Srv->counters();
  EXPECT_GE(Ctr.WorkersHung, 1u) << "the watchdog never fired";
  EXPECT_GE(Ctr.WorkerCrashes, 1u);
  EXPECT_GE(Ctr.CellsRetried, 1u);
  EXPECT_GE(Ctr.Heartbeats, 1u)
      << "the healthy retry worker should have beaten at least once";
}

TEST_F(ServeLivenessTest, HalfOpenFloodIsShedAndDaemonStaysResponsive) {
  // More half-open squatters than the accept cap: the daemon must shed
  // idle connections (or refuse) to keep accept room, and a well-behaved
  // campaign must still run to the local digest.
  ServerOptions Opts;
  Opts.MaxConns = 4;
  start(/*Workers=*/0, Opts);
  HostilePlan Plan;
  Plan.Seed = 41;
  Plan.Kind = HostileAttack::HalfOpen;
  Plan.Connections = 8;
  Plan.PaceUs = 1000;
  attack(Plan);

  EXPECT_TRUE(waitFor([&] {
    const Server::Counters C = Srv->counters();
    return C.ConnsShed + C.ConnsRefused >= 4;
  })) << "the accept cap never shed or refused the squatters";
  expectResponsive();

  Client C;
  const RetryPolicy Retry = testRetry(41);
  ASSERT_TRUE(C.connectWithRetry(Socket, Retry).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, Retry);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok());
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex())
      << "digest diverged under the half-open flood";
  EXPECT_GT(Hostile->connects(), 0u);
}

TEST_F(ServeLivenessTest, DripFedFrameTripsReadDeadline) {
  // Slowloris: one byte of a valid frame every 20ms against a 150ms
  // partial-frame read deadline.  The daemon must drop the dripper —
  // counted as a read timeout — and stay fully available.
  ServerOptions Opts;
  Opts.ReadDeadlineMs = 150;
  start(/*Workers=*/0, Opts);
  HostilePlan Plan;
  Plan.Seed = 42;
  Plan.Kind = HostileAttack::DripHeader;
  Plan.Connections = 4;
  Plan.OpsPerConn = 1000; // recycle on server drop, not voluntarily
  Plan.PaceUs = 20'000;
  attack(Plan);

  EXPECT_TRUE(waitFor([&] { return Srv->counters().ReadTimeouts >= 2; }))
      << "the read deadline never dropped a dripper";
  expectResponsive();

  Client C;
  const RetryPolicy Retry = testRetry(42);
  ASSERT_TRUE(C.connectWithRetry(Socket, Retry).ok());
  SubmitRequest Req;
  Req.Cells.push_back(smallSpec());
  StatusOr<FetchReplyData> Reply = C.runCampaign(Req, 5, Retry);
  ASSERT_TRUE(Reply.ok()) << Reply.status().toString();
  ASSERT_TRUE(Reply->Cells[0].ok());
  EXPECT_EQ(harness::cellResultDigest(*Reply->Cells[0]).hex(),
            localDigest(Req.Cells[0]).hex())
      << "digest diverged under the slowloris drip";
}

TEST_F(ServeLivenessTest, NeverReadFloodTripsWriteBudget) {
  // PING floods from peers that never read a PONG: once the kernel buffer
  // is full the server's per-connection outbound queue grows, and the
  // write budget must disconnect the hoarder instead of buffering without
  // bound.
  ServerOptions Opts;
  Opts.MaxConnOutBytes = 2048;
  start(/*Workers=*/0, Opts);
  HostilePlan Plan;
  Plan.Seed = 43;
  Plan.Kind = HostileAttack::NeverRead;
  Plan.Connections = 8;
  Plan.OpsPerConn = 1'000'000; // flood until dropped
  Plan.PaceUs = 500;
  attack(Plan);

  EXPECT_TRUE(waitFor(
      [&] { return Srv->counters().SlowConsumerDrops >= 1; }, 10'000))
      << "the outbound budget never dropped a never-reading flooder";
  expectResponsive();
  EXPECT_GT(Hostile->ops(), 0u);
}

TEST_F(ServeLivenessTest, SubmitStormIsShedWithEveryShedAccounted) {
  // Dedup-proof submit storms against a tiny admission bound: the daemon
  // must shed with ResourceExhausted instead of queueing unboundedly, stay
  // responsive, and expose exactly its shed counts in the PONG load
  // snapshot — every shed accounted.
  ServerOptions Opts;
  Opts.MaxActiveJobs = 2;
  start(/*Workers=*/0, Opts);
  HostilePlan Plan;
  Plan.Seed = 44;
  Plan.Kind = HostileAttack::SubmitStorm;
  Plan.Connections = 8;
  Plan.OpsPerConn = 64;
  Plan.PaceUs = 500;
  attack(Plan);

  EXPECT_TRUE(waitFor(
      [&] { return Srv->counters().JobsRejected >= 1; }, 10'000))
      << "the submit storm was never shed";
  expectResponsive();
  Hostile->stop();

  // The public load snapshot must agree with the loop's own accounting.
  Client C;
  const RetryPolicy Retry = testRetry(44);
  ASSERT_TRUE(C.connectWithRetry(Socket, Retry).ok());
  StatusOr<PongLoad> Load = C.serverLoad();
  ASSERT_TRUE(Load.ok()) << Load.status().toString();
  const Server::Counters Ctr = Srv->counters();
  EXPECT_EQ(Load->JobsShed, Ctr.JobsRejected);
  EXPECT_EQ(Load->ConnsShed, Ctr.ReadTimeouts + Ctr.IdleDrops +
                                 Ctr.SlowConsumerDrops + Ctr.ConnsShed +
                                 Ctr.ConnsRefused);
}

TEST_F(ServeLivenessTest, BrownoutShedCarriesRetryAfterHint) {
  // A transient saturation shed (pending-cell budget) must carry a
  // retry-after hint; a permanent rejection (per-job cell limit) must
  // not.  The client surfaces the distinction via lastRetryAfterMs().
  ServerOptions Opts;
  Opts.MaxQueuedCells = 4;
  Opts.MaxCellsPerJob = 6;
  Opts.RetryAfterMs = 10;
  start(/*Workers=*/0, Opts);

  Client C;
  ASSERT_TRUE(C.connect(Socket).ok());

  // One submit of 5 cells: within the per-job limit (6) but over the
  // pending-cell budget (4) — a transient saturation shed, hinted, no
  // timing dependence on how fast earlier cells drain.
  SubmitRequest Saturating;
  for (const char *Algo : {"all", "freq", "short", "ret", "every-br"})
    Saturating.Cells.push_back(smallSpec("mcf", Algo));
  StatusOr<uint64_t> A = C.submit(Saturating);
  ASSERT_FALSE(A.ok()) << "5 pending cells must exceed MaxQueuedCells=4";
  EXPECT_EQ(A.status().code(), ErrorCode::ResourceExhausted);
  EXPECT_GT(C.lastRetryAfterMs(), 0u) << "saturation shed carried no hint";

  // 7 cells > MaxCellsPerJob=6: a permanent rejection — retrying the
  // same request can never succeed, so no hint.
  SubmitRequest TooWide;
  for (const char *Algo :
       {"all", "freq", "short", "ret", "every-br", "exact", "immediate"})
    TooWide.Cells.push_back(smallSpec("mcf", Algo));
  StatusOr<uint64_t> R = C.submit(TooWide);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.status().code(), ErrorCode::ResourceExhausted);
  EXPECT_EQ(C.lastRetryAfterMs(), 0u)
      << "a permanent rejection must not invite a retry";
}

TEST_F(ServeLivenessTest, HintedBackoffIsDeterministicAndHintScaled) {
  // Pure-function checks on the client's hint-aware backoff: replayable
  // from the seed, bounded by [cap/2, cap], and the hint both replaces
  // the base delay and raises the ceiling when it exceeds MaxDelayMs.
  RetryPolicy Retry;
  Retry.BaseDelayMs = 10;
  Retry.MaxDelayMs = 100;
  Retry.Seed = 7;
  for (unsigned Attempt = 0; Attempt < 8; ++Attempt) {
    const unsigned A = Client::backoffDelayMs(Retry, Attempt);
    EXPECT_EQ(A, Client::backoffDelayMs(Retry, Attempt)) << "not replayable";
    EXPECT_LE(A, Retry.MaxDelayMs);
  }
  // A hint above the policy ceiling governs: the delay lands in
  // [hint/2, hint] at attempt 0 already.
  const unsigned Hinted = Client::backoffDelayMs(Retry, 0, /*Hint=*/500);
  EXPECT_GE(Hinted, 250u);
  EXPECT_LE(Hinted, 500u);
  // Without a hint the schedule is unchanged by the hint parameter's
  // default — the pre-brownout behavior, byte for byte.
  EXPECT_EQ(Client::backoffDelayMs(Retry, 3),
            Client::backoffDelayMs(Retry, 3, 0));
}
