//===- tests/test_check.cpp - Differential-oracle fuzzing harness tests -------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Tests for the check/ subsystem itself: generator validity and
// determinism, oracle agreement on clean runs, oracle *sensitivity* via
// the injected-fault canary, and reducer behavior.
//
//===----------------------------------------------------------------------===//

#include "cfg/Analysis.h"
#include "check/Oracle.h"
#include "check/ProgramGen.h"
#include "check/Reduce.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace dmp;
using namespace dmp::check;

namespace {

OracleReport runSeedOracle(uint64_t Seed, const OracleOptions &Opts) {
  const GenProgram G = materialize(randomRecipe(Seed));
  EXPECT_TRUE(G.VerifyErrors.empty())
      << "seed " << Seed << ": " << G.VerifyErrors.front();
  const cfg::ProgramAnalysis PA(*G.Prog);
  return runOracle(*G.Prog, PA, G.Image, Opts);
}

OracleOptions smallBudget(unsigned Fault = 0) {
  OracleOptions Opts;
  Opts.MaxInstrs = 60'000;
  Opts.InjectFault = Fault;
  return Opts;
}

} // namespace

TEST(ProgramGenTest, RecipeIsPureFunctionOfSeed) {
  for (uint64_t Seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    const GenRecipe A = randomRecipe(Seed);
    const GenRecipe B = randomRecipe(Seed);
    EXPECT_EQ(A.Seed, B.Seed);
    EXPECT_EQ(A.OuterIters, B.OuterIters);
    ASSERT_EQ(A.Ops.size(), B.Ops.size());
    for (size_t I = 0; I < A.Ops.size(); ++I)
      EXPECT_TRUE(A.Ops[I] == B.Ops[I]);
  }
}

TEST(ProgramGenTest, DistinctSeedsGiveDistinctRecipes) {
  // Consecutive seeds must not expand to the same program (the seed is
  // scrambled before use precisely so seed 0 and 1 decorrelate).
  const GenRecipe A = randomRecipe(0);
  const GenRecipe B = randomRecipe(1);
  const bool SameOps =
      A.Ops.size() == B.Ops.size() &&
      std::equal(A.Ops.begin(), A.Ops.end(), B.Ops.begin());
  EXPECT_FALSE(SameOps && A.OuterIters == B.OuterIters);
}

TEST(ProgramGenTest, MaterializeIsDeterministic) {
  const GenRecipe Recipe = randomRecipe(7);
  const GenProgram A = materialize(Recipe);
  const GenProgram B = materialize(Recipe);
  EXPECT_EQ(ir::printProgram(*A.Prog), ir::printProgram(*B.Prog));
  EXPECT_EQ(A.Image, B.Image);
}

TEST(ProgramGenTest, ProgramsAreStructurallyValidAcrossSeeds) {
  for (uint64_t Seed = 0; Seed < 100; ++Seed) {
    const GenProgram G = materialize(randomRecipe(Seed));
    EXPECT_TRUE(G.VerifyErrors.empty())
        << "seed " << Seed << " invalid: " << G.VerifyErrors.front();
  }
}

TEST(ProgramGenTest, EveryOpKindMaterializesValidly) {
  // One recipe exercising the whole construct vocabulary at max params.
  GenRecipe Recipe;
  Recipe.Seed = 123;
  Recipe.OuterIters = 4;
  for (uint8_t K = 0; K <= static_cast<uint8_t>(GenOpKind::Straight); ++K)
    Recipe.Ops.push_back({static_cast<GenOpKind>(K), 7, 7, 255});
  const GenProgram G = materialize(Recipe);
  EXPECT_TRUE(G.VerifyErrors.empty());
}

TEST(ProgramGenTest, GeneratedProgramsTerminate) {
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    const GenProgram G = materialize(randomRecipe(Seed));
    const sim::FinalState Ref = runReference(*G.Prog, G.Image, 2'000'000);
    EXPECT_TRUE(Ref.Halted) << "seed " << Seed << " did not halt";
  }
}

TEST(AdversarialAnnotationTest, CoversEveryConditionalBranch) {
  const GenProgram G = materialize(randomRecipe(3));
  const cfg::ProgramAnalysis PA(*G.Prog);
  const core::DivergeMap Map = adversarialAnnotations(PA);
  size_t CondBranches = 0;
  for (const auto &F : G.Prog->functions())
    for (const auto &B : F->blocks())
      for (const auto &I : B->instructions())
        if (I.Op == ir::Opcode::CondBr) {
          ++CondBranches;
          EXPECT_TRUE(Map.contains(I.Addr))
              << "cond branch at " << I.Addr << " not annotated";
        }
  EXPECT_EQ(Map.size(), CondBranches);
  for (const auto &[Addr, Annotation] : Map.all())
    EXPECT_TRUE(Annotation.AlwaysPredicate) << "branch at " << Addr;
}

TEST(OracleTest, CleanSeedsAgreeOnAllLegs) {
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    const OracleReport Report = runSeedOracle(Seed, smallBudget());
    EXPECT_TRUE(Report.ok()) << "seed " << Seed << ":\n" << Report.summary();
    EXPECT_EQ(Report.Legs.size(), 3u);
  }
}

TEST(OracleTest, TruncatedRunsStillAgree) {
  // A budget far below natural program length forces runs to stop
  // mid-episode, exercising DpredActiveAtEnd in the accounting identity.
  OracleOptions Opts;
  Opts.MaxInstrs = 777;
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    const OracleReport Report = runSeedOracle(Seed, Opts);
    EXPECT_TRUE(Report.ok()) << "seed " << Seed << ":\n" << Report.summary();
  }
}

TEST(OracleTest, CanaryDetectsDroppedRetiredStore) {
  const OracleReport Report = runSeedOracle(0, smallBudget(/*Fault=*/1));
  EXPECT_FALSE(Report.ok());
  EXPECT_NE(Report.summary().find("store"), std::string::npos)
      << Report.summary();
}

TEST(OracleTest, CanaryDetectsRegisterCorruption) {
  const OracleReport Report = runSeedOracle(0, smallBudget(/*Fault=*/2));
  EXPECT_FALSE(Report.ok());
  EXPECT_NE(Report.summary().find("r1"), std::string::npos)
      << Report.summary();
}

TEST(OracleTest, FaultOnlyPoisonsSelectedLeg) {
  // The canary targets the dmp-selected leg; baseline and adversarial must
  // stay clean, proving a flagged leg is localized rather than a global
  // comparison artifact.
  const OracleReport Report = runSeedOracle(0, smallBudget(/*Fault=*/2));
  ASSERT_EQ(Report.Legs.size(), 3u);
  for (const LegResult &Leg : Report.Legs) {
    if (Leg.Name == "dmp-selected")
      EXPECT_FALSE(Leg.Errors.empty());
    else
      EXPECT_TRUE(Leg.Errors.empty()) << Leg.Name << " unexpectedly failed";
  }
}

TEST(ReduceTest, ShrinksCanaryFailureToMinimum) {
  const OracleOptions Opts = smallBudget(/*Fault=*/2);
  unsigned Evaluations = 0;
  const auto StillFails = [&](const GenRecipe &Candidate) {
    ++Evaluations;
    const GenProgram G = materialize(Candidate);
    // Every reducer candidate must itself be a valid program — the whole
    // point of reducing recipes instead of programs.
    EXPECT_TRUE(G.VerifyErrors.empty());
    const cfg::ProgramAnalysis PA(*G.Prog);
    return !runOracle(*G.Prog, PA, G.Image, Opts).ok();
  };
  const GenRecipe Minimized = reduceRecipe(randomRecipe(0), StillFails);
  // The register-corruption canary fires on any program, so the reducer
  // should reach the empty-body, single-iteration floor.
  EXPECT_TRUE(Minimized.Ops.empty()) << describeRecipe(Minimized);
  EXPECT_EQ(Minimized.OuterIters, 1u);
  EXPECT_GT(Evaluations, 0u);
  EXPECT_TRUE(StillFails(Minimized));
}

TEST(ReduceTest, ReproSnippetRoundTrips) {
  GenRecipe Recipe;
  Recipe.Seed = 0x2A;
  Recipe.OuterIters = 3;
  Recipe.Ops = {{GenOpKind::SimpleHammock, 2, 1, 9},
                {GenOpKind::ShortLoop, 1, 3, 0}};
  const std::string Snippet = emitReproSnippet(Recipe, "RoundTrip");
  EXPECT_NE(Snippet.find("buildReproRoundTrip"), std::string::npos);
  EXPECT_NE(Snippet.find("R.Seed = 0x2aULL;"), std::string::npos);
  EXPECT_NE(Snippet.find("GenOpKind::SimpleHammock, 2, 1, 9"),
            std::string::npos);
  const std::string Dot = emitReproDot(Recipe);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
}
