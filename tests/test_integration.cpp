//===- tests/test_integration.cpp - End-to-end and property tests -------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// Harness-level integration tests and parameterized property sweeps over
// the synthetic suite: the repository's own "does the paper's claim hold"
// checks.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/Reports.h"
#include "profile/Emulator.h"
#include "support/RNG.h"

#include <cmath>

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::harness;

namespace {

ExperimentOptions fastOptions() {
  ExperimentOptions Options;
  Options.Profile.MaxInstrs = 600'000;
  Options.Sim.MaxInstrs = 300'000;
  return Options;
}

const workloads::BenchmarkSpec &specFor(const std::string &Name) {
  for (const auto &Spec : workloads::specSuite())
    if (Name == Spec.Name)
      return Spec;
  ADD_FAILURE() << "unknown benchmark " << Name;
  static workloads::BenchmarkSpec Dummy;
  return Dummy;
}

} // namespace

TEST(HarnessTest, BaselineIsCached) {
  BenchContext Bench(specFor("li"), fastOptions());
  const sim::SimStats &A = Bench.baseline();
  const sim::SimStats &B = Bench.baseline();
  EXPECT_EQ(&A, &B);
}

TEST(HarnessTest, IpcImprovementArithmetic) {
  sim::SimStats Base, Dmp;
  Base.RetiredInstrs = 1000;
  Base.Cycles = 1000; // IPC 1.0
  Dmp.RetiredInstrs = 1000;
  Dmp.Cycles = 800; // IPC 1.25
  EXPECT_NEAR(ipcImprovement(Base, Dmp), 0.25, 1e-12);
}

TEST(HarnessTest, ReportGeomeanAndRendering) {
  ImprovementReport Report({"a", "b"});
  Report.addBenchmark("x", std::vector<double>{0.10, 0.20});
  Report.addBenchmark("y", std::vector<double>{0.10, -0.10});
  EXPECT_NEAR(Report.geomeanImprovement(0), 0.10, 1e-9);
  EXPECT_NEAR(Report.geomeanImprovement(1), std::sqrt(1.2 * 0.9) - 1.0,
              1e-9);
  const std::string Text = Report.render("title");
  EXPECT_NE(Text.find("geomean"), std::string::npos);
  EXPECT_NE(Text.find("+10.0%"), std::string::npos);
}

TEST(IntegrationTest, HeadlineClaimHolds) {
  // The paper's core claim, scaled down: on branch-misprediction-heavy
  // benchmarks, All-best-heur DMP clearly beats the baseline while the
  // naive exact-only selection gains less.
  BenchContext Bench(specFor("vpr"), fastOptions());
  const sim::SimStats &Base = Bench.baseline();
  const sim::SimStats Exact =
      Bench.runSelection(core::SelectionFeatures::exactOnly());
  const sim::SimStats All =
      Bench.runSelection(core::SelectionFeatures::allBestHeur());
  EXPECT_GT(ipcImprovement(Base, All), 0.10);
  EXPECT_GT(ipcImprovement(Base, All), ipcImprovement(Base, Exact));
}

TEST(IntegrationTest, CostModelMatchesHeuristics) {
  // Section 7.1: the threshold-free cost model performs about as well as
  // the tuned heuristics.
  BenchContext Bench(specFor("twolf"), fastOptions());
  const sim::SimStats &Base = Bench.baseline();
  const double Heur = ipcImprovement(
      Base, Bench.runSelection(core::SelectionFeatures::allBestHeur()));
  const double Cost = ipcImprovement(
      Base, Bench.runSelection(core::SelectionFeatures::allBestCost()));
  EXPECT_NEAR(Heur, Cost, 0.10);
}

TEST(IntegrationTest, InputSetInsensitivity) {
  // Section 7.3: profiling with the train input costs little.
  BenchContext Bench(specFor("bzip2"), fastOptions());
  const sim::SimStats &Base = Bench.baseline();
  const double Same = ipcImprovement(
      Base, Bench.runSelection(core::SelectionFeatures::allBestHeur(),
                               workloads::InputSetKind::Run));
  const double Diff = ipcImprovement(
      Base, Bench.runSelection(core::SelectionFeatures::allBestHeur(),
                               workloads::InputSetKind::Train));
  EXPECT_GT(Diff, Same - 0.08);
}

//===----------------------------------------------------------------------===//
// Parameterized property sweeps over the suite
//===----------------------------------------------------------------------===//

class SuiteProperty : public ::testing::TestWithParam<const char *> {};

TEST_P(SuiteProperty, DmpNeverCollapsesAndReducesFlushes) {
  BenchContext Bench(specFor(GetParam()), fastOptions());
  const sim::SimStats &Base = Bench.baseline();
  const sim::SimStats Dmp =
      Bench.runSelection(core::SelectionFeatures::allBestHeur());
  // DMP must reduce pipeline flushes and must not catastrophically lose
  // performance on any benchmark (the paper's Figure 5/6 shapes).
  EXPECT_LE(Dmp.Flushes, Base.Flushes) << GetParam();
  EXPECT_GT(Dmp.ipc(), Base.ipc() * 0.95) << GetParam();
  EXPECT_EQ(Dmp.RetiredInstrs, Base.RetiredInstrs) << GetParam();
}

TEST_P(SuiteProperty, SelectionIsSubsetOfExecutedBranches) {
  BenchContext Bench(specFor(GetParam()), fastOptions());
  const core::DivergeMap Map = Bench.select(
      core::SelectionFeatures::allBestHeur(), workloads::InputSetKind::Run);
  const auto &Prof = Bench.profileData(workloads::InputSetKind::Run);
  for (uint32_t Addr : Map.sortedAddrs()) {
    EXPECT_TRUE(Bench.workload().Prog->instrAt(Addr).isCondBr());
    EXPECT_TRUE(Prof.Edges.wasExecuted(Addr));
    // Every annotation must be internally consistent.
    const core::DivergeAnnotation &Ann = *Map.find(Addr);
    if (Ann.Kind == core::DivergeKind::Loop) {
      EXPECT_FALSE(Ann.Cfms.empty());
      EXPECT_GT(Ann.LoopSelectUops, 0u);
    }
    for (const core::CfmPoint &Cfm : Ann.Cfms) {
      if (Cfm.PointKind == core::CfmPoint::Kind::Address) {
        EXPECT_LT(Cfm.Addr, Bench.workload().Prog->instrCount());
      }
    }
  }
}

TEST_P(SuiteProperty, CostModeSelectsFewerOrEqualCandidates) {
  BenchContext Bench(specFor(GetParam()), fastOptions());
  core::SelectionStats HeurStats, CostStats;
  const core::DivergeMap Heur =
      Bench.select(core::SelectionFeatures::exactFreq(),
                   workloads::InputSetKind::Run, &HeurStats);
  const core::DivergeMap Cost =
      Bench.select(core::SelectionFeatures::costEdge(),
                   workloads::InputSetKind::Run, &CostStats);
  EXPECT_EQ(HeurStats.CandidatesConsidered, CostStats.CandidatesConsidered);
  // Both are valid subsets; the cost model must actually reject something
  // across the suite (checked via the stats, not per benchmark).
  EXPECT_GE(Heur.size() + Cost.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteProperty,
                         ::testing::Values("gzip", "vpr", "gcc", "mcf",
                                           "crafty", "parser", "eon",
                                           "perlbmk", "gap", "vortex",
                                           "bzip2", "twolf", "compress",
                                           "go", "ijpeg", "li", "m88ksim"));

//===----------------------------------------------------------------------===//
// Parameterized dominance properties over random programs
//===----------------------------------------------------------------------===//

class RandomProgramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramProperty, DominanceInvariants) {
  // Build a randomized benchmark-like program and check structural
  // dominance invariants on every function.
  workloads::BenchmarkSpec Spec;
  Spec.Name = "prop";
  Spec.OuterIters = 8;
  RNG Rng(GetParam());
  Spec.SimpleHard = 1 + Rng.nextBelow(2);
  Spec.Nested = Rng.nextBelow(3);
  Spec.Freq = Rng.nextBelow(3);
  Spec.DataLoops = Rng.nextBelow(2);
  Spec.RetFuncs = Rng.nextBelow(2);
  Spec.DualMerge = Rng.nextBelow(2);
  Spec.Seed = GetParam();
  const workloads::Workload W = workloads::buildBenchmark(Spec);

  for (const auto &F : W.Prog->functions()) {
    cfg::CFGView View(*F);
    cfg::DominatorTree DT(View);
    cfg::PostDominatorTree PDT(View);
    for (const auto &Block : F->blocks()) {
      if (!View.isReachable(Block.get()))
        continue;
      // Entry dominates everything; every block dominates itself.
      EXPECT_TRUE(DT.dominates(F->getEntry(), Block.get()));
      EXPECT_TRUE(DT.dominates(Block.get(), Block.get()));
      // The idom strictly dominates and differs from the block.
      if (const ir::BasicBlock *Idom = DT.idom(Block.get())) {
        EXPECT_NE(Idom, Block.get());
        EXPECT_TRUE(DT.dominates(Idom, Block.get()));
      }
      // IPOSDOM (when present) post-dominates every successor.
      if (const ir::BasicBlock *Ipd = PDT.ipostdom(Block.get())) {
        for (const ir::BasicBlock *Succ :
             View.successors(Block->getId()))
          EXPECT_TRUE(PDT.postDominates(Ipd, Succ));
      }
    }
  }
}

TEST_P(RandomProgramProperty, EmulatorTerminatesAndSimAgrees) {
  workloads::BenchmarkSpec Spec;
  Spec.Name = "prop";
  Spec.OuterIters = 32;
  RNG Rng(GetParam() * 31 + 7);
  Spec.SimpleHard = Rng.nextBelow(2);
  Spec.SimpleEasy = 1;
  Spec.Freq = Rng.nextBelow(2);
  Spec.DataLoops = Rng.nextBelow(2);
  Spec.Short = Rng.nextBelow(2);
  Spec.Seed = GetParam() + 1000;
  const workloads::Workload W = workloads::buildBenchmark(Spec);
  const auto Image = W.buildImage(workloads::InputSetKind::Run);

  profile::Emulator Emu(*W.Prog, Image);
  profile::DynInstr D;
  uint64_t Steps = 0;
  while (Emu.step(D)) {
    ASSERT_LT(++Steps, 10'000'000u) << "runaway program";
  }
  EXPECT_TRUE(Emu.isHalted());

  const sim::SimStats Stats = sim::simulateBaseline(*W.Prog, Image);
  EXPECT_EQ(Stats.RetiredInstrs, Steps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range<uint64_t>(1, 13));
