//===- tests/test_serialize.cpp - Serialization and cache unit tests ----------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "serialize/ArtifactCache.h"
#include "serialize/ByteStream.h"
#include "serialize/Hash.h"
#include "serialize/ProfileIO.h"
#include "workloads/SpecSuite.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace dmp;
using namespace dmp::serialize;

namespace {

/// A throwaway cache directory, removed on destruction.
struct TempCacheDir {
  std::filesystem::path Path;
  TempCacheDir() {
    Path = std::filesystem::temp_directory_path() /
           ("dmp-cache-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(Counter++));
  }
  ~TempCacheDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  static unsigned Counter;
};
unsigned TempCacheDir::Counter = 0;

profile::ProfileData sampleProfile() {
  profile::ProfileData Data;
  Data.Edges.recordBranch(0x40, true);
  Data.Edges.recordBranch(0x40, false);
  Data.Edges.recordBranch(0x88, true);
  Data.Edges.recordBlockExec(0x10);
  Data.Edges.recordBlockExec(0x10);
  Data.Edges.recordBlockExec(0x44);
  Data.Branches.record(0x40, /*Taken=*/true, /*Mispredicted=*/true);
  Data.Branches.record(0x40, /*Taken=*/false, /*Mispredicted=*/false);
  profile::LoopStats &Loop = Data.Loops.statsFor(0x100);
  Loop.Iterations.addSample(3, 7);
  Loop.Iterations.addSample(12, 2);
  Loop.DynamicInstrs = 420;
  Loop.Invocations = 9;
  Data.DynamicInstrs = 123'456;
  Data.Completed = true;
  return Data;
}

core::DivergeMap sampleMap() {
  core::DivergeMap Map;
  core::DivergeAnnotation Hammock;
  Hammock.Kind = core::DivergeKind::NestedHammock;
  Hammock.AlwaysPredicate = true;
  Hammock.Cfms.push_back(core::CfmPoint::atAddress(0x60, 0.97));
  Hammock.Cfms.push_back(core::CfmPoint::atReturn(0.55));
  Map.add(0x40, Hammock);
  core::DivergeAnnotation Loop;
  Loop.Kind = core::DivergeKind::Loop;
  Loop.LoopHeaderAddr = 0x100;
  Loop.Cfms.push_back(core::CfmPoint::atAddress(0x100, 1.0));
  Map.add(0x120, Loop);
  return Map;
}

sim::SimStats sampleStats() {
  sim::SimStats S;
  S.RetiredInstrs = 1'000'000;
  S.Cycles = 700'000;
  S.CondBranches = 150'000;
  S.Mispredictions = 9'000;
  S.Flushes = 8'000;
  S.DpredEntries = 4'000;
  S.DpredMerged = 3'500;
  S.SelectUops = 1'234;
  S.L2Misses = 42;
  return S;
}

} // namespace

TEST(HashTest, Sha256KnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(Hasher::hash(nullptr, 0).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  const char *Abc = "abc";
  EXPECT_EQ(Hasher::hash(Abc, 3).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  const std::string Long =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(Hasher::hash(Long.data(), Long.size()).hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(HashTest, IncrementalMatchesOneShot) {
  const std::string Payload = "the quick brown fox jumps over the lazy dog";
  Hasher H;
  for (char C : Payload)
    H.update(&C, 1);
  EXPECT_EQ(H.finish().hex(),
            Hasher::hash(Payload.data(), Payload.size()).hex());
}

TEST(ByteStreamTest, RoundTripsScalars) {
  ByteWriter W;
  W.writeU8(7);
  W.writeU32(0xDEADBEEF);
  W.writeU64(0x0123456789ABCDEFULL);
  W.writeDouble(-0.125);
  W.writeString("diverge");
  ByteReader R(W.bytes().data(), W.bytes().size());
  EXPECT_EQ(R.readU8(), 7u);
  EXPECT_EQ(R.readU32(), 0xDEADBEEFu);
  EXPECT_EQ(R.readU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(R.readDouble(), -0.125);
  EXPECT_EQ(R.readString(), "diverge");
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(ByteStreamTest, TruncatedReadLatchesError) {
  ByteWriter W;
  W.writeU32(99);
  ByteReader R(W.bytes().data(), 2); // half a u32
  (void)R.readU32();
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.readU64(), 0u); // stays failed, returns zeros
  EXPECT_FALSE(R.ok());
}

TEST(ProfileIOTest, ProfileDataRoundTrips) {
  const profile::ProfileData Data = sampleProfile();
  const std::vector<uint8_t> Blob = encodeProfileData(Data);
  profile::ProfileData Out;
  const Status S = decodeProfileData(Blob, Out);
  ASSERT_TRUE(S.ok()) << S.toString();
  EXPECT_EQ(Out.DynamicInstrs, Data.DynamicInstrs);
  EXPECT_EQ(Out.Completed, Data.Completed);
  EXPECT_EQ(Out.Edges.branchCounts(0x40).Taken, 1u);
  EXPECT_EQ(Out.Edges.branchCounts(0x40).NotTaken, 1u);
  EXPECT_EQ(Out.Edges.branchCounts(0x88).Taken, 1u);
  EXPECT_EQ(Out.Edges.blockExecCount(0x10), 2u);
  EXPECT_EQ(Out.Edges.blockExecCount(0x44), 1u);
  EXPECT_EQ(Out.Branches.stats(0x40).Executed, 2u);
  EXPECT_EQ(Out.Branches.stats(0x40).Mispredicted, 1u);
  const profile::LoopStats *Loop = Out.Loops.find(0x100);
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->DynamicInstrs, 420u);
  EXPECT_EQ(Loop->Invocations, 9u);
  EXPECT_DOUBLE_EQ(Loop->Iterations.average(),
                   Data.Loops.find(0x100)->Iterations.average());
  // Determinism: the same data always encodes to the same bytes.
  EXPECT_EQ(encodeProfileData(Out), Blob);
}

TEST(ProfileIOTest, DivergeMapRoundTrips) {
  const core::DivergeMap Map = sampleMap();
  const std::vector<uint8_t> Blob = encodeDivergeMap(Map);
  core::DivergeMap Out;
  const Status S = decodeDivergeMap(Blob, Out);
  ASSERT_TRUE(S.ok()) << S.toString();
  ASSERT_EQ(Out.size(), 2u);
  const core::DivergeAnnotation *Hammock = Out.find(0x40);
  ASSERT_NE(Hammock, nullptr);
  EXPECT_EQ(Hammock->Kind, core::DivergeKind::NestedHammock);
  EXPECT_TRUE(Hammock->AlwaysPredicate);
  ASSERT_EQ(Hammock->Cfms.size(), 2u);
  EXPECT_EQ(Hammock->Cfms[0].PointKind, core::CfmPoint::Kind::Address);
  EXPECT_EQ(Hammock->Cfms[0].Addr, 0x60u);
  EXPECT_DOUBLE_EQ(Hammock->Cfms[0].MergeProb, 0.97);
  EXPECT_EQ(Hammock->Cfms[1].PointKind, core::CfmPoint::Kind::Return);
  const core::DivergeAnnotation *Loop = Out.find(0x120);
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->Kind, core::DivergeKind::Loop);
  EXPECT_EQ(Loop->LoopHeaderAddr, 0x100u);
  EXPECT_EQ(encodeDivergeMap(Out), Blob);
}

TEST(ProfileIOTest, SimStatsRoundTrips) {
  const sim::SimStats Stats = sampleStats();
  const std::vector<uint8_t> Blob = encodeSimStats(Stats);
  sim::SimStats Out;
  const Status S = decodeSimStats(Blob, Out);
  ASSERT_TRUE(S.ok()) << S.toString();
  EXPECT_EQ(Out.RetiredInstrs, Stats.RetiredInstrs);
  EXPECT_EQ(Out.Cycles, Stats.Cycles);
  EXPECT_EQ(Out.Mispredictions, Stats.Mispredictions);
  EXPECT_EQ(Out.DpredMerged, Stats.DpredMerged);
  EXPECT_EQ(Out.L2Misses, Stats.L2Misses);
  EXPECT_EQ(encodeSimStats(Out), Blob);
}

TEST(ProfileIOTest, RejectsVersionMismatch) {
  std::vector<uint8_t> Blob = encodeSimStats(sampleStats());
  // Payload layout: kind u32 | version u32 | ... (little endian).
  Blob[4] = static_cast<uint8_t>(kFormatVersion + 1);
  sim::SimStats Out;
  const Status S = decodeSimStats(Blob, Out);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Corrupt);
  EXPECT_NE(S.message().find("version"), std::string::npos) << S.toString();
}

TEST(ProfileIOTest, RejectsWrongKindTag) {
  const std::vector<uint8_t> Blob = encodeSimStats(sampleStats());
  profile::ProfileData Out;
  const Status S = decodeProfileData(Blob, Out);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Corrupt);
}

TEST(ProfileIOTest, RejectsTruncatedPayload) {
  std::vector<uint8_t> Blob = encodeProfileData(sampleProfile());
  Blob.resize(Blob.size() / 2);
  profile::ProfileData Out;
  const Status S = decodeProfileData(Blob, Out);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), ErrorCode::Corrupt);
}

TEST(ArtifactCacheTest, StoreThenLoadHits) {
  TempCacheDir Dir;
  ArtifactCache Cache(Dir.Path.string());
  const Digest Key = Hasher::hash("key-one", 7);
  const std::vector<uint8_t> Payload = {1, 2, 3, 4, 5};
  const auto Miss = Cache.load(Key);
  EXPECT_FALSE(Miss.has_value());
  EXPECT_EQ(Miss.status().code(), ErrorCode::NotFound);
  EXPECT_EQ(Cache.misses(), 1u);
  ASSERT_TRUE(Cache.store(Key, Payload));
  const auto Loaded = Cache.load(Key);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(*Loaded, Payload);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.stores(), 1u);
}

TEST(ArtifactCacheTest, DistinctKeysDoNotCollide) {
  TempCacheDir Dir;
  ArtifactCache Cache(Dir.Path.string());
  const Digest A = Hasher::hash("alpha", 5);
  const Digest B = Hasher::hash("beta", 4);
  ASSERT_TRUE(Cache.store(A, {10}));
  ASSERT_TRUE(Cache.store(B, {20}));
  EXPECT_EQ(Cache.load(A)->at(0), 10);
  EXPECT_EQ(Cache.load(B)->at(0), 20);
}

TEST(ArtifactCacheTest, SurvivesReopen) {
  TempCacheDir Dir;
  const Digest Key = Hasher::hash("persistent", 10);
  {
    ArtifactCache Cache(Dir.Path.string());
    ASSERT_TRUE(Cache.store(Key, {9, 9, 9}));
  }
  ArtifactCache Cache(Dir.Path.string());
  const auto Loaded = Cache.load(Key);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->size(), 3u);
}

TEST(ArtifactCacheTest, RejectsCorruptedBlob) {
  TempCacheDir Dir;
  ArtifactCache Cache(Dir.Path.string());
  const Digest Key = Hasher::hash("corrupt-me", 10);
  ASSERT_TRUE(Cache.store(Key, {1, 2, 3, 4, 5, 6, 7, 8}));

  // Flip one payload byte on disk (past the 48-byte header).
  std::filesystem::path Blob;
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(Dir.Path))
    if (Entry.path().extension() == ".blob")
      Blob = Entry.path();
  ASSERT_FALSE(Blob.empty());
  {
    std::fstream F(Blob, std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(50);
    const char Garbage = '\xFF';
    F.write(&Garbage, 1);
  }

  const auto Rejected = Cache.load(Key);
  EXPECT_FALSE(Rejected.has_value());
  EXPECT_EQ(Rejected.status().code(), ErrorCode::Corrupt);
  EXPECT_EQ(Cache.corruptDeletes(), 1u);
  // The corrupt blob was deleted so a later store can heal it.
  EXPECT_FALSE(std::filesystem::exists(Blob));
  ASSERT_TRUE(Cache.store(Key, {1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_TRUE(Cache.load(Key).has_value());
}

TEST(ArtifactCacheTest, RejectsTruncatedBlob) {
  TempCacheDir Dir;
  ArtifactCache Cache(Dir.Path.string());
  const Digest Key = Hasher::hash("truncate-me", 11);
  ASSERT_TRUE(Cache.store(Key, std::vector<uint8_t>(100, 7)));
  std::filesystem::path Blob;
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(Dir.Path))
    if (Entry.path().extension() == ".blob")
      Blob = Entry.path();
  ASSERT_FALSE(Blob.empty());
  std::filesystem::resize_file(Blob, 60);
  const auto Rejected = Cache.load(Key);
  EXPECT_FALSE(Rejected.has_value());
  EXPECT_EQ(Rejected.status().code(), ErrorCode::Corrupt);
  EXPECT_EQ(Cache.corruptDeletes(), 1u);
}

TEST(ArtifactCacheTest, RejectsContainerVersionMismatch) {
  TempCacheDir Dir;
  ArtifactCache Cache(Dir.Path.string());
  const Digest Key = Hasher::hash("old-container", 13);
  ASSERT_TRUE(Cache.store(Key, {5, 5, 5}));
  std::filesystem::path Blob;
  for (const auto &Entry :
       std::filesystem::recursive_directory_iterator(Dir.Path))
    if (Entry.path().extension() == ".blob")
      Blob = Entry.path();
  ASSERT_FALSE(Blob.empty());
  {
    // Container layout: magic u32 | version u32 | ...; bump the version.
    std::fstream F(Blob, std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(4);
    const char NewVersion = 99;
    F.write(&NewVersion, 1);
  }
  EXPECT_FALSE(Cache.load(Key).has_value());
}

//===----------------------------------------------------------------------===//
// Cache-key schema versioning (harness/Experiment.h)
//===----------------------------------------------------------------------===//

TEST(CacheSchemaTest, SchemaBumpMissesOldProfileEntry) {
  const workloads::BenchmarkSpec &Spec = workloads::specSuite().front();
  const profile::ProfileOptions Options;

  const Digest OldKey = harness::profileCacheKey(
      Spec, workloads::InputSetKind::Run, Options, kCacheSchemaVersion);
  const Digest NewKey = harness::profileCacheKey(
      Spec, workloads::InputSetKind::Run, Options, kCacheSchemaVersion + 1);
  EXPECT_NE(OldKey, NewKey);

  // An entry written under the old schema must be invisible after a bump:
  // the consumer recomputes instead of decoding a stale layout.
  TempCacheDir Dir;
  ArtifactCache Cache(Dir.Path.string());
  ASSERT_TRUE(Cache.store(OldKey, {1, 2, 3}));
  EXPECT_TRUE(Cache.load(OldKey).has_value());
  EXPECT_FALSE(Cache.load(NewKey).has_value());
}

TEST(CacheSchemaTest, SchemaBumpMissesOldSimEntry) {
  const workloads::BenchmarkSpec &Spec = workloads::specSuite().front();
  const sim::SimConfig Config;

  const Digest OldKey = harness::simCacheKey(Spec, Config, nullptr, nullptr,
                                             kCacheSchemaVersion);
  const Digest NewKey = harness::simCacheKey(Spec, Config, nullptr, nullptr,
                                             kCacheSchemaVersion + 1);
  EXPECT_NE(OldKey, NewKey);

  TempCacheDir Dir;
  ArtifactCache Cache(Dir.Path.string());
  ASSERT_TRUE(Cache.store(OldKey, {9, 9}));
  EXPECT_FALSE(Cache.load(NewKey).has_value());
}

TEST(CacheSchemaTest, SelectorConfigIsPartOfDmpSimKey) {
  const workloads::BenchmarkSpec &Spec = workloads::specSuite().front();
  const sim::SimConfig Config;
  const core::DivergeMap Map = sampleMap();
  const core::SelectionConfig Defaults;
  const core::SelectionConfig Tweaked = Defaults.withMaxInstr(
      Defaults.MaxInstr + 1);

  const Digest A = harness::simCacheKey(Spec, Config, &Map, &Defaults);
  const Digest B = harness::simCacheKey(Spec, Config, &Map, &Tweaked);
  EXPECT_NE(A, B);

  // Same inputs hash to the same key (the digest is pure).
  const Digest A2 = harness::simCacheKey(Spec, Config, &Map, &Defaults);
  EXPECT_EQ(A, A2);
}
