//===- tests/test_throughput_diff.cpp - Fast-path differential tests ----------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
// The enforcement arm of the digest-identity contract (DESIGN.md "Fast
// paths & the digest-identity contract"): every throughput optimization —
// the predecoded step() dispatch, the block-batched Emulator::run(), and
// the flattened DmpCore hot loop — must be bit-identical to the preserved
// reference interpreter in every observable.  These tests drive the fast
// and reference paths over the shared hand-built test programs, all 17
// suite workloads, and 200 fuzz-generated recipes, and compare:
//
//   * every DynInstr field, in lockstep, instruction by instruction;
//   * final architectural state: all registers, memory fingerprint,
//     executed count, PC, halt flag, call depth;
//   * the cycle simulator's full SimStats encoding and retired FinalState
//     when fed by EmuMode::Fast vs EmuMode::Reference, baseline and
//     dpred-heavy (adversarial annotations) alike.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "cfg/Analysis.h"
#include "check/Oracle.h"
#include "check/ProgramGen.h"
#include "profile/Emulator.h"
#include "serialize/ProfileIO.h"
#include "sim/DmpCore.h"
#include "sim/FinalState.h"
#include "workloads/SpecSuite.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::profile;

namespace {

/// Steps the decoded fast path and the reference interpreter in lockstep
/// over (\p P, \p Image) and asserts bit-identical DynInstr streams and
/// final architectural state.
void compareSteppers(const ir::Program &P, const std::vector<int64_t> &Image,
                     uint64_t MaxInstrs) {
  Emulator Fast(P, Image);
  Emulator Ref(P, Image);
  DynInstr DF, DR;
  while (Fast.executedCount() < MaxInstrs) {
    const bool FastAlive = Fast.step(DF);
    const bool RefAlive = Ref.stepReference(DR);
    ASSERT_EQ(FastAlive, RefAlive) << "liveness diverged at instruction "
                                   << Ref.executedCount();
    if (!FastAlive)
      break;
    ASSERT_EQ(DF.I, DR.I);
    ASSERT_EQ(DF.Addr, DR.Addr);
    ASSERT_EQ(DF.NextAddr, DR.NextAddr);
    ASSERT_EQ(DF.Taken, DR.Taken);
    ASSERT_EQ(DF.MemAddr, DR.MemAddr);
  }
  EXPECT_EQ(Fast.executedCount(), Ref.executedCount());
  EXPECT_EQ(Fast.isHalted(), Ref.isHalted());
  EXPECT_EQ(Fast.pc(), Ref.pc());
  EXPECT_EQ(Fast.callDepth(), Ref.callDepth());
  for (unsigned R = 0; R < ir::NumRegs; ++R)
    ASSERT_EQ(Fast.reg(static_cast<ir::Reg>(R)),
              Ref.reg(static_cast<ir::Reg>(R)))
        << "r" << R;
  EXPECT_EQ(Fast.memoryWords(), Ref.memoryWords());
  EXPECT_EQ(sim::fingerprintMemory(Fast), sim::fingerprintMemory(Ref));
}

/// Asserts Emulator::run(\p MaxInstrs) matches the equivalent step() loop
/// in final state — the block-batching must be invisible.
void compareRunVsStepLoop(const ir::Program &P,
                          const std::vector<int64_t> &Image,
                          uint64_t MaxInstrs) {
  Emulator Batched(P, Image);
  Batched.run(MaxInstrs);
  Emulator Stepped(P, Image);
  DynInstr D;
  while (Stepped.executedCount() < MaxInstrs && Stepped.step(D)) {
  }
  EXPECT_EQ(Batched.executedCount(), Stepped.executedCount());
  EXPECT_EQ(Batched.isHalted(), Stepped.isHalted());
  EXPECT_EQ(Batched.pc(), Stepped.pc());
  EXPECT_EQ(Batched.callDepth(), Stepped.callDepth());
  for (unsigned R = 0; R < ir::NumRegs; ++R)
    ASSERT_EQ(Batched.reg(static_cast<ir::Reg>(R)),
              Stepped.reg(static_cast<ir::Reg>(R)))
        << "r" << R;
  EXPECT_EQ(sim::fingerprintMemory(Batched), sim::fingerprintMemory(Stepped));
}

void compareAllPaths(const ir::Program &P, const std::vector<int64_t> &Image,
                     uint64_t MaxInstrs) {
  compareSteppers(P, Image, MaxInstrs);
  compareRunVsStepLoop(P, Image, MaxInstrs);
}

} // namespace

TEST(FastPathDiff, SimpleHammockLoop) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/4, /*Iters=*/64);
  compareAllPaths(*H.Prog, test::alternatingImage(64, 2), 1u << 20);
}

TEST(FastPathDiff, FreqHammockLoop) {
  auto H = test::buildFreqHammockLoop();
  compareAllPaths(*H.Prog, test::alternatingImage(8192, 3), 1u << 20);
}

TEST(FastPathDiff, DataLoop) {
  auto H = test::buildDataLoop();
  compareAllPaths(*H.Prog, test::alternatingImage(8192, 5), 1u << 20);
}

TEST(FastPathDiff, RetFuncLoop) {
  auto H = test::buildRetFuncLoop(/*Iters=*/64);
  compareAllPaths(*H.Prog, test::alternatingImage(64, 2), 1u << 20);
}

// Budgets that stop mid-program (including mid-straight-line-run, which is
// where the batched run() loop must cut a block short) and budgets past
// the halt point.
TEST(FastPathDiff, PartialBudgets) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/6, /*Iters=*/32);
  const auto Image = test::alternatingImage(64, 2);
  for (uint64_t Budget : {1ull, 2ull, 3ull, 7ull, 17ull, 100ull, 101ull,
                          333ull, 1000ull, 1ull << 30}) {
    compareSteppers(*H.Prog, Image, Budget);
    compareRunVsStepLoop(*H.Prog, Image, Budget);
  }
}

// All 17 suite workloads through both steppers and the batched run.
TEST(FastPathDiff, SpecSuiteWorkloads) {
  for (const workloads::BenchmarkSpec &Spec : workloads::specSuite()) {
    SCOPED_TRACE(Spec.Name);
    const workloads::Workload W = workloads::buildBenchmark(Spec);
    const auto Image = W.buildImage(workloads::InputSetKind::Run);
    compareSteppers(*W.Prog, Image, 150'000);
    compareRunVsStepLoop(*W.Prog, Image, 150'000);
  }
}

// 200 fuzz-recipe seeds (the same generator the differential-oracle fuzz
// campaign draws from): every generated CFG shape must agree across the
// fast and reference paths.
TEST(FastPathDiff, FuzzRecipes200) {
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    const check::GenRecipe Recipe = check::randomRecipe(Seed);
    const check::GenProgram GP = check::materialize(Recipe);
    ASSERT_TRUE(GP.VerifyErrors.empty())
        << check::describeRecipe(Recipe) << ": " << GP.VerifyErrors.front();
    SCOPED_TRACE(check::describeRecipe(Recipe));
    compareSteppers(*GP.Prog, GP.Image, 40'000);
    compareRunVsStepLoop(*GP.Prog, GP.Image, 40'000);
  }
}

namespace {

/// Runs DmpCore twice — fed by the fast emulator and by the reference
/// interpreter — and asserts byte-identical SimStats encodings (the digest
/// the artifact cache and `dmpc` hash) and identical retired state.
void compareEmuModes(const ir::Program &P, const core::DivergeMap *Diverge,
                     const sim::SimConfig &Cfg,
                     const std::vector<int64_t> &Image) {
  sim::FinalState FastState, RefState;
  sim::DmpCore Fast(P, Diverge, Cfg);
  const sim::SimStats FastStats =
      Fast.run(Image, &FastState, sim::DmpCore::EmuMode::Fast);
  sim::DmpCore Ref(P, Diverge, Cfg);
  const sim::SimStats RefStats =
      Ref.run(Image, &RefState, sim::DmpCore::EmuMode::Reference);

  EXPECT_EQ(serialize::encodeSimStats(FastStats),
            serialize::encodeSimStats(RefStats));
  EXPECT_EQ(FastState.Regs, RefState.Regs);
  EXPECT_EQ(FastState.MemoryFingerprint, RefState.MemoryFingerprint);
  EXPECT_EQ(FastState.RetiredInstrs, RefState.RetiredInstrs);
  EXPECT_EQ(FastState.Halted, RefState.Halted);
  ASSERT_EQ(FastState.Stores.size(), RefState.Stores.size());
  for (size_t I = 0; I < FastState.Stores.size(); ++I)
    ASSERT_TRUE(FastState.Stores[I] == RefState.Stores[I]) << "store " << I;
}

} // namespace

TEST(FastPathDiff, SimEmuModeBaselineWorkloads) {
  for (const char *Name : {"mcf", "go", "gcc"}) {
    SCOPED_TRACE(Name);
    const workloads::Workload W = workloads::buildByName(Name);
    sim::SimConfig Cfg;
    Cfg.MaxInstrs = 100'000;
    compareEmuModes(*W.Prog, nullptr,
                    Cfg, W.buildImage(workloads::InputSetKind::Run));
  }
}

// The dpred machinery exercised hard: every branch adversarially annotated,
// DMP enabled, fast and reference feeds must still collapse to one digest.
TEST(FastPathDiff, SimEmuModeAdversarialDpred) {
  auto H = test::buildFreqHammockLoop();
  const cfg::ProgramAnalysis PA(*H.Prog);
  const core::DivergeMap Map = check::adversarialAnnotations(PA);
  sim::SimConfig Cfg;
  Cfg.EnableDmp = true;
  Cfg.MaxInstrs = 200'000;
  compareEmuModes(*H.Prog, &Map, Cfg, test::alternatingImage(8192, 3));
}
