//===- tests/test_paths.cpp - Path enumeration unit tests ----------------------===//
//
// Part of the dmp-dpred project (CGO 2007 DMP compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "cfg/Analysis.h"
#include "cfg/PathEnumerator.h"

#include <gtest/gtest.h>

using namespace dmp;
using namespace dmp::cfg;

namespace {

/// Edge profile with chosen taken probabilities for the three branches of
/// the freq-hammock test program.
EdgeProfile freqProfile(const test::ProgramHandles &H, double HammockTaken,
                        double RareTaken, uint64_t Execs = 1000) {
  EdgeProfile Prof;
  const ir::Program &P = *H.Prog;
  for (uint32_t Addr : P.condBranchAddrs()) {
    double TakenProb = 0.9; // loop back edge default
    if (Addr == H.BranchAddr)
      TakenProb = HammockTaken;
    else if (H.RareSide && P.blockAt(Addr) == H.TakenSide)
      TakenProb = RareTaken;
    const auto Taken = static_cast<uint64_t>(TakenProb * Execs);
    for (uint64_t I = 0; I < Taken; ++I)
      Prof.recordBranch(Addr, true);
    for (uint64_t I = 0; I < Execs - Taken; ++I)
      Prof.recordBranch(Addr, false);
  }
  return Prof;
}

PathLimits limits(unsigned MaxInstr = 50, unsigned MaxCbr = 5) {
  PathLimits L;
  L.MaxInstr = MaxInstr;
  L.MaxCondBr = MaxCbr;
  return L;
}

} // namespace

TEST(PathEnumTest, SimpleHammockBothSidesReachMerge) {
  auto H = test::buildSimpleHammockLoop();
  EdgeProfile Prof = freqProfile(H, 0.5, 0.0);
  PathSet Taken = enumeratePaths(H.TakenSide, H.Merge, Prof, limits());
  PathSet Fall = enumeratePaths(H.FallSide, H.Merge, Prof, limits());
  ASSERT_EQ(Taken.Paths.size(), 1u);
  ASSERT_EQ(Fall.Paths.size(), 1u);
  EXPECT_EQ(Taken.Paths[0].End, PathEnd::ReachedStop);
  EXPECT_EQ(Fall.Paths[0].End, PathEnd::ReachedStop);
  EXPECT_DOUBLE_EQ(Taken.Paths[0].Prob, 1.0);
  EXPECT_EQ(Taken.Paths[0].CondBrs, 0u);
  EXPECT_DOUBLE_EQ(Taken.reachProb(H.Merge), 1.0);
}

TEST(PathEnumTest, StartEqualsStopYieldsEmptyPath) {
  auto H = test::buildSimpleHammockLoop();
  EdgeProfile Prof = freqProfile(H, 0.5, 0.0);
  PathSet Set = enumeratePaths(H.Merge, H.Merge, Prof, limits());
  ASSERT_EQ(Set.Paths.size(), 1u);
  EXPECT_EQ(Set.Paths[0].End, PathEnd::ReachedStop);
  EXPECT_EQ(Set.Paths[0].Instrs, 0u);
}

TEST(PathEnumTest, FreqHammockSplitsOnRareBranch) {
  auto H = test::buildFreqHammockLoop(/*RareLen=*/60);
  EdgeProfile Prof = freqProfile(H, 0.5, 0.03);
  PathSet Taken = enumeratePaths(H.TakenSide, H.End, Prof, limits());
  // Two paths: via TakenBody -> Merge -> End (reaches) and via Rare
  // (truncated at 50 instructions).
  ASSERT_EQ(Taken.Paths.size(), 2u);
  double ReachedProb = 0.0, TruncProb = 0.0;
  for (const Path &P : Taken.Paths) {
    if (P.End == PathEnd::ReachedStop)
      ReachedProb += P.Prob;
    else
      TruncProb += P.Prob;
  }
  EXPECT_NEAR(ReachedProb, 0.97, 1e-9);
  EXPECT_NEAR(TruncProb, 0.03, 1e-9);
  EXPECT_NEAR(Taken.totalProb(), 1.0, 1e-9);
  // The frequent merge is reached with the non-rare probability.
  EXPECT_NEAR(Taken.reachProb(H.Merge), 0.97, 1e-9);
}

TEST(PathEnumTest, MinExecProbPrunesRareDirection) {
  auto H = test::buildFreqHammockLoop();
  EdgeProfile Prof =
      freqProfile(H, 0.5, 0.0005, /*Execs=*/10000); // below MIN_EXEC_PROB
  PathLimits L = limits();
  L.MinExecProb = 0.001;
  PathSet Taken = enumeratePaths(H.TakenSide, H.End, Prof, L);
  // Only the frequent path remains; the pruned mass is recorded.
  ASSERT_EQ(Taken.Paths.size(), 1u);
  EXPECT_EQ(Taken.Paths[0].End, PathEnd::ReachedStop);
  EXPECT_NEAR(Taken.LostProbMass, 0.0005, 1e-6);
}

TEST(PathEnumTest, MaxCondBrTruncates) {
  auto H = test::buildDataLoop();
  EdgeProfile Prof;
  // Loop branch: 90% stay.
  for (int I = 0; I < 90; ++I)
    Prof.recordBranch(H.BranchAddr, true);
  for (int I = 0; I < 10; ++I)
    Prof.recordBranch(H.BranchAddr, false);
  PathLimits L = limits(/*MaxInstr=*/500, /*MaxCbr=*/3);
  PathSet Set = enumeratePaths(H.BranchBlock, nullptr, Prof, L);
  for (const Path &P : Set.Paths)
    EXPECT_LE(P.CondBrs, 4u); // limit + the terminating check
}

TEST(PathEnumTest, LoopBlocksEndLooped) {
  auto H = test::buildDataLoop();
  EdgeProfile Prof;
  for (int I = 0; I < 90; ++I)
    Prof.recordBranch(H.BranchAddr, true);
  for (int I = 0; I < 10; ++I)
    Prof.recordBranch(H.BranchAddr, false);
  PathSet Set = enumeratePaths(H.BranchBlock, nullptr, Prof, limits(500, 10));
  bool SawLooped = false;
  for (const Path &P : Set.Paths)
    SawLooped |= (P.End == PathEnd::Looped);
  EXPECT_TRUE(SawLooped);
}

TEST(PathEnumTest, ReturnPathsDetected) {
  auto H = test::buildRetFuncLoop();
  EdgeProfile Prof;
  for (int I = 0; I < 50; ++I) {
    Prof.recordBranch(H.BranchAddr, true);
    Prof.recordBranch(H.BranchAddr, false);
  }
  PathSet Taken = enumeratePaths(H.TakenSide, nullptr, Prof, limits());
  PathSet Fall = enumeratePaths(H.FallSide, nullptr, Prof, limits());
  ASSERT_EQ(Taken.Paths.size(), 1u);
  EXPECT_EQ(Taken.Paths[0].End, PathEnd::ReachedRet);
  EXPECT_NE(Taken.Paths[0].RetInstr, nullptr);
  EXPECT_DOUBLE_EQ(Taken.returnReachProb(), 1.0);
  EXPECT_DOUBLE_EQ(Fall.returnReachProb(), 1.0);
  // The two sides end at *different* return instructions.
  EXPECT_NE(Taken.Paths[0].RetInstr, Fall.Paths[0].RetInstr);
}

TEST(PathEnumTest, InstrDistancesMatchBlockSizes) {
  auto H = test::buildSimpleHammockLoop(/*BodyLen=*/4);
  EdgeProfile Prof = freqProfile(H, 0.5, 0.0);
  PathSet Fall = enumeratePaths(H.FallSide, H.Merge, Prof, limits());
  // Fall block: 4 filler + addi + jmp = 6 instructions.
  EXPECT_EQ(Fall.maxInstrsTo(H.Merge, 0), 6u);
  EXPECT_DOUBLE_EQ(Fall.expectedInstrsTo(H.Merge, 0), 6.0);
}

TEST(PathEnumTest, ExpectedInstrsWeighsRarePath) {
  auto H = test::buildFreqHammockLoop(/*RareLen=*/60);
  EdgeProfile Prof = freqProfile(H, 0.5, 0.10);
  PathLimits L = limits(/*MaxInstr=*/200, /*MaxCbr=*/5);
  PathSet Taken = enumeratePaths(H.TakenSide, H.End, Prof, L);
  const double Expected = Taken.expectedInstrsTo(H.Merge, 0);
  const unsigned Longest = Taken.maxInstrsTo(H.Merge, 0);
  // Method 3 (expectation) must be below Method 2 (longest path) when a
  // rare long path exists.
  EXPECT_LT(Expected, static_cast<double>(Longest));
  EXPECT_GT(Expected, 0.0);
}

TEST(PathEnumTest, FirstReachExcludesChainedCandidate) {
  auto H = test::buildFreqHammockLoop(/*RareLen=*/60);
  EdgeProfile Prof = freqProfile(H, 0.5, 0.10);
  PathLimits L = limits(/*MaxInstr=*/300, /*MaxCbr=*/5);
  PathSet Taken = enumeratePaths(H.TakenSide, H.End, Prof, L);
  // Reaching End without passing through Merge first only happens on the
  // rare path.
  std::unordered_set<const ir::BasicBlock *> Excl = {H.Merge};
  EXPECT_NEAR(Taken.firstReachProb(H.End, Excl), 0.10, 1e-9);
  EXPECT_NEAR(Taken.firstReachProb(H.Merge, {}), 0.90, 1e-9);
}

TEST(PathEnumTest, MaxPathsOverflowIsReported) {
  auto H = test::buildDataLoop();
  EdgeProfile Prof;
  for (int I = 0; I < 50; ++I) {
    Prof.recordBranch(H.BranchAddr, true);
    Prof.recordBranch(H.BranchAddr, false);
  }
  PathLimits L = limits(10000, 1000);
  L.MaxPaths = 4;
  L.MinPathProb = 0.0;
  PathSet Set = enumeratePaths(H.BranchBlock, nullptr, Prof, L);
  EXPECT_LE(Set.Paths.size(), 4u);
}
